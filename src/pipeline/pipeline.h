#ifndef MLCASK_PIPELINE_PIPELINE_H_
#define MLCASK_PIPELINE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "pipeline/component.h"
#include "version/commit.h"

namespace mlcask::pipeline {

/// An ML pipeline per Definition 1: a DAG whose vertices are components and
/// whose edges depict data flow. The evaluated pipelines (and the paper's
/// search-tree formulation, which treats components as levels f_0..f_Nf) are
/// chains, so a chain constructor is provided; the DAG form validates
/// arbitrary topologies.
class Pipeline {
 public:
  Pipeline() = default;
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a component vertex. Duplicate names are rejected.
  Status AddComponent(ComponentVersionSpec spec);

  /// Adds a data-flow edge between existing components.
  Status Connect(const std::string& from, const std::string& to);

  size_t size() const { return components_.size(); }
  const std::vector<ComponentVersionSpec>& components() const {
    return components_;
  }
  StatusOr<const ComponentVersionSpec*> Find(const std::string& name) const;

  /// Predecessors / successors by component name (paper's pre(f), suc(f)).
  std::vector<std::string> Predecessors(const std::string& name) const;
  std::vector<std::string> Successors(const std::string& name) const;

  /// Kahn topological order; Corruption if a cycle exists.
  StatusOr<std::vector<const ComponentVersionSpec*>> TopologicalOrder() const;

  /// Validates: non-empty, acyclic, exactly the source components have no
  /// predecessor and they are datasets, every edge endpoint exists.
  Status Validate() const;

  /// True iff the DAG is a single chain (each vertex has <= 1 in and <= 1
  /// out edge and the graph is connected).
  bool IsChain() const;

  /// Declared-schema compatibility along every edge (Def. 4); returns the
  /// first violating edge as an Incompatible status.
  Status CheckCompatibility() const;

  /// Builds a linear pipeline from an ordered component list.
  static StatusOr<Pipeline> Chain(std::string name,
                                  std::vector<ComponentVersionSpec> specs);

  /// The pipeline metafile: entry point plus component order and references.
  Json ToJson() const;
  static StatusOr<Pipeline> FromJson(const Json& j);

  /// Snapshot of all components (records without outputs) for committing.
  version::PipelineSnapshot ToSnapshot() const;

 private:
  int IndexOf(const std::string& name) const;

  std::string name_;
  std::vector<ComponentVersionSpec> components_;
  // Edges as index pairs (from, to).
  std::vector<std::pair<size_t, size_t>> edges_;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_PIPELINE_H_
