#ifndef MLCASK_PIPELINE_EXECUTION_CORE_H_
#define MLCASK_PIPELINE_EXECUTION_CORE_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"

namespace mlcask::pipeline {

/// A pool of virtual worker-availability times for list scheduling: a task
/// claims the earliest-free virtual worker slot, executes on whatever real
/// thread picked it up, and releases the slot at its virtual finish time.
/// Decoupling virtual slots from real threads keeps reported makespans from
/// inflating when the OS timeslices the threads unevenly (e.g. a one-core
/// host where a single thread executes most tasks). NOT internally
/// synchronized — callers mutate it under their own scheduler lock. Shared
/// by ExecutionCore::RunGraph and the merge layer's frontier drain so the
/// two model virtual time identically.
class VirtualWorkerPool {
 public:
  VirtualWorkerPool(size_t num_workers, double start_time_s) {
    for (size_t i = 0; i < num_workers; ++i) free_.insert(start_time_s);
  }

  /// Removes and returns the earliest-available slot time.
  double ClaimEarliest() {
    double slot = *free_.begin();
    free_.erase(free_.begin());
    return slot;
  }

  /// Returns a slot at its new availability time.
  void Release(double free_at_s) { free_.insert(free_at_s); }

 private:
  std::multiset<double> free_;
};

/// The parallel execution core: a worker thread pool plus the scheduling
/// primitives the upper layers build on. Two entry points:
///
///  - RunWorkers(): one long-running body per worker, each with its own
///    virtual SimClock. The merge layer drains its priority frontier this
///    way (workers pull the best unclaimed candidate, run it, publish the
///    score, repeat).
///  - RunGraph(): a topological DAG scheduler. A task is dispatched to an
///    idle worker as soon as all its predecessors have finished; the worker
///    clock is advanced to the predecessors' virtual finish time first, so
///    the final makespan models a W-worker machine.
///
/// With num_workers == 1 everything runs inline on the calling thread in
/// deterministic FIFO order — the serial paths of the executor and the
/// search stay bit-identical to the pre-parallel implementation.
///
/// Real threads do the real (toy) compute, which is what the concurrency
/// tests hammer; reported times come from the virtual clocks, consistent
/// with the repo-wide simulated-time convention (see SimClock).
class ExecutionCore {
 public:
  explicit ExecutionCore(size_t num_workers);
  ~ExecutionCore();

  ExecutionCore(const ExecutionCore&) = delete;
  ExecutionCore& operator=(const ExecutionCore&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// Per-worker context for RunWorkers bodies.
  struct WorkerContext {
    size_t worker_index = 0;
    SimClock* clock = nullptr;  ///< This worker's virtual timeline.
  };
  using WorkerBody = std::function<Status(WorkerContext&)>;

  /// Runs `body` once per worker; every worker clock starts at
  /// `start_time_s`. Returns the makespan (max worker clock at completion),
  /// or the first non-ok status any body returned.
  StatusOr<double> RunWorkers(const WorkerBody& body, double start_time_s = 0);

  /// Runs tasks 0..num_tasks-1 respecting `deps` (deps[i] lists the task
  /// indices that must finish before i starts). `run(i, clock)` is invoked
  /// with the worker's clock already advanced to
  /// max(worker time, dependency finish times); the task's finish time is
  /// the clock value when it returns. A non-ok status cancels all
  /// not-yet-started tasks and is returned. On success returns the makespan;
  /// `finish_times` (optional) receives each task's virtual finish time.
  StatusOr<double> RunGraph(size_t num_tasks,
                            const std::vector<std::vector<size_t>>& deps,
                            const std::function<Status(size_t, SimClock*)>& run,
                            double start_time_s = 0,
                            std::vector<double>* finish_times = nullptr);

 private:
  void Submit(std::function<void()> job);
  void WorkerLoop();

  size_t num_workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable job_cv_;
  std::queue<std::function<void()>> jobs_;
  bool stopping_ = false;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_EXECUTION_CORE_H_
