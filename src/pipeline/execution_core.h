#ifndef MLCASK_PIPELINE_EXECUTION_CORE_H_
#define MLCASK_PIPELINE_EXECUTION_CORE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"

namespace mlcask::pipeline {

/// A pool of virtual worker-availability times for list scheduling: a task
/// claims the earliest-free virtual worker slot, executes on whatever real
/// thread picked it up, and releases the slot at its virtual finish time.
/// Decoupling virtual slots from real threads keeps reported makespans from
/// inflating when the OS timeslices the threads unevenly (e.g. a one-core
/// host where a single thread executes most tasks). NOT internally
/// synchronized — callers mutate it under their own scheduler lock. Shared
/// by ExecutionCore::RunGraph and the merge layer's frontier drain so the
/// two model virtual time identically.
class VirtualWorkerPool {
 public:
  VirtualWorkerPool(size_t num_workers, double start_time_s) {
    for (size_t i = 0; i < num_workers; ++i) free_.insert(start_time_s);
  }

  /// Removes and returns the earliest-available slot time.
  double ClaimEarliest() {
    double slot = *free_.begin();
    free_.erase(free_.begin());
    return slot;
  }

  /// Returns a slot at its new availability time.
  void Release(double free_at_s) { free_.insert(free_at_s); }

 private:
  std::multiset<double> free_;
};

/// The parallel execution core: a worker thread pool plus the scheduling
/// primitives the upper layers build on. Two entry points:
///
///  - RunWorkers(): N copies of one body, each with its own virtual
///    SimClock. The merge layer drains its priority frontier this way
///    (workers pull the best unclaimed candidate, run it, publish the
///    score, repeat).
///  - RunGraph(): a topological DAG scheduler. A task is dispatched to an
///    idle worker as soon as all its predecessors have finished; the worker
///    clock is advanced to the predecessors' virtual finish time first, so
///    the final makespan models a W-worker machine.
///
/// ## Pool ownership rules
///
/// An ExecutionCore is a LONG-LIVED, SHARED resource: construct one per
/// deployment (or per executor/merge operation) and reuse it for every
/// RunDag call and every merge candidate. Hot paths must never construct a
/// pool per call — `ExecutionCore::instances_created()` is a process-wide
/// counter the regression tests use to prove they don't. Ownership:
///
///  - `sim::Deployment` owns the deployment-wide pool and threads it through
///    `ExecutorOptions::core`.
///  - `Executor` keeps a lazily-built fallback pool for callers that pass no
///    shared pool; it is created at most once per executor, sized by the
///    first request, and reused for the executor's lifetime.
///  - `MergeOperation` / `PrioritizedSearch` accept an injected pool via
///    their options and otherwise fall back to a lazily-built owned pool.
///  - Sharded merge drains add two more lazily-built-once pool families on
///    the MergeOperation: one core per shard (real width = the drain's
///    num_workers) and a dispatch pool with one real thread per shard that
///    runs the per-shard drain bodies concurrently
///    (MergeOptions::concurrent_shard_drains).
///
/// The constructor argument is the REAL thread count; every scheduling call
/// may request a different VIRTUAL width (`num_bodies` / `virtual_workers`),
/// so one pool serves serial (width 1) and wide (width N) runs alike —
/// reported makespans depend only on the virtual width, never on how many
/// OS threads happened to execute the tasks.
///
/// ## Reentrancy (work stealing)
///
/// Scheduling calls are reentrant: a body running ON a pool worker may
/// itself call RunGraph/RunWorkers on the same pool (a merge candidate that
/// recursively enters RunDag, say). The submitting thread never just blocks
/// on its batch — it HELPS: it claims and runs the still-unclaimed tasks of
/// its own batch (batch-local work stealing), so a nested call always makes
/// progress even when every pool thread is occupied by outer bodies.
/// Without this, nested submission deadlocks: all threads wait for jobs
/// that nobody is left to run. `stats().tasks_stolen` counts the helps.
///
/// With virtual width 1 the single body runs tasks in deterministic FIFO
/// order — the serial paths of the executor and the search stay
/// bit-identical to the pre-parallel implementation.
///
/// Real threads do the real (toy) compute, which is what the concurrency
/// tests hammer; reported times come from the virtual clocks, consistent
/// with the repo-wide simulated-time convention (see SimClock).
class ExecutionCore {
 public:
  /// `num_threads` is the REAL worker-thread count. 1 keeps no threads:
  /// every scheduling call runs inline on the caller.
  explicit ExecutionCore(size_t num_threads);
  ~ExecutionCore();

  ExecutionCore(const ExecutionCore&) = delete;
  ExecutionCore& operator=(const ExecutionCore&) = delete;

  size_t num_workers() const { return num_threads_; }

  /// Per-worker context for RunWorkers bodies.
  struct WorkerContext {
    size_t worker_index = 0;
    SimClock* clock = nullptr;  ///< This worker's virtual timeline.
  };
  using WorkerBody = std::function<Status(WorkerContext&)>;

  /// Runs `num_bodies` copies of `body` (0 = one per real pool thread, the
  /// historical behaviour); every worker clock starts at `start_time_s`.
  /// Returns the makespan (max worker clock at completion), or the first
  /// non-ok status any body returned. Reentrant (see pool ownership rules
  /// above): the calling thread helps drain its own batch.
  StatusOr<double> RunWorkers(const WorkerBody& body, double start_time_s = 0,
                              size_t num_bodies = 0);

  /// Runs tasks 0..num_tasks-1 respecting `deps` (deps[i] lists the task
  /// indices that must finish before i starts). `run(i, clock)` is invoked
  /// with the worker's clock already advanced to
  /// max(worker time, dependency finish times); the task's finish time is
  /// the clock value when it returns. A non-ok status cancels all
  /// not-yet-started tasks and is returned. On success returns the makespan;
  /// `finish_times` (optional) receives each task's virtual finish time.
  /// `virtual_workers` is the width of the simulated machine (0 = the real
  /// thread count): the makespan models list scheduling over that many
  /// virtual worker slots regardless of how many OS threads participate.
  StatusOr<double> RunGraph(size_t num_tasks,
                            const std::vector<std::vector<size_t>>& deps,
                            const std::function<Status(size_t, SimClock*)>& run,
                            double start_time_s = 0,
                            std::vector<double>* finish_times = nullptr,
                            size_t virtual_workers = 0);

  /// Pool-lifetime counters: evidence that the pool is long-lived and that
  /// the reentrancy path is exercised.
  struct PoolStats {
    uint64_t threads_spawned = 0;  ///< OS threads this pool started (once).
    uint64_t batches_run = 0;      ///< RunWorkers/RunGraph scheduling calls.
    uint64_t tasks_run = 0;        ///< Worker bodies executed, total.
    uint64_t tasks_stolen = 0;     ///< Bodies the submitting thread claimed
                                   ///< itself (helping / work stealing).
  };
  PoolStats stats() const;

  /// Process-wide count of ExecutionCore instances ever constructed. Hot
  /// paths (RunDag, per-merge-candidate runs) must not move this; tests
  /// assert on the delta.
  static uint64_t instances_created() {
    return instances_.load(std::memory_order_relaxed);
  }

 private:
  /// One submitted body invocation, claimable exactly once — either by a
  /// pool thread that popped it from the queue or by the submitting thread
  /// helping with its own batch.
  struct Task {
    std::function<void()> fn;
    std::atomic<bool> claimed{false};
  };

  void WorkerLoop();

  size_t num_threads_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable job_cv_;
  std::queue<std::shared_ptr<Task>> jobs_;
  bool stopping_ = false;

  std::atomic<uint64_t> batches_run_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> tasks_stolen_{0};

  static std::atomic<uint64_t> instances_;
};

/// Inject-or-own pool resolution implementing the ownership rules above:
/// Get() returns the injected pool when one is provided, and otherwise
/// lazily builds ONE owned pool (sized by the first request's thread
/// count) and reuses it for the owner's lifetime. The single helper behind
/// every fallback path — Executor, MergeOperation, PrioritizedSearch — so
/// no hot path can regress to per-call pool construction.
class LazyExecutionCore {
 public:
  ExecutionCore* Get(ExecutionCore* injected, size_t num_threads) {
    if (injected != nullptr) return injected;
    std::lock_guard<std::mutex> lock(mu_);
    if (owned_ == nullptr) {
      owned_ = std::make_unique<ExecutionCore>(num_threads);
    }
    return owned_.get();
  }

 private:
  std::mutex mu_;
  std::unique_ptr<ExecutionCore> owned_;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_EXECUTION_CORE_H_
