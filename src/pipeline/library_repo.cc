#include "pipeline/library_repo.h"

namespace mlcask::pipeline {

Status LibraryRepo::Put(const ComponentVersionSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("component spec missing name");
  }
  std::vector<ComponentVersionSpec>& versions = specs_[spec.name];
  for (const ComponentVersionSpec& existing : versions) {
    if (existing.version == spec.version) {
      if (existing == spec) return Status::Ok();  // idempotent re-put
      return Status::AlreadyExists(
          "library '" + spec.name + "' version " + spec.version.ToString() +
          " already registered with different contents");
    }
  }
  // Persist the metafile; similar versions share chunks on ForkBase.
  MLCASK_ASSIGN_OR_RETURN(
      storage::PutResult put,
      engine_->Put("library/" + spec.name, spec.ToJson().Dump()));
  if (clock_ != nullptr) clock_->Advance(put.storage_time_s);
  versions.push_back(spec);
  return Status::Ok();
}

StatusOr<const ComponentVersionSpec*> LibraryRepo::Get(
    const std::string& name, const version::SemanticVersion& version) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    return Status::NotFound("no library named '" + name + "'");
  }
  for (const ComponentVersionSpec& spec : it->second) {
    if (spec.version == version) return &spec;
  }
  return Status::NotFound("library '" + name + "' has no version " +
                          version.ToString());
}

std::vector<version::SemanticVersion> LibraryRepo::Versions(
    const std::string& name) const {
  std::vector<version::SemanticVersion> out;
  auto it = specs_.find(name);
  if (it == specs_.end()) return out;
  out.reserve(it->second.size());
  for (const ComponentVersionSpec& spec : it->second) {
    out.push_back(spec.version);
  }
  return out;
}

size_t LibraryRepo::size() const {
  size_t n = 0;
  for (const auto& [name, versions] : specs_) {
    (void)name;
    n += versions.size();
  }
  return n;
}

}  // namespace mlcask::pipeline
