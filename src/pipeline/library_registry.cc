#include "pipeline/library_registry.h"

#include <mutex>

namespace mlcask::pipeline {

Status LibraryRegistry::Register(const std::string& name, LibraryFn fn) {
  if (name.empty()) {
    return Status::InvalidArgument("library name must be non-empty");
  }
  if (fn == nullptr) {
    return Status::InvalidArgument("library function must be callable");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = fns_.emplace(name, std::move(fn));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("library '" + name + "' already registered");
  }
  return Status::Ok();
}

StatusOr<const LibraryFn*> LibraryRegistry::Get(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("library '" + name + "' not registered");
  }
  // Safe past the lock: map nodes are stable and never erased (see header).
  return &it->second;
}

bool LibraryRegistry::Has(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return fns_.find(name) != fns_.end();
}

std::vector<std::string> LibraryRegistry::List() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) {
    (void)fn;
    out.push_back(name);
  }
  return out;
}

}  // namespace mlcask::pipeline
