#ifndef MLCASK_PIPELINE_ARTIFACT_CACHE_H_
#define MLCASK_PIPELINE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/sha256.h"
#include "data/table.h"

namespace mlcask::pipeline {

/// One materialized component output, shared by every pipeline whose prefix
/// (or DAG ancestry) hashes to the same key. Entries are immutable once
/// published; readers hold them through shared_ptr so a concurrent Clear()
/// or LRU eviction cannot pull a table out from under a running pipeline.
struct ArtifactEntry {
  data::Table table;
  double score = std::nan("");
  std::string metric;
  std::map<std::string, double> metrics;
  Hash256 output_id;
  /// Virtual (sim-clock) time at which the producing worker finished this
  /// artifact. A worker that reuses the entry advances its own clock to at
  /// least this point — the waiting cost of sharing work across workers.
  double ready_at_s = 0;

  bool has_score() const { return !std::isnan(score); }
};

/// A concurrent artifact cache with per-key in-flight guards. This is the
/// single cache namespace behind the executor: chain prefixes from Run() and
/// DAG nodes from RunDag() use the same recursive keying
/// (Executor::NodeKey), so a chain and the equivalent linear DAG share
/// entries.
///
/// The in-flight guard is what keeps `executions()` — the paper's pruned
/// candidate metric — identical between serial and parallel search: when two
/// candidates sharing a prefix race, the second worker blocks on the first
/// worker's lease and reuses its result instead of recomputing it.
///
/// ## Byte-bounded LRU eviction
///
/// With `Options::max_bytes > 0` the cache evicts least-recently-used READY
/// entries when a new publish would push the total payload past the cap.
/// Eviction never touches:
///  - pending (leased) slots — their computation is in flight and a waiter
///    may be blocked on the lease;
///  - entries pinned by an outstanding EntryPtr reader (shared_ptr
///    use_count > 1) — a running pipeline's input can't be dropped while in
///    use, which also preserves the pointer-stability contract of
///    Executor::FindCached (the caller's EntryPtr keeps the entry both
///    alive and resident).
/// An evicted key simply recomputes on its next Acquire — eviction degrades
/// to recomputation, never to corruption. The cap is a high-water mark:
/// when everything resident is pinned or pending, a publish may exceed it
/// rather than fail (and a single entry larger than the cap is still
/// admitted).
class ArtifactCache {
 public:
  using EntryPtr = std::shared_ptr<const ArtifactEntry>;

  struct Options {
    /// Total payload cap in bytes across all shards; 0 = unbounded (the
    /// historical behaviour).
    uint64_t max_bytes = 0;
  };

  /// Cumulative cache accounting (all counters monotone except `bytes`).
  struct Stats {
    uint64_t bytes = 0;       ///< Resident payload bytes right now.
    uint64_t peak_bytes = 0;  ///< High-water mark of `bytes`.
    uint64_t evictions = 0;   ///< Entries dropped by the LRU policy.
    uint64_t insertions = 0;  ///< Entries published (Fulfill + Insert).
    /// Largest single entry ever published. Useful for sizing caps and for
    /// bounding the pinned overshoot: peak_bytes can exceed max_bytes by
    /// at most the transiently pinned working set — a couple of entries
    /// per concurrently running chain candidate, or a whole DAG run's
    /// planned-on cached nodes (RunDag pins its plan for the run's
    /// duration).
    uint64_t largest_entry_bytes = 0;
  };

  ArtifactCache() = default;
  explicit ArtifactCache(Options options) : options_(options) {}
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Exclusive right to compute one key. Obtained from Acquire(); must be
  /// passed to Fulfill() with the computed entry, or destroyed (e.g. on an
  /// error path), which abandons the key and wakes one waiter to take over.
  class Lease {
   public:
    Lease(Lease&& other) noexcept : cache_(other.cache_), key_(other.key_) {
      other.cache_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

   private:
    friend class ArtifactCache;
    Lease(ArtifactCache* cache, const Hash256& key)
        : cache_(cache), key_(key) {}
    ArtifactCache* cache_;  ///< Null once fulfilled or abandoned.
    Hash256 key_;
  };

  /// Result of Acquire(): exactly one of `entry` (the key is ready — reuse
  /// it) or `lease` (this caller must compute it) is set.
  struct Acquired {
    EntryPtr entry;
    std::unique_ptr<Lease> lease;
  };

  /// Non-blocking lookup; returns nullptr unless the key is ready (pending
  /// keys are invisible — Find never waits). A hit refreshes the entry's
  /// LRU position.
  EntryPtr Find(const Hash256& key) const;

  /// Either returns the ready entry, grants a lease (first caller on a
  /// missing key), or blocks while another worker holds the lease and
  /// returns its entry once fulfilled.
  Acquired Acquire(const Hash256& key);

  /// Publishes `entry` for the leased key and wakes all waiters. Returns the
  /// stored entry.
  EntryPtr Fulfill(Lease* lease, ArtifactEntry entry);

  /// Publishes `entry` unconditionally (checkpoint seeding, single-threaded
  /// setup). Overwrites a ready entry under the same key.
  EntryPtr Insert(const Hash256& key, ArtifactEntry entry);

  /// Number of ready entries.
  size_t size() const;

  /// Drops all ready entries. Keys with an active lease are left pending
  /// (their computation is still in flight and will publish as usual).
  void Clear();

  const Options& options() const { return options_; }
  Stats stats() const;

  /// Approximate resident size of one entry — the unit the byte cap is
  /// enforced in.
  static uint64_t EntryBytes(const ArtifactEntry& entry);

 private:
  struct Slot {
    EntryPtr entry;        ///< Set when ready.
    bool pending = false;  ///< True while a lease is outstanding.
    uint64_t bytes = 0;    ///< EntryBytes at publish time (ready slots).
    /// Position in the shard's recency list; valid only when `in_lru`.
    std::list<Hash256>::iterator lru_it;
    bool in_lru = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable ready_cv;
    std::unordered_map<Hash256, Slot, Hash256Hasher> slots;
    /// Ready keys, least-recently-used first. Pending slots are never
    /// listed (nothing to evict yet). Mutable so a const Find can refresh
    /// recency under the shard lock.
    mutable std::list<Hash256> lru;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const Hash256& key) {
    return shards_[key.bytes[0] % kNumShards];
  }
  const Shard& ShardFor(const Hash256& key) const {
    return shards_[key.bytes[0] % kNumShards];
  }

  void Abandon(const Hash256& key);

  /// Publishes `stored` into `shard` under its lock: replaces any previous
  /// ready entry's accounting and appends the key at the MRU end.
  void PublishLocked(Shard& shard, const Hash256& key, EntryPtr stored,
                     uint64_t nbytes);

  /// Evicts LRU unpinned ready entries (round-robin over shards) until
  /// `incoming` more bytes fit under the cap or nothing evictable remains.
  /// Must be called WITHOUT any shard lock held.
  void MakeRoom(uint64_t incoming);

  void UpdatePeak();

  Options options_;
  /// Serializes {MakeRoom, publish, peak update} when a byte cap is
  /// configured, making cap enforcement atomic across concurrent
  /// publishers — without it two racing publishes could each see room and
  /// together overshoot the cap. Never held while a shard lock is held
  /// (always taken first), so there is no ordering inversion; uncapped
  /// caches never touch it. Deliberate trade-off: capped publishes
  /// serialize (the sharding still serves lookups), buying strict byte
  /// accounting on exactly the runs that asked to be memory-bounded.
  std::mutex cap_mu_;
  Shard shards_[kNumShards];
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> largest_entry_bytes_{0};
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_ARTIFACT_CACHE_H_
