#ifndef MLCASK_PIPELINE_ARTIFACT_CACHE_H_
#define MLCASK_PIPELINE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sha256.h"
#include "common/sim_clock.h"
#include "data/table.h"

namespace mlcask::pipeline {

/// One materialized component output, shared by every pipeline whose prefix
/// (or DAG ancestry) hashes to the same key. Entries are immutable once
/// published; readers hold them through shared_ptr so a concurrent Clear()
/// or LRU eviction cannot pull a table out from under a running pipeline.
struct ArtifactEntry {
  data::Table table;
  double score = std::nan("");
  std::string metric;
  std::map<std::string, double> metrics;
  Hash256 output_id;
  /// Virtual (sim-clock) time at which the producing worker finished this
  /// artifact. A worker that reuses the entry advances its own clock to at
  /// least this point — the waiting cost of sharing work across workers —
  /// unless streamed handoff applies (see `stream_span`).
  double ready_at_s = 0;
  /// Stream watermark published with the entry: the producer's virtual start
  /// and the number of uniform chunk boundaries its output streamed across.
  /// Together with `ready_at_s` this is the per-chunk progress record a
  /// consumer needs to charge overlap-adjusted wait instead of the full
  /// finish time (streamed prefix handoff — see StreamSpan in sim_clock.h).
  /// Checkpoint seeds keep the defaults (not streamable: they were
  /// materialized before the run).
  double started_at_s = 0;
  uint32_t stream_chunks = 1;

  bool has_score() const { return !std::isnan(score); }
  StreamSpan stream_span() const {
    return StreamSpan{started_at_s, ready_at_s, stream_chunks};
  }
};

/// A concurrent artifact cache with per-key in-flight guards. This is the
/// single cache namespace behind the executor: chain prefixes from Run() and
/// DAG nodes from RunDag() use the same recursive keying
/// (Executor::NodeKey), so a chain and the equivalent linear DAG share
/// entries.
///
/// The in-flight guard is what keeps `executions()` — the paper's pruned
/// candidate metric — identical between serial and parallel search: when two
/// candidates sharing a prefix race, the second worker blocks on the first
/// worker's lease and reuses its result instead of recomputing it.
///
/// ## Byte-bounded eviction: global recency epoch
///
/// With `Options::max_bytes > 0` the cache evicts least-recently-used READY
/// entries when a new publish would push the total payload past the cap.
/// Recency is GLOBAL, not per-shard: every touch (Find hit, Acquire hit,
/// publish) stamps the slot with a cache-wide monotonic epoch from one
/// atomic counter, and eviction always drops the globally-oldest unpinned
/// ready entry. Victims are located through a lazily-maintained cross-shard
/// min-heap of (epoch, key) records. The hit path stays shard-local: a
/// touch records at most ONE live record per slot into its shard's pending
/// buffer under the shard lock it already holds (no cache-wide lock, no
/// per-touch heap churn); MakeRoom — serialized by cap_mu_ anyway — drains
/// the buffers into the heap and pops minima, REQUEUEING a record whose
/// epoch no longer matches its slot at the slot's current epoch (it is
/// that slot's only record, so requeue-on-stale keeps the order exact),
/// dropping records whose slot is gone, and setting pinned victims aside
/// for requeue after the sweep. The one-record-per-slot invariant bounds
/// heap + buffers at the number of ready slots ever resident. This
/// replaces the earlier round-robin per-shard LRU sweep, whose shard-local
/// eviction order recomputed ~5x more than a true global LRU on
/// adversarial layouts (hot keys concentrated on low shards — see the
/// recorded-trace regression test in tests/test_cache_eviction.cc, which
/// now gates the global policy at <= 1.5x an ideal global-LRU oracle).
/// Eviction never touches:
///  - pending (leased) slots — their computation is in flight and a waiter
///    may be blocked on the lease;
///  - entries pinned by an outstanding EntryPtr reader (shared_ptr
///    use_count > 1) — a running pipeline's input can't be dropped while in
///    use, which also preserves the pointer-stability contract of
///    Executor::FindCached (the caller's EntryPtr keeps the entry both
///    alive and resident).
/// An evicted key simply recomputes on its next Acquire — eviction degrades
/// to recomputation, never to corruption. The cap is a high-water mark:
/// when everything resident is pinned or pending, a publish may exceed it
/// rather than fail (and a single entry larger than the cap is still
/// admitted).
class ArtifactCache {
 public:
  using EntryPtr = std::shared_ptr<const ArtifactEntry>;

  struct Options {
    /// Total payload cap in bytes across all shards; 0 = unbounded (the
    /// historical behaviour).
    uint64_t max_bytes = 0;
  };

  /// Cumulative cache accounting (all counters monotone except `bytes`).
  struct Stats {
    uint64_t bytes = 0;       ///< Resident payload bytes right now.
    uint64_t peak_bytes = 0;  ///< High-water mark of `bytes`.
    uint64_t evictions = 0;   ///< Entries dropped by the LRU policy.
    uint64_t insertions = 0;  ///< Entries published (Fulfill + Insert).
    /// Largest single entry ever published. Useful for sizing caps and for
    /// bounding the pinned overshoot: peak_bytes can exceed max_bytes by
    /// at most the transiently pinned working set — a couple of entries
    /// per concurrently running chain candidate, or a whole DAG run's
    /// planned-on cached nodes (RunDag pins its plan for the run's
    /// duration).
    uint64_t largest_entry_bytes = 0;
  };

  ArtifactCache() = default;
  explicit ArtifactCache(Options options) : options_(options) {}
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Exclusive right to compute one key. Obtained from Acquire(); must be
  /// passed to Fulfill() with the computed entry, or destroyed (e.g. on an
  /// error path), which abandons the key and wakes one waiter to take over.
  class Lease {
   public:
    Lease(Lease&& other) noexcept : cache_(other.cache_), key_(other.key_) {
      other.cache_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

   private:
    friend class ArtifactCache;
    Lease(ArtifactCache* cache, const Hash256& key)
        : cache_(cache), key_(key) {}
    ArtifactCache* cache_;  ///< Null once fulfilled or abandoned.
    Hash256 key_;
  };

  /// Result of Acquire(): exactly one of `entry` (the key is ready — reuse
  /// it) or `lease` (this caller must compute it) is set.
  struct Acquired {
    EntryPtr entry;
    std::unique_ptr<Lease> lease;
  };

  /// Non-blocking lookup; returns nullptr unless the key is ready (pending
  /// keys are invisible — Find never waits). A hit refreshes the entry's
  /// LRU position.
  EntryPtr Find(const Hash256& key) const;

  /// Either returns the ready entry, grants a lease (first caller on a
  /// missing key), or blocks while another worker holds the lease and
  /// returns its entry once fulfilled.
  Acquired Acquire(const Hash256& key);

  /// Publishes `entry` for the leased key and wakes all waiters. Returns the
  /// stored entry.
  EntryPtr Fulfill(Lease* lease, ArtifactEntry entry);

  /// Publishes `entry` unconditionally (checkpoint seeding, single-threaded
  /// setup). Overwrites a ready entry under the same key.
  EntryPtr Insert(const Hash256& key, ArtifactEntry entry);

  /// Number of ready entries.
  size_t size() const;

  /// Drops all ready entries. Keys with an active lease are left pending
  /// (their computation is still in flight and will publish as usual).
  void Clear();

  const Options& options() const { return options_; }
  Stats stats() const;

  /// Approximate resident size of one entry — the unit the byte cap is
  /// enforced in.
  static uint64_t EntryBytes(const ArtifactEntry& entry);

 private:
  struct Slot {
    EntryPtr entry;        ///< Set when ready.
    bool pending = false;  ///< True while a lease is outstanding.
    uint64_t bytes = 0;    ///< EntryBytes at publish time (ready slots).
    /// Global recency epoch of the slot's last touch (stamped from the
    /// cache-wide atomic counter). 0 = never stamped.
    uint64_t epoch = 0;
    /// Whether a recency record for this slot is live in its shard's
    /// pending buffer or the cross-shard heap. At most one record exists
    /// per ready slot; a touch that finds one live only restamps `epoch`
    /// (MakeRoom requeues the stale record at the fresh epoch on pop).
    bool record_live = false;
  };

  /// One (epoch, key) record in the recency machinery (see the class
  /// comment): buffered per shard on touch, drained into the cross-shard
  /// heap by MakeRoom.
  struct RecencyRecord {
    uint64_t epoch = 0;
    Hash256 key;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable ready_cv;
    /// Mutable so a const Find can stamp recency under the shard lock.
    mutable std::unordered_map<Hash256, Slot, Hash256Hasher> slots;
    /// Recency records not yet drained into the heap. Guarded by `mu`;
    /// mutable for the same reason as `slots`. Only capped caches append.
    mutable std::vector<RecencyRecord> pending_records;
  };
  struct RecencyNewer {
    bool operator()(const RecencyRecord& a, const RecencyRecord& b) const {
      return a.epoch > b.epoch;  // min-heap: globally-oldest on top
    }
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const Hash256& key) {
    return shards_[key.bytes[0] % kNumShards];
  }
  const Shard& ShardFor(const Hash256& key) const {
    return shards_[key.bytes[0] % kNumShards];
  }

  void Abandon(const Hash256& key);

  /// Publishes `stored` into `shard` under its lock: replaces any previous
  /// ready entry's accounting and stamps a fresh recency epoch.
  void PublishLocked(Shard& shard, const Hash256& key, EntryPtr stored,
                     uint64_t nbytes);

  /// Stamps `slot` with a fresh global epoch and, on capped caches,
  /// ensures exactly one live recency record for it (appending to the
  /// shard's pending buffer when none is live). Caller holds the shard
  /// lock.
  void TouchLocked(const Shard& shard, const Hash256& key, Slot& slot) const;

  /// Evicts globally-oldest unpinned ready entries (via the recency heap)
  /// until `incoming` more bytes fit under the cap or nothing evictable
  /// remains. Caller holds cap_mu_ (which is the heap's guard) but no
  /// shard lock.
  void MakeRoom(uint64_t incoming);

  void UpdatePeak();

  Options options_;
  /// Serializes {MakeRoom, publish, peak update} when a byte cap is
  /// configured, making cap enforcement atomic across concurrent
  /// publishers — without it two racing publishes could each see room and
  /// together overshoot the cap. Never held while a shard lock is held
  /// (always taken first), so there is no ordering inversion; uncapped
  /// caches never touch it. Deliberate trade-off: capped publishes
  /// serialize (the sharding still serves lookups), buying strict byte
  /// accounting on exactly the runs that asked to be memory-bounded.
  std::mutex cap_mu_;
  Shard shards_[kNumShards];
  /// Cache-wide monotonic recency counter; every touch of a ready slot
  /// draws the next epoch, so "globally oldest" is well-defined across
  /// shards without any cross-shard lock on the touch path.
  mutable std::atomic<uint64_t> epoch_{0};
  /// Cross-shard recency heap. Accessed ONLY from MakeRoom, which always
  /// runs under cap_mu_ — the cap lock doubles as the heap's guard, so the
  /// hit path never takes a cache-wide lock for recency bookkeeping.
  std::priority_queue<RecencyRecord, std::vector<RecencyRecord>,
                      RecencyNewer>
      recency_heap_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> largest_entry_bytes_{0};
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_ARTIFACT_CACHE_H_
