#ifndef MLCASK_PIPELINE_ARTIFACT_CACHE_H_
#define MLCASK_PIPELINE_ARTIFACT_CACHE_H_

#include <cmath>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/sha256.h"
#include "data/table.h"

namespace mlcask::pipeline {

/// One materialized component output, shared by every pipeline whose prefix
/// (or DAG ancestry) hashes to the same key. Entries are immutable once
/// published; readers hold them through shared_ptr so a concurrent Clear()
/// cannot pull a table out from under a running pipeline.
struct ArtifactEntry {
  data::Table table;
  double score = std::nan("");
  std::string metric;
  std::map<std::string, double> metrics;
  Hash256 output_id;
  /// Virtual (sim-clock) time at which the producing worker finished this
  /// artifact. A worker that reuses the entry advances its own clock to at
  /// least this point — the waiting cost of sharing work across workers.
  double ready_at_s = 0;

  bool has_score() const { return !std::isnan(score); }
};

/// A concurrent artifact cache with per-key in-flight guards. This is the
/// single cache namespace behind the executor: chain prefixes from Run() and
/// DAG nodes from RunDag() use the same recursive keying
/// (Executor::NodeKey), so a chain and the equivalent linear DAG share
/// entries.
///
/// The in-flight guard is what keeps `executions()` — the paper's pruned
/// candidate metric — identical between serial and parallel search: when two
/// candidates sharing a prefix race, the second worker blocks on the first
/// worker's lease and reuses its result instead of recomputing it.
class ArtifactCache {
 public:
  using EntryPtr = std::shared_ptr<const ArtifactEntry>;

  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Exclusive right to compute one key. Obtained from Acquire(); must be
  /// passed to Fulfill() with the computed entry, or destroyed (e.g. on an
  /// error path), which abandons the key and wakes one waiter to take over.
  class Lease {
   public:
    Lease(Lease&& other) noexcept : cache_(other.cache_), key_(other.key_) {
      other.cache_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

   private:
    friend class ArtifactCache;
    Lease(ArtifactCache* cache, const Hash256& key)
        : cache_(cache), key_(key) {}
    ArtifactCache* cache_;  ///< Null once fulfilled or abandoned.
    Hash256 key_;
  };

  /// Result of Acquire(): exactly one of `entry` (the key is ready — reuse
  /// it) or `lease` (this caller must compute it) is set.
  struct Acquired {
    EntryPtr entry;
    std::unique_ptr<Lease> lease;
  };

  /// Non-blocking lookup; returns nullptr unless the key is ready (pending
  /// keys are invisible — Find never waits).
  EntryPtr Find(const Hash256& key) const;

  /// Either returns the ready entry, grants a lease (first caller on a
  /// missing key), or blocks while another worker holds the lease and
  /// returns its entry once fulfilled.
  Acquired Acquire(const Hash256& key);

  /// Publishes `entry` for the leased key and wakes all waiters. Returns the
  /// stored entry.
  EntryPtr Fulfill(Lease* lease, ArtifactEntry entry);

  /// Publishes `entry` unconditionally (checkpoint seeding, single-threaded
  /// setup). Overwrites a ready entry under the same key.
  EntryPtr Insert(const Hash256& key, ArtifactEntry entry);

  /// Number of ready entries.
  size_t size() const;

  /// Drops all ready entries. Keys with an active lease are left pending
  /// (their computation is still in flight and will publish as usual).
  void Clear();

 private:
  struct Slot {
    EntryPtr entry;       ///< Set when ready.
    bool pending = false; ///< True while a lease is outstanding.
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable ready_cv;
    std::unordered_map<Hash256, Slot, Hash256Hasher> slots;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const Hash256& key) {
    return shards_[key.bytes[0] % kNumShards];
  }
  const Shard& ShardFor(const Hash256& key) const {
    return shards_[key.bytes[0] % kNumShards];
  }

  void Abandon(const Hash256& key);

  Shard shards_[kNumShards];
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_ARTIFACT_CACHE_H_
