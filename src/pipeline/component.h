#ifndef MLCASK_PIPELINE_COMPONENT_H_
#define MLCASK_PIPELINE_COMPONENT_H_

#include <string>

#include "common/json.h"
#include "common/sha256.h"
#include "common/status.h"
#include "version/commit.h"
#include "version/semver.h"

namespace mlcask::pipeline {

/// What a component is (paper Sec. III: datasets, pre-processing methods,
/// and ML models; the latter two are "libraries").
enum class ComponentKind : uint8_t {
  kDataset = 0,
  kPreprocessor = 1,
  kModel = 2,
};

const char* ComponentKindName(ComponentKind k);
StatusOr<ComponentKind> ParseComponentKind(std::string_view name);

/// The full definition of one version of a pipeline component — the library
/// metafile of the paper ("describes the entry point, inputs and outputs, as
/// well as all the essential hyperparameters").
struct ComponentVersionSpec {
  std::string name;                  ///< Component identity, e.g. "cnn".
  version::SemanticVersion version;  ///< Semantic version, e.g. master@0.3.
  ComponentKind kind = ComponentKind::kPreprocessor;
  /// Schema id this version consumes (0 = source component, no input).
  uint64_t input_schema = 0;
  /// Schema id this version produces. Changing it is exactly what a
  /// `schema` bump in the semantic version means.
  uint64_t output_schema = 0;
  /// Entry point: name of the registered library function.
  std::string impl;
  /// Hyperparameters passed to the entry point.
  Json params = Json::Object();
  /// Simulated execution cost in seconds per 1000 input rows; calibrated by
  /// the workload builders to match the paper's pipeline time profiles.
  double cost_per_krow_s = 1.0;

  /// Unique key "name@branch@schema.increment" for maps and logs.
  std::string Key() const {
    return name + "@" + version.ToString(/*simplify_master=*/false);
  }

  /// Projection into the commit-snapshot record (without output id).
  version::ComponentRecord ToRecord() const;

  /// Library-metafile round trip.
  Json ToJson() const;
  static StatusOr<ComponentVersionSpec> FromJson(const Json& j);

  /// True if `next` can consume this component's output (Def. 4, with the
  /// paper's assumption that the output data schema is the only
  /// compatibility factor).
  bool CompatibleWith(const ComponentVersionSpec& next) const {
    return output_schema == next.input_schema;
  }

  bool operator==(const ComponentVersionSpec& other) const;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_COMPONENT_H_
