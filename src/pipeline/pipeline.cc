#include "pipeline/pipeline.h"

#include <algorithm>
#include <deque>

namespace mlcask::pipeline {

int Pipeline::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Pipeline::AddComponent(ComponentVersionSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("component name must be non-empty");
  }
  if (IndexOf(spec.name) >= 0) {
    return Status::AlreadyExists("component '" + spec.name +
                                 "' already in pipeline");
  }
  components_.push_back(std::move(spec));
  return Status::Ok();
}

Status Pipeline::Connect(const std::string& from, const std::string& to) {
  int fi = IndexOf(from);
  int ti = IndexOf(to);
  if (fi < 0 || ti < 0) {
    return Status::NotFound("edge endpoint not in pipeline: " + from + "->" +
                            to);
  }
  if (fi == ti) {
    return Status::InvalidArgument("self edge on '" + from + "'");
  }
  auto edge = std::make_pair(static_cast<size_t>(fi), static_cast<size_t>(ti));
  if (std::find(edges_.begin(), edges_.end(), edge) != edges_.end()) {
    return Status::AlreadyExists("edge already exists: " + from + "->" + to);
  }
  edges_.push_back(edge);
  return Status::Ok();
}

StatusOr<const ComponentVersionSpec*> Pipeline::Find(
    const std::string& name) const {
  int i = IndexOf(name);
  if (i < 0) {
    return Status::NotFound("component '" + name + "' not in pipeline");
  }
  return &components_[static_cast<size_t>(i)];
}

std::vector<std::string> Pipeline::Predecessors(const std::string& name) const {
  std::vector<std::string> out;
  int i = IndexOf(name);
  if (i < 0) return out;
  for (const auto& [from, to] : edges_) {
    if (to == static_cast<size_t>(i)) out.push_back(components_[from].name);
  }
  return out;
}

std::vector<std::string> Pipeline::Successors(const std::string& name) const {
  std::vector<std::string> out;
  int i = IndexOf(name);
  if (i < 0) return out;
  for (const auto& [from, to] : edges_) {
    if (from == static_cast<size_t>(i)) out.push_back(components_[to].name);
  }
  return out;
}

StatusOr<std::vector<const ComponentVersionSpec*>> Pipeline::TopologicalOrder()
    const {
  std::vector<size_t> indegree(components_.size(), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    indegree[to] += 1;
  }
  std::deque<size_t> ready;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<const ComponentVersionSpec*> order;
  while (!ready.empty()) {
    size_t cur = ready.front();
    ready.pop_front();
    order.push_back(&components_[cur]);
    for (const auto& [from, to] : edges_) {
      if (from == cur && --indegree[to] == 0) ready.push_back(to);
    }
  }
  if (order.size() != components_.size()) {
    return Status::Corruption("pipeline DAG contains a cycle");
  }
  return order;
}

Status Pipeline::Validate() const {
  if (components_.empty()) {
    return Status::InvalidArgument("pipeline has no components");
  }
  MLCASK_RETURN_IF_ERROR(TopologicalOrder().status());
  for (const ComponentVersionSpec& c : components_) {
    std::vector<std::string> preds = Predecessors(c.name);
    if (preds.empty()) {
      if (c.kind != ComponentKind::kDataset) {
        return Status::InvalidArgument("source component '" + c.name +
                                       "' is not a dataset");
      }
    } else if (c.kind == ComponentKind::kDataset) {
      return Status::InvalidArgument("dataset component '" + c.name +
                                     "' has a predecessor");
    }
  }
  return Status::Ok();
}

bool Pipeline::IsChain() const {
  if (components_.empty()) return false;
  if (edges_.size() + 1 != components_.size()) return false;
  std::vector<size_t> in(components_.size(), 0), out(components_.size(), 0);
  for (const auto& [from, to] : edges_) {
    in[to] += 1;
    out[from] += 1;
  }
  for (size_t i = 0; i < components_.size(); ++i) {
    if (in[i] > 1 || out[i] > 1) return false;
  }
  return TopologicalOrder().ok();
}

Status Pipeline::CheckCompatibility() const {
  for (const auto& [from, to] : edges_) {
    const ComponentVersionSpec& a = components_[from];
    const ComponentVersionSpec& b = components_[to];
    if (!a.CompatibleWith(b)) {
      return Status::Incompatible(
          "component <" + b.name + ", " + b.version.ToString() +
          "> cannot consume output schema of <" + a.name + ", " +
          a.version.ToString() + ">");
    }
  }
  return Status::Ok();
}

StatusOr<Pipeline> Pipeline::Chain(std::string name,
                                   std::vector<ComponentVersionSpec> specs) {
  Pipeline p(std::move(name));
  for (ComponentVersionSpec& s : specs) {
    MLCASK_RETURN_IF_ERROR(p.AddComponent(std::move(s)));
  }
  for (size_t i = 0; i + 1 < p.components_.size(); ++i) {
    MLCASK_RETURN_IF_ERROR(
        p.Connect(p.components_[i].name, p.components_[i + 1].name));
  }
  MLCASK_RETURN_IF_ERROR(p.Validate());
  return p;
}

Json Pipeline::ToJson() const {
  Json j = Json::Object();
  j.Set("name", Json::Str(name_));
  Json comps = Json::Array();
  for (const ComponentVersionSpec& c : components_) comps.Append(c.ToJson());
  j.Set("components", std::move(comps));
  Json edges = Json::Array();
  for (const auto& [from, to] : edges_) {
    Json e = Json::Array();
    e.Append(Json::Str(components_[from].name));
    e.Append(Json::Str(components_[to].name));
    edges.Append(std::move(e));
  }
  j.Set("edges", std::move(edges));
  return j;
}

StatusOr<Pipeline> Pipeline::FromJson(const Json& j) {
  Pipeline p(j.GetString("name"));
  const Json* comps = j.Get("components");
  if (comps == nullptr || !comps->is_array()) {
    return Status::InvalidArgument("pipeline metafile missing components");
  }
  for (size_t i = 0; i < comps->size(); ++i) {
    MLCASK_ASSIGN_OR_RETURN(ComponentVersionSpec s,
                            ComponentVersionSpec::FromJson(comps->at(i)));
    MLCASK_RETURN_IF_ERROR(p.AddComponent(std::move(s)));
  }
  const Json* edges = j.Get("edges");
  if (edges != nullptr && edges->is_array()) {
    for (size_t i = 0; i < edges->size(); ++i) {
      const Json& e = edges->at(i);
      if (!e.is_array() || e.size() != 2) {
        return Status::InvalidArgument("bad edge in pipeline metafile");
      }
      MLCASK_RETURN_IF_ERROR(
          p.Connect(e.at(0).AsString(), e.at(1).AsString()));
    }
  }
  return p;
}

version::PipelineSnapshot Pipeline::ToSnapshot() const {
  version::PipelineSnapshot snap;
  auto order = TopologicalOrder();
  if (order.ok()) {
    for (const ComponentVersionSpec* c : *order) {
      snap.components.push_back(c->ToRecord());
    }
  }
  return snap;
}

}  // namespace mlcask::pipeline
