#ifndef MLCASK_PIPELINE_LIBRARY_REPO_H_
#define MLCASK_PIPELINE_LIBRARY_REPO_H_

#include <map>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "pipeline/component.h"
#include "storage/storage_engine.h"
#include "version/semver.h"

namespace mlcask::pipeline {

/// The library/dataset repository of Fig. 1: stores every version of every
/// component's metafile (and, conceptually, its executables), shared by all
/// pipelines "in order to reduce storage costs". Metafiles are persisted
/// through the storage engine — on the ForkBase engine, near-identical
/// versions de-duplicate at chunk level, which is one of the two storage
/// effects Fig. 7 measures.
class LibraryRepo {
 public:
  /// `engine` must outlive the repo; `clock` may be nullptr.
  LibraryRepo(storage::StorageEngine* engine, SimClock* clock)
      : engine_(engine), clock_(clock) {}

  /// Registers a component version. Re-putting an identical spec is a no-op;
  /// a different spec under an existing (name, version) is rejected.
  Status Put(const ComponentVersionSpec& spec);

  /// Resolves a (component, version) to its full spec.
  StatusOr<const ComponentVersionSpec*> Get(
      const std::string& name, const version::SemanticVersion& version) const;

  /// All stored versions of a component, in insertion order.
  std::vector<version::SemanticVersion> Versions(const std::string& name) const;

  size_t size() const;

 private:
  storage::StorageEngine* engine_;
  SimClock* clock_;
  // name -> version string -> spec (insertion-ordered via vector).
  std::map<std::string, std::vector<ComponentVersionSpec>> specs_;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_LIBRARY_REPO_H_
