#include "pipeline/component.h"

namespace mlcask::pipeline {

const char* ComponentKindName(ComponentKind k) {
  switch (k) {
    case ComponentKind::kDataset:
      return "dataset";
    case ComponentKind::kPreprocessor:
      return "preprocessor";
    case ComponentKind::kModel:
      return "model";
  }
  return "unknown";
}

StatusOr<ComponentKind> ParseComponentKind(std::string_view name) {
  if (name == "dataset") return ComponentKind::kDataset;
  if (name == "preprocessor") return ComponentKind::kPreprocessor;
  if (name == "model") return ComponentKind::kModel;
  return Status::InvalidArgument("unknown component kind '" +
                                 std::string(name) + "'");
}

version::ComponentRecord ComponentVersionSpec::ToRecord() const {
  version::ComponentRecord r;
  r.name = name;
  r.version = version;
  r.input_schema = input_schema;
  r.output_schema = output_schema;
  return r;
}

Json ComponentVersionSpec::ToJson() const {
  Json j = Json::Object();
  j.Set("name", Json::Str(name));
  j.Set("version", Json::Str(version.ToString(/*simplify_master=*/false)));
  j.Set("kind", Json::Str(ComponentKindName(kind)));
  j.Set("input_schema", Json::Int(static_cast<int64_t>(input_schema)));
  j.Set("output_schema", Json::Int(static_cast<int64_t>(output_schema)));
  j.Set("impl", Json::Str(impl));
  j.Set("params", params);
  j.Set("cost_per_krow_s", Json::Number(cost_per_krow_s));
  return j;
}

StatusOr<ComponentVersionSpec> ComponentVersionSpec::FromJson(const Json& j) {
  ComponentVersionSpec s;
  s.name = j.GetString("name");
  if (s.name.empty()) {
    return Status::InvalidArgument("component metafile missing name");
  }
  MLCASK_ASSIGN_OR_RETURN(s.version,
                          version::SemanticVersion::Parse(j.GetString("version")));
  MLCASK_ASSIGN_OR_RETURN(s.kind, ParseComponentKind(j.GetString("kind")));
  s.input_schema = static_cast<uint64_t>(j.GetInt("input_schema"));
  s.output_schema = static_cast<uint64_t>(j.GetInt("output_schema"));
  s.impl = j.GetString("impl");
  if (s.impl.empty()) {
    return Status::InvalidArgument("component metafile missing impl");
  }
  const Json* params = j.Get("params");
  if (params != nullptr) s.params = *params;
  s.cost_per_krow_s = j.GetDouble("cost_per_krow_s", 1.0);
  return s;
}

bool ComponentVersionSpec::operator==(const ComponentVersionSpec& other) const {
  return name == other.name && version == other.version && kind == other.kind &&
         input_schema == other.input_schema &&
         output_schema == other.output_schema && impl == other.impl &&
         params == other.params && cost_per_krow_s == other.cost_per_krow_s;
}

}  // namespace mlcask::pipeline
