#include "pipeline/artifact_cache.h"

namespace mlcask::pipeline {

ArtifactCache::Lease::~Lease() {
  if (cache_ != nullptr) cache_->Abandon(key_);
}

uint64_t ArtifactCache::EntryBytes(const ArtifactEntry& entry) {
  uint64_t bytes = entry.table.ByteSize() + sizeof(ArtifactEntry);
  bytes += entry.metric.size();
  for (const auto& [name, value] : entry.metrics) {
    (void)value;
    bytes += name.size() + sizeof(double) + 16;  // node overhead estimate
  }
  return bytes;
}

void ArtifactCache::TouchLocked(const Shard& shard, const Hash256& key,
                                Slot& slot) const {
  slot.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.max_bytes == 0) return;  // nothing ever evicts
  // One live record per slot: if one is already buffered or in the heap,
  // restamping the epoch is enough — MakeRoom requeues the record at the
  // slot's current epoch when it pops stale. Touches therefore cost the
  // shard lock they already hold plus (at most) one vector append.
  if (!slot.record_live) {
    shard.pending_records.push_back(RecencyRecord{slot.epoch, key});
    slot.record_live = true;
  }
}

ArtifactCache::EntryPtr ArtifactCache::Find(const Hash256& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.slots.find(key);
  if (it == shard.slots.end() || it->second.entry == nullptr) return nullptr;
  TouchLocked(shard, key, it->second);
  return it->second.entry;
}

ArtifactCache::Acquired ArtifactCache::Acquire(const Hash256& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.slots.find(key);
    if (it == shard.slots.end()) {
      shard.slots[key].pending = true;
      Acquired acquired;
      acquired.lease.reset(new Lease(this, key));
      return acquired;
    }
    if (it->second.entry != nullptr) {
      TouchLocked(shard, key, it->second);
      Acquired acquired;
      acquired.entry = it->second.entry;
      return acquired;
    }
    // Pending under another worker's lease: wait for Fulfill (entry set) or
    // Abandon (slot erased, in which case this worker may claim it).
    shard.ready_cv.wait(lock);
  }
}

void ArtifactCache::PublishLocked(Shard& shard, const Hash256& key,
                                  EntryPtr stored, uint64_t nbytes) {
  Slot& slot = shard.slots[key];
  if (slot.entry != nullptr) {
    // Overwrite of a ready entry: retire the old accounting first.
    bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
  }
  slot.entry = std::move(stored);
  slot.pending = false;
  slot.bytes = nbytes;
  bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  uint64_t largest = largest_entry_bytes_.load(std::memory_order_relaxed);
  while (nbytes > largest &&
         !largest_entry_bytes_.compare_exchange_weak(
             largest, nbytes, std::memory_order_relaxed)) {
  }
  TouchLocked(shard, key, slot);
}

void ArtifactCache::MakeRoom(uint64_t incoming) {
  const uint64_t cap = options_.max_bytes;
  if (cap == 0) return;
  // cap_mu_ (held by the caller) guards the heap, so this whole sweep is
  // single-threaded; only the brief per-shard locks touch shared hit-path
  // state. First drain every shard's pending records into the heap so the
  // globally-oldest candidate is actually visible here.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const RecencyRecord& rec : shard.pending_records) {
      recency_heap_.push(rec);
    }
    shard.pending_records.clear();
  }
  // Pop globally-oldest records until the incoming entry fits. Each pop
  // either evicts its slot (consuming the slot's one record), drops a
  // record whose slot is gone, requeues a stale record at the slot's
  // current epoch (still its only record, so ordering stays exact), or
  // sets a pinned victim aside for requeue after the sweep. An exhausted
  // heap means everything resident is pinned or pending — the cap then
  // yields (high-water-mark semantics) rather than blocking the publish.
  std::vector<RecencyRecord> pinned;
  while (bytes_.load(std::memory_order_relaxed) + incoming > cap &&
         !recency_heap_.empty()) {
    RecencyRecord victim = recency_heap_.top();
    recency_heap_.pop();
    Shard& shard = ShardFor(victim.key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.slots.find(victim.key);
    if (it == shard.slots.end() || it->second.entry == nullptr) {
      continue;  // slot evicted/cleared meanwhile: the record dies with it
    }
    Slot& slot = it->second;
    if (slot.epoch != victim.epoch) {
      // Touched since the record was created; reorder it to its true spot.
      recency_heap_.push(RecencyRecord{slot.epoch, victim.key});
      continue;
    }
    // Pinned by an outstanding reader: the shard lock makes use_count exact
    // here (new copies are only handed out under it), so count 1 means the
    // cache holds the sole reference and may drop it.
    if (slot.entry.use_count() > 1) {
      pinned.push_back(victim);
      continue;
    }
    bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.slots.erase(it);
  }
  for (const RecencyRecord& rec : pinned) recency_heap_.push(rec);
}

void ArtifactCache::UpdatePeak() {
  uint64_t now = bytes_.load(std::memory_order_relaxed);
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

ArtifactCache::EntryPtr ArtifactCache::Fulfill(Lease* lease,
                                               ArtifactEntry entry) {
  Shard& shard = ShardFor(lease->key_);
  EntryPtr stored = std::make_shared<const ArtifactEntry>(std::move(entry));
  const uint64_t nbytes = EntryBytes(*stored);
  {
    // Make room first so the resident total stays under the cap after the
    // publish; `stored` is held by this frame, so the new entry itself can
    // never be a victim of a concurrent sweep. cap_mu_ makes the
    // check-then-publish atomic against other publishers.
    std::unique_lock<std::mutex> cap_lock;
    if (options_.max_bytes > 0) {
      cap_lock = std::unique_lock<std::mutex>(cap_mu_);
    }
    MakeRoom(nbytes);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      PublishLocked(shard, lease->key_, stored, nbytes);
    }
    UpdatePeak();
  }
  shard.ready_cv.notify_all();
  lease->cache_ = nullptr;  // disarm the destructor
  return stored;
}

ArtifactCache::EntryPtr ArtifactCache::Insert(const Hash256& key,
                                              ArtifactEntry entry) {
  Shard& shard = ShardFor(key);
  EntryPtr stored = std::make_shared<const ArtifactEntry>(std::move(entry));
  const uint64_t nbytes = EntryBytes(*stored);
  {
    std::unique_lock<std::mutex> cap_lock;
    if (options_.max_bytes > 0) {
      cap_lock = std::unique_lock<std::mutex>(cap_mu_);
    }
    MakeRoom(nbytes);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      PublishLocked(shard, key, stored, nbytes);
    }
    UpdatePeak();
  }
  shard.ready_cv.notify_all();
  return stored;
}

void ArtifactCache::Abandon(const Hash256& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.slots.find(key);
    if (it != shard.slots.end() && it->second.entry == nullptr) {
      shard.slots.erase(it);
    }
  }
  shard.ready_cv.notify_all();
}

size_t ArtifactCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, slot] : shard.slots) {
      (void)key;
      if (slot.entry != nullptr) ++total;
    }
  }
  return total;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats s;
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.largest_entry_bytes = largest_entry_bytes_.load(std::memory_order_relaxed);
  return s;
}

void ArtifactCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.slots.begin(); it != shard.slots.end();) {
      if (it->second.pending) {
        ++it;
      } else {
        bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
        it = shard.slots.erase(it);
      }
    }
    // Only ready slots carry records, and all of them were just erased.
    shard.pending_records.clear();
  }
  // Heap records for the dropped keys find no slot when popped and die
  // there; no need to rebuild the heap here.
}

}  // namespace mlcask::pipeline
