#include "pipeline/artifact_cache.h"

namespace mlcask::pipeline {

ArtifactCache::Lease::~Lease() {
  if (cache_ != nullptr) cache_->Abandon(key_);
}

ArtifactCache::EntryPtr ArtifactCache::Find(const Hash256& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.slots.find(key);
  if (it == shard.slots.end() || it->second.entry == nullptr) return nullptr;
  return it->second.entry;
}

ArtifactCache::Acquired ArtifactCache::Acquire(const Hash256& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.slots.find(key);
    if (it == shard.slots.end()) {
      shard.slots[key].pending = true;
      Acquired acquired;
      acquired.lease.reset(new Lease(this, key));
      return acquired;
    }
    if (it->second.entry != nullptr) {
      Acquired acquired;
      acquired.entry = it->second.entry;
      return acquired;
    }
    // Pending under another worker's lease: wait for Fulfill (entry set) or
    // Abandon (slot erased, in which case this worker may claim it).
    shard.ready_cv.wait(lock);
  }
}

ArtifactCache::EntryPtr ArtifactCache::Fulfill(Lease* lease,
                                               ArtifactEntry entry) {
  Shard& shard = ShardFor(lease->key_);
  EntryPtr stored = std::make_shared<const ArtifactEntry>(std::move(entry));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Slot& slot = shard.slots[lease->key_];
    slot.entry = stored;
    slot.pending = false;
  }
  shard.ready_cv.notify_all();
  lease->cache_ = nullptr;  // disarm the destructor
  return stored;
}

ArtifactCache::EntryPtr ArtifactCache::Insert(const Hash256& key,
                                              ArtifactEntry entry) {
  Shard& shard = ShardFor(key);
  EntryPtr stored = std::make_shared<const ArtifactEntry>(std::move(entry));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Slot& slot = shard.slots[key];
    slot.entry = stored;
    slot.pending = false;
  }
  shard.ready_cv.notify_all();
  return stored;
}

void ArtifactCache::Abandon(const Hash256& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.slots.find(key);
    if (it != shard.slots.end() && it->second.entry == nullptr) {
      shard.slots.erase(it);
    }
  }
  shard.ready_cv.notify_all();
}

size_t ArtifactCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, slot] : shard.slots) {
      (void)key;
      if (slot.entry != nullptr) ++total;
    }
  }
  return total;
}

void ArtifactCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.slots.begin(); it != shard.slots.end();) {
      if (it->second.pending) {
        ++it;
      } else {
        it = shard.slots.erase(it);
      }
    }
  }
}

}  // namespace mlcask::pipeline
