#include "pipeline/artifact_cache.h"

namespace mlcask::pipeline {

ArtifactCache::Lease::~Lease() {
  if (cache_ != nullptr) cache_->Abandon(key_);
}

uint64_t ArtifactCache::EntryBytes(const ArtifactEntry& entry) {
  uint64_t bytes = entry.table.ByteSize() + sizeof(ArtifactEntry);
  bytes += entry.metric.size();
  for (const auto& [name, value] : entry.metrics) {
    (void)value;
    bytes += name.size() + sizeof(double) + 16;  // node overhead estimate
  }
  return bytes;
}

ArtifactCache::EntryPtr ArtifactCache::Find(const Hash256& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.slots.find(key);
  if (it == shard.slots.end() || it->second.entry == nullptr) return nullptr;
  if (it->second.in_lru) {
    shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
  }
  return it->second.entry;
}

ArtifactCache::Acquired ArtifactCache::Acquire(const Hash256& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.slots.find(key);
    if (it == shard.slots.end()) {
      shard.slots[key].pending = true;
      Acquired acquired;
      acquired.lease.reset(new Lease(this, key));
      return acquired;
    }
    if (it->second.entry != nullptr) {
      if (it->second.in_lru) {
        shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
      }
      Acquired acquired;
      acquired.entry = it->second.entry;
      return acquired;
    }
    // Pending under another worker's lease: wait for Fulfill (entry set) or
    // Abandon (slot erased, in which case this worker may claim it).
    shard.ready_cv.wait(lock);
  }
}

void ArtifactCache::PublishLocked(Shard& shard, const Hash256& key,
                                  EntryPtr stored, uint64_t nbytes) {
  Slot& slot = shard.slots[key];
  if (slot.in_lru) {
    // Overwrite of a ready entry: retire the old accounting first.
    bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
    shard.lru.erase(slot.lru_it);
  }
  slot.entry = std::move(stored);
  slot.pending = false;
  slot.bytes = nbytes;
  slot.lru_it = shard.lru.insert(shard.lru.end(), key);
  slot.in_lru = true;
  bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  uint64_t largest = largest_entry_bytes_.load(std::memory_order_relaxed);
  while (nbytes > largest &&
         !largest_entry_bytes_.compare_exchange_weak(
             largest, nbytes, std::memory_order_relaxed)) {
  }
}

void ArtifactCache::MakeRoom(uint64_t incoming) {
  const uint64_t cap = options_.max_bytes;
  if (cap == 0) return;
  // Sweep shards round-robin, dropping least-recently-used unpinned ready
  // entries until the incoming entry fits. A full sweep with no progress
  // means everything resident is pinned (use_count > 1) or pending — the
  // cap then yields (high-water-mark semantics) rather than blocking the
  // publish.
  bool progress = true;
  while (progress &&
         bytes_.load(std::memory_order_relaxed) + incoming > cap) {
    progress = false;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.lru.begin();
      while (it != shard.lru.end() &&
             bytes_.load(std::memory_order_relaxed) + incoming > cap) {
        auto sit = shard.slots.find(*it);
        Slot& slot = sit->second;
        // Pinned by an outstanding reader: the shard lock makes use_count
        // exact here (new copies are only handed out under it), so count 1
        // means the cache holds the sole reference and may drop it.
        if (slot.entry.use_count() > 1) {
          ++it;
          continue;
        }
        bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        it = shard.lru.erase(it);
        shard.slots.erase(sit);
        progress = true;
      }
    }
  }
}

void ArtifactCache::UpdatePeak() {
  uint64_t now = bytes_.load(std::memory_order_relaxed);
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

ArtifactCache::EntryPtr ArtifactCache::Fulfill(Lease* lease,
                                               ArtifactEntry entry) {
  Shard& shard = ShardFor(lease->key_);
  EntryPtr stored = std::make_shared<const ArtifactEntry>(std::move(entry));
  const uint64_t nbytes = EntryBytes(*stored);
  {
    // Make room first so the resident total stays under the cap after the
    // publish; `stored` is held by this frame, so the new entry itself can
    // never be a victim of a concurrent sweep. cap_mu_ makes the
    // check-then-publish atomic against other publishers.
    std::unique_lock<std::mutex> cap_lock;
    if (options_.max_bytes > 0) {
      cap_lock = std::unique_lock<std::mutex>(cap_mu_);
    }
    MakeRoom(nbytes);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      PublishLocked(shard, lease->key_, stored, nbytes);
    }
    UpdatePeak();
  }
  shard.ready_cv.notify_all();
  lease->cache_ = nullptr;  // disarm the destructor
  return stored;
}

ArtifactCache::EntryPtr ArtifactCache::Insert(const Hash256& key,
                                              ArtifactEntry entry) {
  Shard& shard = ShardFor(key);
  EntryPtr stored = std::make_shared<const ArtifactEntry>(std::move(entry));
  const uint64_t nbytes = EntryBytes(*stored);
  {
    std::unique_lock<std::mutex> cap_lock;
    if (options_.max_bytes > 0) {
      cap_lock = std::unique_lock<std::mutex>(cap_mu_);
    }
    MakeRoom(nbytes);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      PublishLocked(shard, key, stored, nbytes);
    }
    UpdatePeak();
  }
  shard.ready_cv.notify_all();
  return stored;
}

void ArtifactCache::Abandon(const Hash256& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.slots.find(key);
    if (it != shard.slots.end() && it->second.entry == nullptr) {
      shard.slots.erase(it);
    }
  }
  shard.ready_cv.notify_all();
}

size_t ArtifactCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, slot] : shard.slots) {
      (void)key;
      if (slot.entry != nullptr) ++total;
    }
  }
  return total;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats s;
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.largest_entry_bytes = largest_entry_bytes_.load(std::memory_order_relaxed);
  return s;
}

void ArtifactCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.slots.begin(); it != shard.slots.end();) {
      if (it->second.pending) {
        ++it;
      } else {
        bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
        it = shard.slots.erase(it);
      }
    }
    // Only ready slots are listed, and all of them were just erased.
    shard.lru.clear();
  }
}

}  // namespace mlcask::pipeline
