#ifndef MLCASK_PIPELINE_CHECKOUT_H_
#define MLCASK_PIPELINE_CHECKOUT_H_

#include <set>
#include <string>

#include "common/status.h"
#include "pipeline/executor.h"
#include "pipeline/library_repo.h"
#include "pipeline/pipeline.h"
#include "storage/storage_engine.h"
#include "version/commit.h"

namespace mlcask::pipeline {

/// Rebuilds a runnable chain pipeline from a commit snapshot by resolving
/// every component record through the library repository — the "checkout"
/// half of retrospective research: any historical pipeline version can be
/// re-instantiated and re-run.
StatusOr<Pipeline> MaterializePipeline(const version::Commit& commit,
                                       const LibraryRepo& libraries,
                                       const std::string& pipeline_name);

/// Seeds `executor`'s artifact cache with every materialized output the
/// commit references (reading the artifacts back from `engine`). Prefixes
/// without outputs are skipped. When `seeded_keys` is non-null, the chain
/// key of each seeded prefix is recorded — the merge operation uses this to
/// mark the green (checkpointed) nodes of the search tree.
Status SeedExecutorFromCommit(const version::Commit& commit,
                              const LibraryRepo& libraries,
                              storage::StorageEngine* engine,
                              Executor* executor,
                              std::set<Hash256>* seeded_keys = nullptr);

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_CHECKOUT_H_
