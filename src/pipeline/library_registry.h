#ifndef MLCASK_PIPELINE_LIBRARY_REGISTRY_H_
#define MLCASK_PIPELINE_LIBRARY_REGISTRY_H_

#include <cmath>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "data/table.h"

namespace mlcask::pipeline {

/// Input to a library entry point.
struct ExecInput {
  /// Upstream output; nullptr for dataset (source) components. For
  /// multi-input components (DAG joins) this is the first predecessor.
  const data::Table* input = nullptr;
  /// All predecessor outputs in a deterministic order (name-sorted); size 1
  /// for chain components, larger for DAG join nodes.
  std::vector<const data::Table*> inputs;
  /// Hyperparameters from the component metafile.
  const Json* params = nullptr;
  /// Deterministic seed derived from the run.
  uint64_t seed = 1;
};

/// Output of a library entry point.
struct ExecOutput {
  data::Table table;
  /// Model components report their primary evaluation score here (NaN
  /// otherwise); `metric` names it.
  double score = std::nan("");
  std::string metric;
  /// Additional score-oriented metrics (higher is better), e.g. "auc",
  /// "inv_logloss". Sec. V: "If there are different metrics for evaluation,
  /// MLCask generates different optimal pipeline solutions for different
  /// metrics" — the merge can optimize any entry recorded here.
  std::map<std::string, double> metrics;

  bool has_score() const { return !std::isnan(score); }
};

/// A library executable: the actual computation behind a component.
using LibraryFn = std::function<StatusOr<ExecOutput>(const ExecInput&)>;

/// Maps entry-point names (the `impl` field of component metafiles) to
/// executables. The paper's library repository stores executables; here the
/// registry is the lookup half, while the storage engine holds the metafiles.
///
/// Thread safety: lookups take a shared lock and registration an exclusive
/// one, so dynamically loading new libraries while executors run is safe.
/// The LibraryFn pointer Get() returns stays valid for the registry's
/// lifetime: entries live in a node-based map and are never erased or
/// overwritten (re-registering a name fails with AlreadyExists), so a
/// worker may keep calling through the pointer while other libraries land.
class LibraryRegistry {
 public:
  Status Register(const std::string& name, LibraryFn fn);

  StatusOr<const LibraryFn*> Get(const std::string& name) const;
  bool Has(const std::string& name) const;

  std::vector<std::string> List() const;
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return fns_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, LibraryFn> fns_;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_LIBRARY_REGISTRY_H_
