#include "pipeline/checkout.h"

#include <cmath>

namespace mlcask::pipeline {

StatusOr<Pipeline> MaterializePipeline(const version::Commit& commit,
                                       const LibraryRepo& libraries,
                                       const std::string& pipeline_name) {
  std::vector<ComponentVersionSpec> specs;
  specs.reserve(commit.snapshot.components.size());
  for (const version::ComponentRecord& rec : commit.snapshot.components) {
    MLCASK_ASSIGN_OR_RETURN(const ComponentVersionSpec* spec,
                            libraries.Get(rec.name, rec.version));
    specs.push_back(*spec);
  }
  return Pipeline::Chain(pipeline_name, std::move(specs));
}

Status SeedExecutorFromCommit(const version::Commit& commit,
                              const LibraryRepo& libraries,
                              storage::StorageEngine* engine,
                              Executor* executor,
                              std::set<Hash256>* seeded_keys) {
  std::vector<ComponentVersionSpec> chain;
  const auto& records = commit.snapshot.components;
  for (size_t i = 0; i < records.size(); ++i) {
    MLCASK_ASSIGN_OR_RETURN(const ComponentVersionSpec* spec,
                            libraries.Get(records[i].name, records[i].version));
    chain.push_back(*spec);
    if (!records[i].has_output() || !engine->HasVersion(records[i].output_id)) {
      continue;
    }
    MLCASK_ASSIGN_OR_RETURN(std::string bytes,
                            engine->GetVersion(records[i].output_id));
    MLCASK_ASSIGN_OR_RETURN(data::Table table, data::Table::Deserialize(bytes));
    // Only the full pipeline carries the committed score/metrics.
    bool is_full = i + 1 == records.size();
    MLCASK_RETURN_IF_ERROR(executor->SeedCache(
        chain, std::move(table),
        is_full ? commit.snapshot.score : std::nan(""),
        is_full ? commit.snapshot.metric : "", records[i].output_id,
        is_full ? commit.snapshot.metrics : std::map<std::string, double>{}));
    if (seeded_keys != nullptr) {
      std::vector<const ComponentVersionSpec*> ptrs;
      ptrs.reserve(chain.size());
      for (const auto& s : chain) ptrs.push_back(&s);
      seeded_keys->insert(Executor::ChainKey(ptrs));
    }
  }
  return Status::Ok();
}

}  // namespace mlcask::pipeline
