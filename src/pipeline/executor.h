#ifndef MLCASK_PIPELINE_EXECUTOR_H_
#define MLCASK_PIPELINE_EXECUTOR_H_

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "data/table.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/execution_core.h"
#include "pipeline/library_registry.h"
#include "pipeline/pipeline.h"
#include "storage/storage_engine.h"
#include "version/commit.h"

namespace mlcask::pipeline {

/// Knobs that distinguish the systems under evaluation:
///  - ModelDB-style: reuse=false, precheck=false  (rerun everything, discover
///    incompatibility only when the failing component runs)
///  - MLflow-style:  reuse=true,  precheck=false
///  - MLCask:        reuse=true,  precheck=true   (skips doomed runs upfront)
struct ExecutorOptions {
  bool reuse_cached_outputs = true;
  bool precheck_compatibility = true;
  /// Materialize component outputs into the storage engine.
  bool store_outputs = true;
  uint64_t seed = 1;
  /// Worker threads for RunDag: independent DAG components dispatch
  /// concurrently through the ExecutionCore. 1 = explicitly serial
  /// (deterministic FIFO topological order, the pre-parallel behaviour);
  /// 0 = unset, meaning serial unless a driver-level default (e.g.
  /// sim::Deployment::num_workers) fills it in.
  size_t num_workers = 0;
  /// Per-run clock override. When set, this run charges its simulated time
  /// here instead of the executor's constructor clock — parallel searches
  /// give each worker its own timeline this way.
  SimClock* clock = nullptr;
  /// Streamed prefix handoff (virtual-time pipelined chunk streaming).
  /// When a run reuses an artifact another worker finishes at a LATER
  /// virtual time, the legacy charging advances this run's clock to the
  /// producer's full finish (`ready_at_s`) before anything else happens.
  /// With streaming on, the consumer instead starts once the producer's
  /// FIRST chunk crosses the handoff boundary and overlaps its own compute
  /// with the producer's tail; its finish is floored so it still processes
  /// the last chunk after the producer publishes it (see StreamSpan). The
  /// charged wait is never larger than the legacy one, so makespans only
  /// tighten; executions, scores, and winners are charging-invariant. A
  /// candidate whose FINAL component is a reuse still pays the full finish
  /// time — its score is not known before the producer completes. Set
  /// false to preserve the legacy full-wait charging (A/B comparison).
  bool streamed_handoff = true;
  /// Shared long-lived ExecutionCore (non-owning; must outlive the run).
  /// When set, RunDag schedules on it instead of the executor's own
  /// fallback pool — one deployment-wide pool serves every run and merge
  /// candidate (see the pool-ownership rules in execution_core.h). The
  /// pool's real thread count is independent of `num_workers`, which is the
  /// VIRTUAL machine width of this run.
  ExecutionCore* core = nullptr;
};

/// Per-component accounting of one pipeline run.
struct ComponentRunInfo {
  std::string name;
  version::SemanticVersion version;
  ComponentKind kind = ComponentKind::kPreprocessor;
  bool reused = false;    ///< Served from the artifact cache.
  bool executed = false;  ///< Actually ran its library function.
  double exec_s = 0;      ///< Simulated execution seconds charged.
  double storage_s = 0;   ///< Simulated storage seconds charged.
  uint64_t bytes_written = 0;
  Hash256 output_id;      ///< Materialized artifact version (zero if none).
};

/// Result of running one pipeline end to end.
struct PipelineRunResult {
  std::vector<ComponentRunInfo> components;
  TimeBreakdown time;
  double score = std::nan("");
  std::string metric;
  /// All score-oriented metrics reported by the pipeline's model component.
  std::map<std::string, double> metrics;
  /// Set when the run was aborted by a schema incompatibility: either
  /// detected upfront (precheck) or mid-run at the failing component.
  bool compatibility_failure = false;
  std::string failed_component;
  /// Snapshot with output ids and score, ready to commit.
  version::PipelineSnapshot snapshot;

  bool has_score() const { return !std::isnan(score); }
};

/// Runs pipelines against a library registry, charging simulated execution
/// and storage time, and maintaining the artifact cache keyed by the recursive
/// node key H(spec, parent keys). For a chain this collapses to a prefix
/// chain key, which is what lets sibling pipelines in a merge search tree
/// share everything up to their divergence point (paper Sec. VI-B: "nodes
/// sharing the same parent node also share the same path to the tree root").
/// Chain runs (Run) and DAG runs (RunDag) share one cache namespace: a chain
/// and the equivalent linear DAG hit the same entries.
///
/// Thread safety: one executor may serve many workers at once. The cache's
/// per-key in-flight guards make concurrent candidates sharing a prefix
/// compute it exactly once (the second worker waits and reuses), so
/// executions() matches the serial count. Callers running in parallel pass a
/// per-worker clock through ExecutorOptions::clock.
class Executor {
 public:
  /// All pointers must outlive the executor; `clock` may be nullptr.
  /// `cache_options` bounds the artifact cache (see ArtifactCache::Options;
  /// the default is unbounded).
  Executor(const LibraryRegistry* registry, storage::StorageEngine* engine,
           SimClock* clock, ArtifactCache::Options cache_options = {})
      : registry_(registry),
        engine_(engine),
        clock_(clock),
        cache_(cache_options) {}

  /// Runs `pipeline` (a chain) with the given options. Compatibility
  /// failures are reported in the result, not as an error status; hard
  /// errors (unknown impl, malformed pipeline) are error statuses.
  StatusOr<PipelineRunResult> Run(const Pipeline& pipeline,
                                  const ExecutorOptions& options);

  /// Runs a general DAG pipeline (Definition 1). Components with several
  /// predecessors receive all their inputs (name-sorted) through
  /// ExecInput::inputs. With options.num_workers > 1, independent components
  /// run concurrently on the ExecutionCore; reported times model the
  /// resulting schedule's makespan. Compatibility requires every
  /// predecessor's output schema to match the consumer's declared input
  /// schema.
  StatusOr<PipelineRunResult> RunDag(const Pipeline& pipeline,
                                     const ExecutorOptions& options);

  /// Pre-seeds the artifact cache for the chain `specs[0..specs.size())` —
  /// used to install checkpoints from commit history (the green nodes of the
  /// paper's Fig. 4) before a merge search.
  Status SeedCache(const std::vector<ComponentVersionSpec>& chain,
                   data::Table output, double score, const std::string& metric,
                   const Hash256& output_id,
                   std::map<std::string, double> metrics = {});

  /// Recursive node key: order-sensitive hash over the component identity,
  /// version, impl, and hyperparameters, chained with the keys of the
  /// component's (name-sorted) predecessors. The one keying scheme behind
  /// both chain and DAG caching.
  static Hash256 NodeKey(const ComponentVersionSpec& spec,
                         const std::vector<Hash256>& parent_keys);

  /// Cache key for a chain prefix: NodeKey folded along the chain.
  static Hash256 ChainKey(const std::vector<const ComponentVersionSpec*>& chain);

  /// Returns the cached entry for an exact chain, or nullptr. Used by the
  /// merge operation to materialize the winning pipeline's outputs after
  /// the search (MLCask stores trial outputs locally and persists only the
  /// merge result). Holding the EntryPtr pins the entry: LRU eviction skips
  /// entries with outstanding readers, and even a concurrent Clear() or
  /// eviction only drops the cache's own reference — the table stays valid
  /// for as long as the caller keeps the pointer.
  ArtifactCache::EntryPtr FindCachedEntry(
      const std::vector<const ComponentVersionSpec*>& chain) const;

  /// Raw-pointer convenience over FindCachedEntry. The pointer is only
  /// stable while nothing else mutates the cache (no re-publish of the
  /// chain, no Clear, and no LRU eviction — the pin is dropped before this
  /// returns). Prefer FindCachedEntry anywhere the cache is byte-bounded or
  /// shared across threads.
  const data::Table* FindCached(
      const std::vector<const ComponentVersionSpec*>& chain) const;

  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.Clear(); }
  /// Byte/eviction accounting of the artifact cache (LRU cap telemetry).
  ArtifactCache::Stats cache_stats() const { return cache_.stats(); }

  /// Cumulative number of component executions this executor performed
  /// (cache hits excluded) — the quantity PR pruning minimizes.
  uint64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }

 private:
  const LibraryRegistry* registry_;
  storage::StorageEngine* engine_;
  SimClock* clock_;
  ArtifactCache cache_;
  std::atomic<uint64_t> executions_{0};
  /// Fallback pool for runs that pass no ExecutorOptions::core: built
  /// lazily once, sized by the first request, reused for the executor's
  /// lifetime — RunDag never constructs a per-call pool
  /// (ExecutionCore::instances_created() proves it). Later runs requesting
  /// a wider machine still report correct makespans: the virtual width is
  /// passed per call, independent of the pool's real thread count.
  LazyExecutionCore fallback_core_;
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_EXECUTOR_H_
