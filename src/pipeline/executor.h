#ifndef MLCASK_PIPELINE_EXECUTOR_H_
#define MLCASK_PIPELINE_EXECUTOR_H_

#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "data/table.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/library_registry.h"
#include "pipeline/pipeline.h"
#include "storage/storage_engine.h"
#include "version/commit.h"

namespace mlcask::pipeline {

/// Knobs that distinguish the systems under evaluation:
///  - ModelDB-style: reuse=false, precheck=false  (rerun everything, discover
///    incompatibility only when the failing component runs)
///  - MLflow-style:  reuse=true,  precheck=false
///  - MLCask:        reuse=true,  precheck=true   (skips doomed runs upfront)
struct ExecutorOptions {
  bool reuse_cached_outputs = true;
  bool precheck_compatibility = true;
  /// Materialize component outputs into the storage engine.
  bool store_outputs = true;
  uint64_t seed = 1;
  /// Worker threads for RunDag: independent DAG components dispatch
  /// concurrently through the ExecutionCore. 1 = explicitly serial
  /// (deterministic FIFO topological order, the pre-parallel behaviour);
  /// 0 = unset, meaning serial unless a driver-level default (e.g.
  /// sim::Deployment::num_workers) fills it in.
  size_t num_workers = 0;
  /// Per-run clock override. When set, this run charges its simulated time
  /// here instead of the executor's constructor clock — parallel searches
  /// give each worker its own timeline this way.
  SimClock* clock = nullptr;
};

/// Per-component accounting of one pipeline run.
struct ComponentRunInfo {
  std::string name;
  version::SemanticVersion version;
  ComponentKind kind = ComponentKind::kPreprocessor;
  bool reused = false;    ///< Served from the artifact cache.
  bool executed = false;  ///< Actually ran its library function.
  double exec_s = 0;      ///< Simulated execution seconds charged.
  double storage_s = 0;   ///< Simulated storage seconds charged.
  uint64_t bytes_written = 0;
  Hash256 output_id;      ///< Materialized artifact version (zero if none).
};

/// Result of running one pipeline end to end.
struct PipelineRunResult {
  std::vector<ComponentRunInfo> components;
  TimeBreakdown time;
  double score = std::nan("");
  std::string metric;
  /// All score-oriented metrics reported by the pipeline's model component.
  std::map<std::string, double> metrics;
  /// Set when the run was aborted by a schema incompatibility: either
  /// detected upfront (precheck) or mid-run at the failing component.
  bool compatibility_failure = false;
  std::string failed_component;
  /// Snapshot with output ids and score, ready to commit.
  version::PipelineSnapshot snapshot;

  bool has_score() const { return !std::isnan(score); }
};

/// Runs pipelines against a library registry, charging simulated execution
/// and storage time, and maintaining the artifact cache keyed by the recursive
/// node key H(spec, parent keys). For a chain this collapses to a prefix
/// chain key, which is what lets sibling pipelines in a merge search tree
/// share everything up to their divergence point (paper Sec. VI-B: "nodes
/// sharing the same parent node also share the same path to the tree root").
/// Chain runs (Run) and DAG runs (RunDag) share one cache namespace: a chain
/// and the equivalent linear DAG hit the same entries.
///
/// Thread safety: one executor may serve many workers at once. The cache's
/// per-key in-flight guards make concurrent candidates sharing a prefix
/// compute it exactly once (the second worker waits and reuses), so
/// executions() matches the serial count. Callers running in parallel pass a
/// per-worker clock through ExecutorOptions::clock.
class Executor {
 public:
  /// All pointers must outlive the executor; `clock` may be nullptr.
  Executor(const LibraryRegistry* registry, storage::StorageEngine* engine,
           SimClock* clock)
      : registry_(registry), engine_(engine), clock_(clock) {}

  /// Runs `pipeline` (a chain) with the given options. Compatibility
  /// failures are reported in the result, not as an error status; hard
  /// errors (unknown impl, malformed pipeline) are error statuses.
  StatusOr<PipelineRunResult> Run(const Pipeline& pipeline,
                                  const ExecutorOptions& options);

  /// Runs a general DAG pipeline (Definition 1). Components with several
  /// predecessors receive all their inputs (name-sorted) through
  /// ExecInput::inputs. With options.num_workers > 1, independent components
  /// run concurrently on the ExecutionCore; reported times model the
  /// resulting schedule's makespan. Compatibility requires every
  /// predecessor's output schema to match the consumer's declared input
  /// schema.
  StatusOr<PipelineRunResult> RunDag(const Pipeline& pipeline,
                                     const ExecutorOptions& options);

  /// Pre-seeds the artifact cache for the chain `specs[0..specs.size())` —
  /// used to install checkpoints from commit history (the green nodes of the
  /// paper's Fig. 4) before a merge search.
  Status SeedCache(const std::vector<ComponentVersionSpec>& chain,
                   data::Table output, double score, const std::string& metric,
                   const Hash256& output_id,
                   std::map<std::string, double> metrics = {});

  /// Recursive node key: order-sensitive hash over the component identity,
  /// version, impl, and hyperparameters, chained with the keys of the
  /// component's (name-sorted) predecessors. The one keying scheme behind
  /// both chain and DAG caching.
  static Hash256 NodeKey(const ComponentVersionSpec& spec,
                         const std::vector<Hash256>& parent_keys);

  /// Cache key for a chain prefix: NodeKey folded along the chain.
  static Hash256 ChainKey(const std::vector<const ComponentVersionSpec*>& chain);

  /// Returns the cached output table for an exact chain, or nullptr. Used by
  /// the merge operation to materialize the winning pipeline's outputs after
  /// the search (MLCask stores trial outputs locally and persists only the
  /// merge result). The pointer stays valid only until the chain's entry is
  /// re-published (a reuse-off re-run or re-seed of the same chain) or the
  /// cache is cleared — consume it before running anything else.
  const data::Table* FindCached(
      const std::vector<const ComponentVersionSpec*>& chain) const;

  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.Clear(); }

  /// Cumulative number of component executions this executor performed
  /// (cache hits excluded) — the quantity PR pruning minimizes.
  uint64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }

 private:
  const LibraryRegistry* registry_;
  storage::StorageEngine* engine_;
  SimClock* clock_;
  ArtifactCache cache_;
  std::atomic<uint64_t> executions_{0};
};

}  // namespace mlcask::pipeline

#endif  // MLCASK_PIPELINE_EXECUTOR_H_
