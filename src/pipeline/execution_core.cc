#include "pipeline/execution_core.h"

#include <algorithm>
#include <set>

namespace mlcask::pipeline {

ExecutionCore::ExecutionCore(size_t num_workers)
    : num_workers_(std::max<size_t>(1, num_workers)) {
  // A single-worker core runs everything inline; no threads to keep.
  if (num_workers_ == 1) return;
  threads_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutionCore::~ExecutionCore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ExecutionCore::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
  }
  job_cv_.notify_one();
}

void ExecutionCore::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

StatusOr<double> ExecutionCore::RunWorkers(const WorkerBody& body,
                                           double start_time_s) {
  if (num_workers_ == 1) {
    SimClock clock;
    clock.AdvanceTo(start_time_s);
    WorkerContext ctx;
    ctx.worker_index = 0;
    ctx.clock = &clock;
    MLCASK_RETURN_IF_ERROR(body(ctx));
    return clock.Now();
  }

  std::vector<SimClock> clocks(num_workers_);
  for (SimClock& c : clocks) c.AdvanceTo(start_time_s);

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done = 0;
  Status first_error = Status::Ok();

  for (size_t i = 0; i < num_workers_; ++i) {
    Submit([this, i, &body, &clocks, &done_mu, &done_cv, &done, &first_error] {
      WorkerContext ctx;
      ctx.worker_index = i;
      ctx.clock = &clocks[i];
      Status s = body(ctx);
      std::lock_guard<std::mutex> lock(done_mu);
      if (!s.ok() && first_error.ok()) first_error = s;
      if (++done == num_workers_) done_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == num_workers_; });
  }
  MLCASK_RETURN_IF_ERROR(first_error);
  double makespan = start_time_s;
  for (const SimClock& c : clocks) makespan = std::max(makespan, c.Now());
  return makespan;
}

StatusOr<double> ExecutionCore::RunGraph(
    size_t num_tasks, const std::vector<std::vector<size_t>>& deps,
    const std::function<Status(size_t, SimClock*)>& run, double start_time_s,
    std::vector<double>* finish_times) {
  if (deps.size() != num_tasks) {
    return Status::InvalidArgument("deps size does not match task count");
  }

  // Shared scheduler state, guarded by `mu`. Virtual time uses a pool of
  // worker-availability slots (classic list scheduling) DECOUPLED from the
  // real threads: a task starts at max(dependencies ready, earliest free
  // virtual worker). A single real thread executing most tasks (e.g. on a
  // one-core host) therefore does not inflate the makespan; residual
  // run-to-run jitter remains with several workers because the FIFO ready
  // order follows real completion order. With one worker the schedule is
  // fully deterministic.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<size_t> indegree(num_tasks, 0);
  std::vector<std::vector<size_t>> successors(num_tasks);
  std::vector<double> ready_time(num_tasks, start_time_s);
  std::vector<double> finish(num_tasks, start_time_s);
  VirtualWorkerPool worker_free(num_workers_, start_time_s);
  std::queue<size_t> ready;
  size_t remaining = num_tasks;
  size_t in_flight = 0;
  Status error = Status::Ok();

  for (size_t i = 0; i < num_tasks; ++i) {
    indegree[i] = deps[i].size();
    for (size_t d : deps[i]) {
      if (d >= num_tasks) {
        return Status::InvalidArgument("dependency index out of range");
      }
      successors[d].push_back(i);
    }
    if (indegree[i] == 0) ready.push(i);
  }
  if (num_tasks > 0 && ready.empty()) {
    return Status::Corruption("dependency graph has no source task (cycle)");
  }

  auto body = [&](WorkerContext&) -> Status {
    for (;;) {
      size_t task;
      SimClock task_clock;
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (remaining == 0 || !error.ok()) return Status::Ok();
          if (!ready.empty()) break;
          // A drained queue with nothing in flight but tasks remaining
          // means the rest of the graph is an unreachable cycle — error
          // out rather than sleep forever.
          if (in_flight == 0) {
            error = Status::Corruption(
                "dependency graph contains an unreachable cycle");
            cv.notify_all();
            return Status::Ok();
          }
          cv.wait(lock);
        }
        task = ready.front();
        ready.pop();
        in_flight += 1;
        task_clock.AdvanceTo(
            std::max(worker_free.ClaimEarliest(), ready_time[task]));
      }
      Status s = run(task, &task_clock);
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_free.Release(task_clock.Now());
        in_flight -= 1;
        if (!s.ok()) {
          if (error.ok()) error = s;
          cv.notify_all();
          return Status::Ok();  // surfaced below as the graph's error
        }
        finish[task] = task_clock.Now();
        for (size_t succ : successors[task]) {
          ready_time[succ] = std::max(ready_time[succ], finish[task]);
          if (--indegree[succ] == 0) ready.push(succ);
        }
        remaining -= 1;
      }
      cv.notify_all();
    }
  };

  MLCASK_RETURN_IF_ERROR(RunWorkers(body, start_time_s).status());
  double makespan = start_time_s;
  {
    std::lock_guard<std::mutex> lock(mu);
    MLCASK_RETURN_IF_ERROR(error);
    if (remaining != 0) {
      return Status::Corruption("dependency graph never drained (cycle)");
    }
    for (double f : finish) makespan = std::max(makespan, f);
  }
  if (finish_times != nullptr) *finish_times = std::move(finish);
  return makespan;
}

}  // namespace mlcask::pipeline
