#include "pipeline/execution_core.h"

#include <algorithm>
#include <set>

namespace mlcask::pipeline {

std::atomic<uint64_t> ExecutionCore::instances_{0};

ExecutionCore::ExecutionCore(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  instances_.fetch_add(1, std::memory_order_relaxed);
  // A single-thread core runs everything inline; no threads to keep.
  if (num_threads_ == 1) return;
  threads_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutionCore::~ExecutionCore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ExecutionCore::PoolStats ExecutionCore::stats() const {
  PoolStats s;
  s.threads_spawned = threads_.size();
  s.batches_run = batches_run_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  return s;
}

void ExecutionCore::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping
      task = std::move(jobs_.front());
      jobs_.pop();
    }
    // A task may already have been claimed by its submitter (helping);
    // claiming is a one-shot atomic so each body runs exactly once.
    if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
      task->fn();
    }
  }
}

StatusOr<double> ExecutionCore::RunWorkers(const WorkerBody& body,
                                           double start_time_s,
                                           size_t num_bodies) {
  const size_t n = num_bodies != 0 ? num_bodies : num_threads_;
  batches_run_.fetch_add(1, std::memory_order_relaxed);

  std::vector<SimClock> clocks(n);
  for (SimClock& c : clocks) c.AdvanceTo(start_time_s);

  Status first_error = Status::Ok();

  auto run_body = [&](size_t i) {
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    WorkerContext ctx;
    ctx.worker_index = i;
    ctx.clock = &clocks[i];
    return body(ctx);
  };

  if (threads_.empty()) {
    // Inline pool: bodies run sequentially on the calling thread. Worker
    // bodies are drain-loops, so body 0 typically does all the work and the
    // rest return immediately; virtual time is modelled by the callers'
    // VirtualWorkerPool, not by real concurrency.
    for (size_t i = 0; i < n; ++i) {
      Status s = run_body(i);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    MLCASK_RETURN_IF_ERROR(first_error);
    double makespan = start_time_s;
    for (const SimClock& c : clocks) makespan = std::max(makespan, c.Now());
    return makespan;
  }

  // Batch bookkeeping lives on this stack frame. Every task claims exactly
  // once; whoever runs the last one wakes the submitter. Pool threads that
  // pop an already-claimed task only touch its atomic flag (kept alive by
  // the shared_ptr), never the stack state, so unwinding after done == n is
  // safe even while a straggler thread is still discarding its pop.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done = 0;

  std::vector<std::shared_ptr<Task>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto task = std::make_shared<Task>();
    task->fn = [&, i] {
      Status s = run_body(i);
      std::lock_guard<std::mutex> lock(done_mu);
      if (!s.ok() && first_error.ok()) first_error = s;
      if (++done == n) done_cv.notify_all();
    };
    tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::shared_ptr<Task>& task : tasks) jobs_.push(task);
  }
  job_cv_.notify_all();

  // Work stealing (helping): the submitting thread drains the unclaimed
  // remainder of its own batch instead of blocking. This is what makes
  // nested scheduling calls from pool workers deadlock-free — a nested
  // submitter can always finish its batch single-handedly even when every
  // pool thread is occupied by outer bodies.
  for (const std::shared_ptr<Task>& task : tasks) {
    if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      task->fn();
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == n; });
  }

  MLCASK_RETURN_IF_ERROR(first_error);
  double makespan = start_time_s;
  for (const SimClock& c : clocks) makespan = std::max(makespan, c.Now());
  return makespan;
}

StatusOr<double> ExecutionCore::RunGraph(
    size_t num_tasks, const std::vector<std::vector<size_t>>& deps,
    const std::function<Status(size_t, SimClock*)>& run, double start_time_s,
    std::vector<double>* finish_times, size_t virtual_workers) {
  if (deps.size() != num_tasks) {
    return Status::InvalidArgument("deps size does not match task count");
  }
  const size_t width = virtual_workers != 0 ? virtual_workers : num_threads_;

  // Shared scheduler state, guarded by `mu`. Virtual time uses a pool of
  // worker-availability slots (classic list scheduling) DECOUPLED from the
  // real threads: a task starts at max(dependencies ready, earliest free
  // virtual worker). A single real thread executing most tasks (e.g. on a
  // one-core host) therefore does not inflate the makespan; residual
  // run-to-run jitter remains with several workers because the FIFO ready
  // order follows real completion order. With width 1 the schedule is
  // fully deterministic.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<size_t> indegree(num_tasks, 0);
  std::vector<std::vector<size_t>> successors(num_tasks);
  std::vector<double> ready_time(num_tasks, start_time_s);
  std::vector<double> finish(num_tasks, start_time_s);
  VirtualWorkerPool worker_free(width, start_time_s);
  std::queue<size_t> ready;
  size_t remaining = num_tasks;
  size_t in_flight = 0;
  Status error = Status::Ok();

  for (size_t i = 0; i < num_tasks; ++i) {
    indegree[i] = deps[i].size();
    for (size_t d : deps[i]) {
      if (d >= num_tasks) {
        return Status::InvalidArgument("dependency index out of range");
      }
      successors[d].push_back(i);
    }
    if (indegree[i] == 0) ready.push(i);
  }
  if (num_tasks > 0 && ready.empty()) {
    return Status::Corruption("dependency graph has no source task (cycle)");
  }

  auto body = [&](WorkerContext&) -> Status {
    for (;;) {
      size_t task;
      SimClock task_clock;
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (remaining == 0 || !error.ok()) return Status::Ok();
          if (!ready.empty()) break;
          // A drained queue with nothing in flight but tasks remaining
          // means the rest of the graph is an unreachable cycle — error
          // out rather than sleep forever.
          if (in_flight == 0) {
            error = Status::Corruption(
                "dependency graph contains an unreachable cycle");
            cv.notify_all();
            return Status::Ok();
          }
          cv.wait(lock);
        }
        task = ready.front();
        ready.pop();
        in_flight += 1;
        task_clock.AdvanceTo(
            std::max(worker_free.ClaimEarliest(), ready_time[task]));
      }
      Status s = run(task, &task_clock);
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_free.Release(task_clock.Now());
        in_flight -= 1;
        if (!s.ok()) {
          if (error.ok()) error = s;
          cv.notify_all();
          return Status::Ok();  // surfaced below as the graph's error
        }
        finish[task] = task_clock.Now();
        for (size_t succ : successors[task]) {
          ready_time[succ] = std::max(ready_time[succ], finish[task]);
          if (--indegree[succ] == 0) ready.push(succ);
        }
        remaining -= 1;
      }
      cv.notify_all();
    }
  };

  MLCASK_RETURN_IF_ERROR(RunWorkers(body, start_time_s, width).status());
  double makespan = start_time_s;
  {
    std::lock_guard<std::mutex> lock(mu);
    MLCASK_RETURN_IF_ERROR(error);
    if (remaining != 0) {
      return Status::Corruption("dependency graph never drained (cycle)");
    }
    for (double f : finish) makespan = std::max(makespan, f);
  }
  if (finish_times != nullptr) *finish_times = std::move(finish);
  return makespan;
}

}  // namespace mlcask::pipeline
