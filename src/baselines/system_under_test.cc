#include "baselines/system_under_test.h"

#include "common/rng.h"
#include "common/sha256.h"
#include "storage/forkbase_engine.h"
#include "storage/local_dir_engine.h"

namespace mlcask::baselines {

namespace {

std::unique_ptr<storage::StorageEngine> MakeEngine(bool chunk_dedup) {
  if (chunk_dedup) {
    return std::make_unique<storage::ForkBaseEngine>();
  }
  return std::make_unique<storage::LocalDirEngine>();
}

}  // namespace

SystemConfig ModelDbConfig() {
  SystemConfig c;
  c.name = "modeldb";
  c.reuse_intermediates = false;  // "has to start all over in every iteration"
  c.precheck_compatibility = false;
  c.chunk_dedup_storage = false;  // folder archival
  return c;
}

SystemConfig MlflowConfig() {
  SystemConfig c;
  c.name = "mlflow";
  c.reuse_intermediates = true;  // "MLflow is able to reuse intermediate results"
  c.precheck_compatibility = false;
  c.chunk_dedup_storage = false;  // folder archival
  return c;
}

SystemConfig MlcaskConfig() {
  SystemConfig c;
  c.name = "mlcask";
  c.reuse_intermediates = true;
  c.precheck_compatibility = true;  // skips doomed runs upfront
  c.chunk_dedup_storage = true;     // ForkBase
  return c;
}

std::string SyntheticExecutable(const pipeline::ComponentVersionSpec& spec,
                                size_t size) {
  // Stable base payload per component name.
  Hash256 name_hash = Sha256::Digest(spec.name);
  uint64_t base_seed = 0;
  for (int i = 0; i < 8; ++i) base_seed = (base_seed << 8) | name_hash.bytes[i];
  Pcg32 base_rng(base_seed);
  std::string bytes(size, '\0');
  for (char& c : bytes) c = static_cast<char>(base_rng.NextU32() & 0xff);

  // Version-dependent edits: each (schema, increment) step rewrites a few
  // scattered 1-KiB regions, mimicking a code change + rebuild.
  Hash256 version_hash =
      Sha256::Digest(spec.name + "@" + spec.version.ToString(false));
  uint64_t edit_seed = 0;
  for (int i = 0; i < 8; ++i) edit_seed = (edit_seed << 8) | version_hash.bytes[i];
  Pcg32 edit_rng(edit_seed);
  size_t num_edits = 2 + spec.version.schema * 2 + spec.version.increment;
  for (size_t e = 0; e < num_edits && size > 1024; ++e) {
    size_t offset = edit_rng.Below(static_cast<uint32_t>(size - 1024));
    for (size_t i = 0; i < 1024; ++i) {
      bytes[offset + i] = static_cast<char>(edit_rng.NextU32() & 0xff);
    }
  }
  return bytes;
}

SystemUnderTest::SystemUnderTest(SystemConfig config,
                                 const pipeline::LibraryRegistry* registry)
    : config_(std::move(config)),
      engine_(MakeEngine(config_.chunk_dedup_storage)),
      executor_(registry, engine_.get(), &clock_) {}

StatusOr<IterationStats> SystemUnderTest::RunIteration(
    const pipeline::Pipeline& p,
    const std::vector<pipeline::ComponentVersionSpec>& updated_components) {
  IterationStats stats;
  stats.iteration = iteration_++;

  // Archive the updated libraries (metafile + executable). On folder
  // storage each version is a full copy; on ForkBase the unchanged chunks
  // de-duplicate ("version control semantics on the libraries", Fig. 7).
  for (const pipeline::ComponentVersionSpec& spec : updated_components) {
    std::string payload = spec.ToJson().Dump() +
                          SyntheticExecutable(spec, config_.executable_bytes);
    MLCASK_ASSIGN_OR_RETURN(storage::PutResult put,
                            engine_->Put("library/" + spec.name, payload));
    stats.time.storage_s += put.storage_time_s;
    clock_.Advance(put.storage_time_s);
  }

  pipeline::ExecutorOptions opts;
  opts.reuse_cached_outputs = config_.reuse_intermediates;
  opts.precheck_compatibility = config_.precheck_compatibility;
  opts.store_outputs = true;
  MLCASK_ASSIGN_OR_RETURN(pipeline::PipelineRunResult run,
                          executor_.Run(p, opts));
  stats.time += run.time;
  if (run.compatibility_failure) {
    if (config_.precheck_compatibility) {
      // MLCask detects the conflict before running anything (Fig. 5: "it
      // does not run the pipeline, which leads to no increase in total
      // time").
      stats.skipped_incompatible = true;
    } else {
      stats.failed_at_runtime = true;
    }
  } else {
    stats.score = run.score;
  }

  total_time_s_ += stats.time.Total();
  stats.total_time_s = total_time_s_;
  stats.css_bytes = engine_->stats().physical_bytes;
  stats.cst_s = engine_->stats().storage_time_s;
  return stats;
}

}  // namespace mlcask::baselines
