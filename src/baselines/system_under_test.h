#ifndef MLCASK_BASELINES_SYSTEM_UNDER_TEST_H_
#define MLCASK_BASELINES_SYSTEM_UNDER_TEST_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "pipeline/executor.h"
#include "pipeline/library_registry.h"
#include "pipeline/pipeline.h"
#include "storage/storage_engine.h"

namespace mlcask::baselines {

/// The two axes on which the paper distinguishes the evaluated systems
/// (Sec. VII-B): whether intermediate results are automatically reused, and
/// whether storage archives folder copies or de-duplicates chunks. MLCask
/// additionally pre-checks compatibility from version metadata.
struct SystemConfig {
  std::string name;
  bool reuse_intermediates = false;
  bool precheck_compatibility = false;
  bool chunk_dedup_storage = false;  ///< true = ForkBase, false = folders.
  /// Synthetic size of each library executable (the paper's libraries are
  /// real code + binaries; versions differ by small edits).
  size_t executable_bytes = 512 * 1024;
};

/// Accounting for one iteration of the linear-versioning protocol.
struct IterationStats {
  int iteration = 0;
  TimeBreakdown time;           ///< This iteration's time.
  double total_time_s = 0;      ///< Cumulative total time so far.
  uint64_t css_bytes = 0;       ///< Cumulative storage size after iteration.
  double cst_s = 0;             ///< Cumulative storage time so far.
  bool skipped_incompatible = false;  ///< MLCask pre-check fired.
  bool failed_at_runtime = false;     ///< Baseline hit the error mid-run.
  double score = std::nan("");
};

/// A versioning system under test: a storage engine + executor configured to
/// behave like ModelDB, MLflow, or MLCask for the linear-versioning
/// experiments (Figs. 5-7).
class SystemUnderTest {
 public:
  SystemUnderTest(SystemConfig config,
                  const pipeline::LibraryRegistry* registry);

  /// Runs one iteration: archives updated libraries, then runs the pipeline
  /// under this system's reuse/precheck semantics.
  /// `updated_components` lists the components whose version changed since
  /// the previous iteration (all of them on the first call).
  StatusOr<IterationStats> RunIteration(
      const pipeline::Pipeline& p,
      const std::vector<pipeline::ComponentVersionSpec>& updated_components);

  const std::string& name() const { return config_.name; }
  const storage::StorageEngine& engine() const { return *engine_; }
  const SimClock& clock() const { return clock_; }

 private:
  SystemConfig config_;
  std::unique_ptr<storage::StorageEngine> engine_;
  SimClock clock_;
  pipeline::Executor executor_;
  int iteration_ = 0;
  double total_time_s_ = 0;
};

/// Factory helpers matching the paper's three systems.
SystemConfig ModelDbConfig();
SystemConfig MlflowConfig();
SystemConfig MlcaskConfig();

/// Deterministic synthetic executable bytes for a library version: a stable
/// per-component base payload with small version-dependent edits, so
/// consecutive versions are ~99% identical (chunk-level de-duplication can
/// exploit this; folder archival cannot).
std::string SyntheticExecutable(const pipeline::ComponentVersionSpec& spec,
                                size_t size);

}  // namespace mlcask::baselines

#endif  // MLCASK_BASELINES_SYSTEM_UNDER_TEST_H_
