// mlcask_server — hosts one storage shard as a standalone OS process.
//
// Binds a SocketTransportServer on the given endpoint and pumps every
// request frame through a StorageEngineService over the chosen backend
// engine. Point `ConnectCluster` (or the fig11 bench's --socket mode) at N
// of these and the sharded deployment is truly multi-process: same wire
// format, same routing, same 2PC as the in-process loopback cluster.
//
//   mlcask_server --endpoint unix:/tmp/shard0.sock [--backend forkbase]
//   mlcask_server --endpoint tcp:127.0.0.1:7070    [--backend localdir]
//
// Prints "READY <endpoint>" on stdout once accepting (with the real port
// when an ephemeral tcp: port was requested) — launchers may wait for that
// line or simply poll-connect. Exits cleanly on SIGINT/SIGTERM.
//
// Chaos knobs:
//   --fault-spec SPEC   deterministic fault injection (see FaultSpec::Parse
//                       for the grammar, e.g. "seed=7,drop=0.05,kill_after=40");
//                       the normalized spec is echoed on the READY line so
//                       launchers and CI logs record exactly what ran
//   --data-dir DIR      durable forkbase backend: every acknowledged write
//                       is checkpointed into DIR and restored on restart
//                       (the substrate for kill -9 / recovery drills)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "service/merge_frontend.h"
#include "service/merge_service.h"
#include "storage/fault_injector.h"
#include "storage/forkbase_engine.h"
#include "storage/local_dir_engine.h"
#include "storage/persistence.h"
#include "storage/remote_engine.h"
#include "storage/socket_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --endpoint <unix:/path | tcp:host:port> "
               "[--backend forkbase|localdir] [--workers N] "
               "[--chunk-threshold BYTES] [--chunk-cache BYTES] "
               "[--max-queued-jobs N] [--max-queued-bytes BYTES] "
               "[--fault-spec SPEC] [--data-dir DIR] "
               "[--serve-merge] [--merge-workers N] "
               "[--tenant-weights a=2,b=1] [--stats-interval SECONDS]\n",
               argv0);
  return 2;
}

/// Parses "tenant=weight,tenant=weight" into MergeServiceOptions weights.
bool ParseTenantWeights(const char* spec,
                        std::map<std::string, uint64_t>* weights) {
  std::string entry;
  for (const char* p = spec;; ++p) {
    if (*p != ',' && *p != '\0') {
      entry.push_back(*p);
      continue;
    }
    if (!entry.empty()) {
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      (*weights)[entry.substr(0, eq)] =
          std::strtoull(entry.c_str() + eq + 1, nullptr, 10);
      entry.clear();
    }
    if (*p == '\0') break;
  }
  return true;
}

/// One parseable live-stats record: the observability line saturation runs
/// tail while the bench is still driving load.
void PrintStatsLine(const std::string& endpoint,
                    const mlcask::storage::SocketTransportServer& server,
                    const mlcask::service::MergeService* merge) {
  std::string line = "STATS " + endpoint;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                " connections=%llu shed_jobs=%llu expired_jobs=%llu",
                static_cast<unsigned long long>(server.connections_accepted()),
                static_cast<unsigned long long>(server.shed_jobs()),
                static_cast<unsigned long long>(server.expired_jobs()));
  line += buf;
  if (merge != nullptr) {
    const auto stats = merge->stats();
    std::snprintf(
        buf, sizeof(buf),
        " sessions_open=%zu queued_batches=%zu completed=%llu failed=%llu "
        "shed=%llu expired=%llu coalesced=%llu",
        stats.sessions_open, stats.queued_batches,
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.expired),
        static_cast<unsigned long long>(stats.coalesced));
    line += buf;
    if (!stats.tenant_batches.empty()) {
      line += " tenants=";
      bool first = true;
      for (const auto& [tenant, batches] : stats.tenant_batches) {
        if (!first) line += ",";
        first = false;
        line += tenant + ":" + std::to_string(batches);
      }
    }
  }
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlcask;
  std::string endpoint_spec;
  std::string backend = "forkbase";
  std::string fault_spec;
  std::string data_dir;
  bool serve_merge = false;
  unsigned stats_interval_s = 0;
  storage::SocketTransportServer::Options server_options;
  service::MergeServiceOptions merge_options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--endpoint") == 0) {
      endpoint_spec = value("--endpoint");
    } else if (std::strncmp(arg, "--endpoint=", 11) == 0) {
      endpoint_spec = arg + 11;
    } else if (std::strcmp(arg, "--backend") == 0) {
      backend = value("--backend");
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      backend = arg + 10;
    } else if (std::strcmp(arg, "--workers") == 0) {
      server_options.worker_threads =
          static_cast<size_t>(std::strtoull(value("--workers"), nullptr, 10));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      server_options.worker_threads =
          static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--chunk-threshold") == 0) {
      server_options.chunk_threshold = static_cast<size_t>(
          std::strtoull(value("--chunk-threshold"), nullptr, 10));
    } else if (std::strncmp(arg, "--chunk-threshold=", 18) == 0) {
      server_options.chunk_threshold =
          static_cast<size_t>(std::strtoull(arg + 18, nullptr, 10));
    } else if (std::strcmp(arg, "--chunk-cache") == 0) {
      server_options.chunk_cache_bytes = static_cast<size_t>(
          std::strtoull(value("--chunk-cache"), nullptr, 10));
    } else if (std::strncmp(arg, "--chunk-cache=", 14) == 0) {
      server_options.chunk_cache_bytes =
          static_cast<size_t>(std::strtoull(arg + 14, nullptr, 10));
    } else if (std::strcmp(arg, "--max-queued-jobs") == 0) {
      server_options.max_queued_jobs = static_cast<size_t>(
          std::strtoull(value("--max-queued-jobs"), nullptr, 10));
    } else if (std::strncmp(arg, "--max-queued-jobs=", 18) == 0) {
      server_options.max_queued_jobs =
          static_cast<size_t>(std::strtoull(arg + 18, nullptr, 10));
    } else if (std::strcmp(arg, "--max-queued-bytes") == 0) {
      server_options.max_queued_bytes = static_cast<size_t>(
          std::strtoull(value("--max-queued-bytes"), nullptr, 10));
    } else if (std::strncmp(arg, "--max-queued-bytes=", 19) == 0) {
      server_options.max_queued_bytes =
          static_cast<size_t>(std::strtoull(arg + 19, nullptr, 10));
    } else if (std::strcmp(arg, "--fault-spec") == 0) {
      fault_spec = value("--fault-spec");
    } else if (std::strncmp(arg, "--fault-spec=", 13) == 0) {
      fault_spec = arg + 13;
    } else if (std::strcmp(arg, "--data-dir") == 0) {
      data_dir = value("--data-dir");
    } else if (std::strncmp(arg, "--data-dir=", 11) == 0) {
      data_dir = arg + 11;
    } else if (std::strcmp(arg, "--serve-merge") == 0) {
      serve_merge = true;
    } else if (std::strcmp(arg, "--merge-workers") == 0) {
      merge_options.worker_threads = static_cast<size_t>(
          std::strtoull(value("--merge-workers"), nullptr, 10));
    } else if (std::strncmp(arg, "--merge-workers=", 16) == 0) {
      merge_options.worker_threads =
          static_cast<size_t>(std::strtoull(arg + 16, nullptr, 10));
    } else if (std::strcmp(arg, "--tenant-weights") == 0) {
      if (!ParseTenantWeights(value("--tenant-weights"),
                              &merge_options.tenant_weights)) {
        std::fprintf(stderr, "bad --tenant-weights (want a=2,b=1)\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--tenant-weights=", 17) == 0) {
      if (!ParseTenantWeights(arg + 17, &merge_options.tenant_weights)) {
        std::fprintf(stderr, "bad --tenant-weights (want a=2,b=1)\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--stats-interval") == 0) {
      stats_interval_s = static_cast<unsigned>(
          std::strtoul(value("--stats-interval"), nullptr, 10));
    } else if (std::strncmp(arg, "--stats-interval=", 17) == 0) {
      stats_interval_s =
          static_cast<unsigned>(std::strtoul(arg + 17, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (endpoint_spec.empty()) return Usage(argv[0]);

  std::unique_ptr<storage::StorageEngine> engine;
  if (!data_dir.empty()) {
    if (backend != "forkbase") {
      std::fprintf(stderr, "--data-dir requires the forkbase backend\n");
      return 2;
    }
    auto durable = storage::DurableForkBaseEngine::Open(data_dir);
    if (!durable.ok()) {
      std::fprintf(stderr, "cannot open data dir: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    engine = *std::move(durable);
  } else if (backend == "forkbase") {
    engine = std::make_unique<storage::ForkBaseEngine>();
  } else if (backend == "localdir") {
    engine = std::make_unique<storage::LocalDirEngine>();
  } else {
    std::fprintf(stderr, "unknown backend '%s' (forkbase|localdir)\n",
                 backend.c_str());
    return 2;
  }

  std::shared_ptr<storage::FaultInjector> injector;
  if (!fault_spec.empty()) {
    auto parsed = storage::FaultSpec::Parse(fault_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --fault-spec: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    injector = std::make_shared<storage::FaultInjector>(*parsed);
    // Transport-level faults come from the server options below; engine-
    // level faults (injected disk-full) need the backend wrapped.
    engine = std::make_unique<storage::FaultyEngine>(std::move(engine),
                                                     injector);
    server_options.injector = injector;
  }
  storage::StorageEngineService service(std::move(engine));

  // --serve-merge promotes this process from a storage shard to a full
  // merge endpoint: service opcodes peel off to the merge front end, all
  // other traffic (storage RPCs, JSON) flows to the storage service on the
  // same connection.
  std::unique_ptr<service::MergeService> merge_service;
  std::unique_ptr<service::MergeFrontend> merge_frontend;
  if (serve_merge) {
    merge_service = std::make_unique<service::MergeService>(merge_options);
    merge_frontend =
        std::make_unique<service::MergeFrontend>(merge_service.get());
    Status started = merge_service->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "merge service start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }

  auto server =
      storage::SocketTransportServer::Bind(endpoint_spec, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  Status serving = (*server)->Serve(
      [&service, &merge_frontend](std::string_view request) {
        if (merge_frontend != nullptr &&
            service::MergeFrontend::Handles(request)) {
          return merge_frontend->Handle(request);
        }
        return service.Handle(request);
      });
  if (!serving.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", serving.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  if (injector != nullptr) {
    // The normalized spec on the READY line makes every chaos run
    // self-describing: the log alone reproduces the schedule.
    std::printf("READY %s fault-spec=%s\n", (*server)->endpoint().c_str(),
                injector->spec().ToString().c_str());
  } else {
    std::printf("READY %s\n", (*server)->endpoint().c_str());
  }
  std::fflush(stdout);

  // --stats-interval N prints a STATS line every N seconds while serving,
  // so saturation runs are observable live rather than only at STOPPED.
  unsigned ticks_since_stats = 0;
  const unsigned ticks_per_stats = stats_interval_s * 20;  // 50 ms ticks
  while (!g_stop) {
    ::usleep(50 * 1000);
    if (ticks_per_stats > 0 && ++ticks_since_stats >= ticks_per_stats) {
      ticks_since_stats = 0;
      PrintStatsLine((*server)->endpoint(), **server, merge_service.get());
    }
  }
  // Drain order: stop the merge service first (queued sessions resolve,
  // submits reject typed) while the socket server still answers polls, then
  // take the transport down.
  if (merge_service != nullptr) (void)merge_service->Stop();
  (*server)->Shutdown();
  // Final stats line, SIGINT and SIGTERM alike: one parseable record of the
  // shard's whole life for launchers, CI logs, and operators tailing the
  // output — connection totals plus the overload ledger (what was shed at
  // admission, what expired in queue, how deep the queue ever got).
  std::printf(
      "STOPPED %s connections=%llu shed_jobs=%llu expired_jobs=%llu "
      "peak_queued_jobs=%llu peak_queued_bytes=%llu replay_hits=%llu",
      (*server)->endpoint().c_str(),
      static_cast<unsigned long long>((*server)->connections_accepted()),
      static_cast<unsigned long long>((*server)->shed_jobs()),
      static_cast<unsigned long long>((*server)->expired_jobs()),
      static_cast<unsigned long long>((*server)->peak_queued_jobs()),
      static_cast<unsigned long long>((*server)->peak_queued_bytes()),
      static_cast<unsigned long long>(service.replay_hits()));
  if (merge_service != nullptr) {
    const auto stats = merge_service->stats();
    std::printf(
        " merge_submitted=%llu merge_completed=%llu merge_failed=%llu "
        "merge_cancelled=%llu merge_shed=%llu merge_expired=%llu "
        "merge_coalesced=%llu merge_replay_hits=%llu",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.expired),
        static_cast<unsigned long long>(stats.coalesced),
        static_cast<unsigned long long>(stats.replay_hits));
  }
  std::printf("\n");
  std::fflush(stdout);
  return 0;
}
