#!/usr/bin/env python3
"""Bench-trajectory regression gate.

Compares the current BENCH_*.json report (the JsonReporter schema:
``{"bench": ..., "sections": {<section>: {<metric>: <number>}}}``) against
the median of the last N reports accumulated in a history directory, and
exits nonzero when a gated metric degrades by more than the threshold —
the CI comparator the ROADMAP asks for over the BENCH_micro_merge.json
trajectory (and any other report with the same schema, e.g.
BENCH_fig11_distributed.json).

Gated metrics, by name:
  * ``*makespan*``  — lower is better (virtual wall-clock of a drain);
  * ``*speedup*``   — higher is better (scaling quality).

Chaos-invariant metrics (from BENCH_chaos_suite.json) are gated EXACTLY
(zero tolerance, ignoring --threshold): robustness counts are
deterministic under seeded injection, so any movement is a real behaviour
change, not noise:
  * ``recovered_merges``, ``recovered_transactions`` — higher is better,
    may never drop below the history median;
  * ``typed_failures``, ``hangs``, ``wrong_winners``, ``staged_residue``
    — lower is better, may never rise above the history median (and a
    median of zero means zero, forever).

Everything else (scores, byte counts, eviction telemetry) is recorded but
not gated: those have their own exact PASS/FAIL checks inside the benches.

Metrics whose name contains ``real`` (e.g. ``real_speedup_s4`` from
BENCH_micro_merge_realtime.json) measure REAL steady-clock behaviour, which
jitters with runner load in a way deterministic virtual metrics never do;
they are gated against the looser ``--real-threshold`` (default 30%)
instead of ``--threshold``. Raw wall-clock times (``drain_wall_ms_*``)
carry neither tag on purpose: a duration in ms is machine-dependent enough
that only the sequential/concurrent RATIO is worth gating.

Typical CI usage (history persisted via actions/cache):

    python3 tools/bench_compare.py --current BENCH_micro_merge.json \
        --history-dir bench-history --last 5 --threshold 0.10
    python3 tools/bench_compare.py --current BENCH_micro_merge.json \
        --history-dir bench-history --append --tag "$GITHUB_RUN_ID"

An empty or missing history passes with a note: the gate only engages once
a few data points exist.
"""

import argparse
import json
import os
import shutil
import statistics
import sys

LOWER_IS_BETTER = ("makespan", "p50_", "p99_")
# "keys_per_s" covers the migration throughput metrics from
# bench_micro_rebalance (real_migrate_keys_per_s) — throughput, so higher
# is better; the "real" in the name routes them to --real-threshold.
# "rps" / "goodput" are the saturation suites' request-rate and
# winners-delivered rates; "p50_" / "p99_" their latency percentiles. All
# four are wall-clock observables, routed to --real-threshold below.
HIGHER_IS_BETTER = ("speedup", "keys_per_s", "rps", "goodput")

# Deterministic invariant counters, gated with ZERO tolerance — the noise
# thresholds that make sense for timing metrics would let a robustness
# regression slide through as "within 10%". Two sources:
#   * bench_chaos_suite counters, deterministic under seeded fault
#     injection (typed_failures, hangs, recovered_*, staged_residue);
#   * bench_micro_rebalance counters, deterministic under a fixed key set
#     and ring (migrated_keys must never drop: fewer keys moved for the
#     same topology change means the planner stopped seeing keys it owns;
#     lost_keys / leaver_residue must stay zero);
#   * bench_overload_suite counters (deadline_overruns: a request that
#     resolved — even typed — after deadline+epsilon is a propagation bug,
#     never noise);
#   * bench_saturation_suite counters (starved_tenants: a tenant whose
#     batch share fell 25% below its DRR weight; wedged_pollers: a merge
#     session with no terminal state by deadline+epsilon — both are
#     scheduler/lifecycle bugs, never noise).
EXACT_LOWER_IS_BETTER = (
    "typed_failures", "hangs", "wrong_winners", "staged_residue",
    "lost_keys", "leaver_residue", "deadline_overruns",
    "starved_tenants", "wedged_pollers",
)
EXACT_HIGHER_IS_BETTER = (
    "recovered_merges", "recovered_transactions", "migrated_keys",
)


def metric_direction(name):
    """Returns ('lower'|'higher'|None, exact) for a metric name.

    `exact` marks chaos-invariant counters gated with zero tolerance.
    Exact tags are matched first so e.g. a hypothetical
    ``recovered_merges_speedup`` stays exact rather than noisy.
    """
    lowered = name.lower()
    if any(tag in lowered for tag in EXACT_LOWER_IS_BETTER):
        return "lower", True
    if any(tag in lowered for tag in EXACT_HIGHER_IS_BETTER):
        return "higher", True
    if any(tag in lowered for tag in LOWER_IS_BETTER):
        return "lower", False
    if any(tag in lowered for tag in HIGHER_IS_BETTER):
        return "higher", False
    return None, False


def load_metrics(path):
    """Flattens one report into {(section, metric): float}."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    flat = {}
    for section, metrics in doc.get("sections", {}).items():
        if not isinstance(metrics, dict):
            continue
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            flat[(section, name)] = float(value)
    return flat, doc.get("bench", "bench")


def history_files(history_dir, bench_name):
    """History reports for this bench, oldest first (by mtime, then name)."""
    if not os.path.isdir(history_dir):
        return []
    paths = [
        os.path.join(history_dir, entry)
        for entry in os.listdir(history_dir)
        if entry.startswith(bench_name + "-") and entry.endswith(".json")
    ]
    return sorted(paths, key=lambda p: (os.path.getmtime(p), p))


def is_real_time_metric(name):
    """Real steady-clock metrics get the looser noise threshold."""
    lowered = name.lower()
    if any(tag in lowered for tag in ("p50_", "p99_", "rps", "goodput")):
        return True
    return "real" in lowered


def compare(current_path, history_dir, last, threshold, min_history,
            real_threshold):
    current, bench_name = load_metrics(current_path)
    history = history_files(history_dir, bench_name)[-last:]
    if len(history) < min_history:
        print(
            f"bench_compare: only {len(history)} historical report(s) for "
            f"'{bench_name}' in {history_dir!r} (need {min_history}); "
            "nothing to gate yet — PASS"
        )
        return 0

    series = {}
    for path in history:
        metrics, _ = load_metrics(path)
        for key, value in metrics.items():
            series.setdefault(key, []).append(value)

    regressions = []
    checked = 0
    for (section, name), value in sorted(current.items()):
        direction, exact = metric_direction(name)
        past = series.get((section, name))
        if direction is None or not past:
            continue
        checked += 1
        if exact:
            limit = 0.0
        else:
            limit = real_threshold if is_real_time_metric(name) else threshold
        median = statistics.median(past)
        if median == 0:
            # A ratio vs zero is meaningless. For exact counters the median
            # IS the contract: a lower-is-better count with an all-zero
            # history (hangs, wrong_winners, staged_residue) must stay zero,
            # and a higher-is-better one sitting at zero can only improve.
            if not exact:
                continue
            regressed = value > 0 if direction == "lower" else False
            verdict = (
                f"vs median 0 ({direction} is better, exact)"
            )
        elif direction == "lower":
            change = value / median - 1.0
            regressed = change > limit
            verdict = f"{change:+.1%} vs median {median:.4g} (lower is better)"
        else:
            change = 1.0 - value / median
            regressed = change > limit
            verdict = (
                f"{-change:+.1%} vs median {median:.4g} (higher is better)"
            )
        status = "REGRESSION" if regressed else "ok"
        real_tag = " [real-time]" if is_real_time_metric(name) else ""
        exact_tag = " [exact]" if exact else ""
        print(
            f"  [{status:>10}] {section}/{name}: {value:.4g} {verdict} "
            f"over {len(past)} run(s), threshold {limit:.0%}"
            f"{real_tag}{exact_tag}"
        )
        if regressed:
            regressions.append(f"{section}/{name}")

    print(
        f"bench_compare: checked {checked} gated metric(s) against "
        f"{len(history)} run(s), threshold {threshold:.0%} "
        f"(real-time metrics {real_threshold:.0%})"
    )
    if regressions:
        print(
            "bench_compare: FAIL — regressed metrics: "
            + ", ".join(regressions)
        )
        return 1
    print("bench_compare: PASS")
    return 0


def append(current_path, history_dir, tag, keep):
    _, bench_name = load_metrics(current_path)
    os.makedirs(history_dir, exist_ok=True)
    target = os.path.join(history_dir, f"{bench_name}-{tag}.json")
    shutil.copyfile(current_path, target)
    print(f"bench_compare: appended {target}")
    stale = history_files(history_dir, bench_name)[:-keep]
    for path in stale:
        os.remove(path)
        print(f"bench_compare: pruned {path}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="BENCH_*.json produced by this run")
    parser.add_argument("--history-dir", default="bench-history",
                        help="directory of prior reports (default: %(default)s)")
    parser.add_argument("--last", type=int, default=5,
                        help="compare against the median of the last N runs")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional degradation (default 10%%)")
    parser.add_argument("--real-threshold", type=float, default=0.30,
                        help="allowed degradation for real steady-clock "
                             "metrics (name contains 'real'; default 30%%)")
    parser.add_argument("--min-history", type=int, default=2,
                        help="gate only once this many reports exist")
    parser.add_argument("--append", action="store_true",
                        help="record the current report into the history "
                             "instead of comparing")
    parser.add_argument("--tag", default="local",
                        help="history file tag, e.g. the CI run id")
    parser.add_argument("--keep", type=int, default=20,
                        help="history files retained per bench on --append")
    args = parser.parse_args(argv)

    if not os.path.isfile(args.current):
        print(f"bench_compare: current report {args.current!r} not found")
        return 2
    if args.append:
        return append(args.current, args.history_dir, args.tag, args.keep)
    return compare(args.current, args.history_dir, args.last, args.threshold,
                   args.min_history, args.real_threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
