// Reproduces Fig. 9: pipeline-time composition during the merge operation.
// Expected shape (paper Sec. VII-D): the arms differ mainly in
// pre-processing time (both prunings act on pre-processing components);
// model-training time is nearly the same across arms; storage time is a
// small fraction.

#include <cstdio>

#include "bench_util.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.15;

void RunWorkload(const std::string& name) {
  bench::Section(name);
  std::printf("%-10s%16s%16s%16s%14s\n", "system", "storage(s)",
              "preprocess(s)", "training(s)", "total(s)");
  struct Arm {
    const char* label;
    bool pc;
    bool pr;
  };
  for (const Arm& arm : {Arm{"mlcask", true, true}, Arm{"w/o PR", true, false},
                         Arm{"w/o PCPR", false, false}}) {
    auto d = bench::CheckedValue(sim::MakeDeployment(name, kScale),
                                 "MakeDeployment");
    bench::CheckOk(sim::BuildTwoBranchScenario(d.get()).status(),
                   "BuildTwoBranchScenario");
    merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                             d->registry.get(), d->engine.get(),
                             d->clock.get());
    merge::MergeOptions opts;
    opts.prune_compatibility = arm.pc;
    opts.reuse_outputs = arm.pr;
    opts.store_trial_outputs = !arm.pr;
    auto report = bench::CheckedValue(op.Merge("master", "dev", opts), "Merge");
    std::printf("%-10s%16.1f%16.1f%16.1f%14.1f\n", arm.label,
                report.total_time.storage_s, report.total_time.preprocess_s,
                report.total_time.train_s, report.total_time.Total());
  }
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 9", "pipeline time composition during merge");
  std::printf("scale=%.2f, two-branch scenario per Fig. 3\n", kScale);
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name);
  }
  return 0;
}
