// saturation_suite — the merge-as-a-service acceptance gate: thousands of
// simulated users across weighted tenants drive real `mlcask_server
// --serve-merge` processes OPEN LOOP at 1×/2×/4× of measured merge
// capacity, through schedules shaped like production ingress (hot-key
// skew, diurnal swings, merge storms — sim/saturation.h). The invariants
// scored here are the service contract:
//
//   * every submission resolves: a winner, or a TYPED ResourceExhausted /
//     DeadlineExceeded — a poller never wedges past deadline+ε
//     (wedged_pollers, deadline_overruns: EXACT zero);
//   * every winner the server hands back is BIT-IDENTICAL (winner chain,
//     executions, merge commit, artifact hashes — one SHA-256 fingerprint)
//     to a client-local Algorithm 2 run of the same spec, including under
//     the PR 7 client fault schedule riding the sweep's transports
//     (wrong_winners: EXACT zero);
//   * deficit-round-robin holds: while every tenant is backlogged, each
//     tenant's share of executed batches stays within 25% of its
//     configured weight share (starved_tenants: EXACT zero);
//   * p50/p99 session latency, sustained RPC/s, and goodput are reported
//     per level and gated against history (real-threshold metrics).
//
// ε is derived, not guessed: a service RPC is bounded by max_call_replays
// redial episodes × redial_budget_ms plus one call timeout
// (4 × 500ms + 4000ms = 6s); ε = 10s adds scheduling slop. Anything past
// deadline+ε is a wedge.
//
// Flags: --short (2 servers, shorter levels), --json <path>.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "merge/merge_op.h"
#include "service/merge_client.h"
#include "service/merge_service.h"
#include "service/service_codec.h"
#include "sim/saturation.h"
#include "sim/scenario.h"
#include "storage/deadline.h"
#include "storage/server_cluster.h"
#include "storage/socket_transport.h"

#ifndef MLCASK_SERVER_BIN
#define MLCASK_SERVER_BIN ""
#endif

namespace mlcask {
namespace {

namespace service = mlcask::service;

/// Per-session budget stamped on every submit (queue wait + merge).
constexpr uint64_t kSessionDeadlineMs = 4000;
/// Derived wedge bound past the deadline — see the file banner.
constexpr uint64_t kEpsilonMs = 10000;

service::MergeJobSpec SpecForSeed(uint64_t seed) {
  service::MergeJobSpec spec;  // tenant is stamped by the client
  spec.seed = seed;
  return spec;
}

/// Client-local Algorithm 2 over the exact same spec the server executes:
/// fresh deployment, BuildDistributedMergeScenario, MergeOperation::Merge,
/// then the SAME WinnerFromReport the service uses — field-for-field.
service::MergeWinner ClientLocalReference(const service::MergeJobSpec& spec) {
  sim::DeploymentConfig config;
  config.num_workers = std::max<size_t>(1, spec.num_workers);
  config.storage_shards = spec.storage_shards;
  auto d = bench::CheckedValue(
      sim::MakeDeployment(spec.workload, spec.scale, config),
      "reference deployment");
  auto scenario = bench::CheckedValue(
      sim::BuildDistributedMergeScenario(d.get(),
                                         spec.extra_extractor_versions,
                                         spec.extra_model_versions),
      "reference scenario");
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.shards = spec.merge_shards;
  options.num_workers = spec.num_workers;
  options.seed = spec.seed;
  if (spec.merge_shards <= 1) options.core = d->core.get();
  auto report = bench::CheckedValue(
      op.Merge(scenario.head_branch, scenario.merge_branch, options),
      "reference merge");
  return bench::CheckedValue(
      service::WinnerFromReport(report, d->repo.get(), scenario.head_branch),
      "reference winner");
}

/// Per-thread client pool: MergeServiceClient's replay-token sequence is
/// not synchronized, so every worker thread keeps its own client per
/// (endpoint, tenant). Transports ARE thread-safe and shared.
struct ClientPool {
  std::vector<storage::Transport*> transports;  // one per endpoint
  std::map<std::pair<size_t, std::string>,
           std::unique_ptr<service::MergeServiceClient>>
      clients;

  service::MergeServiceClient* Get(size_t endpoint,
                                   const std::string& tenant) {
    auto& slot = clients[{endpoint, tenant}];
    if (!slot) {
      slot = std::make_unique<service::MergeServiceClient>(
          transports[endpoint], tenant);
    }
    return slot.get();
  }
};

/// One accepted session still awaiting its terminal state.
struct Flight {
  std::string session_id;
  std::string tenant;
  uint64_t spec_seed = 0;
  size_t endpoint = 0;
  std::chrono::steady_clock::time_point submitted;
};

struct LevelResult {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed_typed = 0;
  uint64_t expired_typed = 0;
  uint64_t other_typed = 0;
  uint64_t wrong_winners = 0;
  uint64_t wedged_pollers = 0;
  uint64_t deadline_overruns = 0;
  uint64_t rpcs = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double rps = 0;      ///< All service RPCs (submit+poll+fetch) per second.
  double goodput = 0;  ///< Winners delivered per second.
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1)));
  return values[index];
}

/// The open-loop driver: submits release on the FIXED schedule (a slow
/// service deepens its own backlog, it never slows the generator), while a
/// small poller pool sweeps every accepted session to a terminal state and
/// scores the outcome. Decoupling submitters from pollers keeps the thread
/// count independent of how many sessions are in flight.
LevelResult RunLevel(
    const std::vector<sim::SaturationEvent>& schedule, double rate_scale,
    const std::vector<std::unique_ptr<storage::SocketTransport>>& transports,
    const std::map<uint64_t, service::MergeWinner>& references) {
  LevelResult result;
  result.offered = schedule.size();

  std::mutex mu;
  std::deque<Flight> live;
  std::vector<double> latencies_ms;
  std::atomic<bool> submitting{true};
  std::atomic<uint64_t> rpcs{0};
  std::atomic<uint64_t> shed{0}, expired{0}, other{0};
  std::atomic<uint64_t> completed{0}, wrong{0}, wedged{0}, overruns{0};

  const auto start = std::chrono::steady_clock::now();
  const size_t submit_workers = 16;
  std::atomic<size_t> next{0};
  std::vector<std::thread> submitters;
  submitters.reserve(submit_workers);
  for (size_t w = 0; w < submit_workers; ++w) {
    submitters.emplace_back([&] {
      ClientPool pool;
      for (const auto& t : transports) pool.transports.push_back(t.get());
      for (size_t i = next.fetch_add(1); i < schedule.size();
           i = next.fetch_add(1)) {
        const sim::SaturationEvent& event = schedule[i];
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(event.at_s /
                                                      rate_scale)));
        const size_t endpoint = i % transports.size();
        service::MergeServiceClient* client =
            pool.Get(endpoint, event.tenant);
        StatusOr<service::SubmitResult> submitted =
            Status::Internal("never ran");
        {
          storage::DeadlineBudget budget(kSessionDeadlineMs);
          storage::DeadlineScope scope(&budget);
          submitted = client->Submit(SpecForSeed(event.spec_seed));
        }
        rpcs.fetch_add(1);
        if (!submitted.ok()) {
          if (submitted.status().IsResourceExhausted()) {
            shed.fetch_add(1);
          } else if (submitted.status().IsDeadlineExceeded()) {
            expired.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
          continue;
        }
        Flight flight;
        flight.session_id = submitted->session_id;
        flight.tenant = event.tenant;
        flight.spec_seed = event.spec_seed;
        flight.endpoint = endpoint;
        flight.submitted = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(mu);
        live.push_back(std::move(flight));
      }
    });
  }

  const auto wedge_bound =
      std::chrono::milliseconds(kSessionDeadlineMs + kEpsilonMs);
  const size_t poll_workers = 4;
  std::vector<std::thread> pollers;
  pollers.reserve(poll_workers);
  for (size_t w = 0; w < poll_workers; ++w) {
    pollers.emplace_back([&] {
      ClientPool pool;
      for (const auto& t : transports) pool.transports.push_back(t.get());
      while (true) {
        Flight flight;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (live.empty()) {
            if (!submitting.load()) return;
          } else {
            flight = std::move(live.front());
            live.pop_front();
          }
        }
        if (flight.session_id.empty()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        const auto now = std::chrono::steady_clock::now();
        service::MergeServiceClient* client =
            pool.Get(flight.endpoint, flight.tenant);
        auto poll = client->Poll(flight.session_id);
        rpcs.fetch_add(1);
        bool terminal = false;
        if (!poll.ok()) {
          // A typed poll failure (transport fault past its replay budget,
          // eviction) still RESOLVES the session for the driver.
          other.fetch_add(1);
          terminal = true;
        } else if (service::IsTerminal(poll->state)) {
          terminal = true;
          if (poll->state == service::SessionState::kDone) {
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    now - flight.submitted)
                    .count();
            if (now - flight.submitted > wedge_bound) overruns.fetch_add(1);
            auto winner = client->Fetch(flight.session_id);
            rpcs.fetch_add(1);
            if (!winner.ok()) {
              other.fetch_add(1);
            } else if (winner->Fingerprint() ==
                       references.at(flight.spec_seed).Fingerprint()) {
              completed.fetch_add(1);
              std::lock_guard<std::mutex> lock(mu);
              latencies_ms.push_back(wall_ms);
            } else {
              wrong.fetch_add(1);
            }
          } else if (poll->state == service::SessionState::kFailed) {
            if (poll->error_code == StatusCode::kDeadlineExceeded) {
              expired.fetch_add(1);
            } else if (poll->error_code == StatusCode::kResourceExhausted) {
              shed.fetch_add(1);
            } else {
              other.fetch_add(1);
            }
          } else {
            other.fetch_add(1);  // kCancelled — nobody cancels here
          }
        } else if (now - flight.submitted > wedge_bound) {
          // Past deadline+ε with no terminal state: THE wedge.
          wedged.fetch_add(1);
          terminal = true;
        }
        if (!terminal) {
          std::lock_guard<std::mutex> lock(mu);
          live.push_back(std::move(flight));
        }
      }
    });
  }

  for (std::thread& t : submitters) t.join();
  submitting.store(false);
  for (std::thread& t : pollers) t.join();

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.completed = completed.load();
  result.shed_typed = shed.load();
  result.expired_typed = expired.load();
  result.other_typed = other.load();
  result.wrong_winners = wrong.load();
  result.wedged_pollers = wedged.load();
  result.deadline_overruns = overruns.load();
  result.rpcs = rpcs.load();
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.rps = elapsed_s > 0 ? result.rpcs / elapsed_s : 0;
  result.goodput = elapsed_s > 0 ? result.completed / elapsed_s : 0;
  return result;
}

/// VmHWM of the bench process (the generator side), in MiB.
double PeakRssMb() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmHWM:") {
      double kb = 0;
      in >> kb;
      return kb / 1024.0;
    }
    std::string rest;
    std::getline(in, rest);
  }
  return 0;
}

}  // namespace
}  // namespace mlcask

int main(int argc, char** argv) {
  using namespace mlcask;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("saturation_suite",
                "merge-as-a-service: open-loop multi-tenant saturation at "
                "1x/2x/4x capacity");
  bench::JsonReporter reporter("saturation_suite");

  const size_t kServers = 2;
  const size_t kMergeWorkersPerServer = 2;
  const double level_seconds = args.short_mode ? 2.0 : 4.0;
  const size_t distinct_specs = args.short_mode ? 3 : 5;

  // --- the cluster: real mlcask_server processes, merge front end on -----
  // --- the same endpoint as the storage shard ----------------------------
  bench::Section("cluster");
  storage::LocalServerCluster cluster;
  storage::LocalServerCluster::Options cluster_options;
  cluster_options.server_binary = MLCASK_SERVER_BIN;
  cluster_options.serve_merge = true;
  cluster_options.merge_workers = kMergeWorkersPerServer;
  cluster_options.tenant_weights = "gold=3,free=1";
  bench::CheckOk(cluster.Start(kServers, cluster_options), "cluster start");
  std::printf("%zu server processes, %zu merge workers each, weights %s\n",
              kServers, kMergeWorkersPerServer,
              cluster_options.tenant_weights.c_str());

  // The sweep's transports carry the PR 7 client fault schedule: dropped
  // frames and post-send connection kills force redial + replay on live
  // sessions, and the submit replay tokens keep it exactly-once.
  std::vector<std::unique_ptr<storage::SocketTransport>> transports;
  for (size_t i = 0; i < cluster.endpoints().size(); ++i) {
    storage::SocketTransport::Options topts;
    topts.call_timeout_ms = 4000;
    topts.redial_budget_ms = 500;
    topts.max_call_replays = 4;
    topts.redial_jitter_seed = 77 + i;
    auto fault = storage::FaultSpec::Parse(
        "seed=" + std::to_string(31 + i) + ",drop=0.005,dropafter=0.005");
    bench::CheckOk(fault.status(), "client fault spec");
    topts.injector = std::make_shared<storage::FaultInjector>(*fault);
    transports.push_back(bench::CheckedValue(
        storage::SocketTransport::Connect(cluster.endpoints()[i], topts),
        "connect"));
  }

  // --- client-local references: one per distinct spec seed ---------------
  bench::Section("client-local Algorithm 2 references");
  std::map<uint64_t, service::MergeWinner> references;
  for (uint64_t seed = 1; seed <= 1 + distinct_specs; ++seed) {
    references.emplace(seed, ClientLocalReference(SpecForSeed(seed)));
  }
  std::printf("%zu reference winners fingerprinted\n", references.size());

  // --- capacity probe: closed-loop sessions through one server -----------
  bench::Section("capacity probe");
  const size_t probe_n = args.short_mode ? 4 : 8;
  double capacity_rps = 0;
  {
    service::MergeServiceClient probe(transports[0].get(), "probe");
    const auto probe_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < probe_n; ++i) {
      auto submitted = bench::CheckedValue(
          probe.Submit(SpecForSeed(1 + i % references.size())),
          "probe submit");
      auto winner = probe.AwaitWinner(submitted.session_id,
                                      /*poll_interval_ms=*/1,
                                      /*timeout_ms=*/60000);
      bench::CheckOk(winner.status(), "probe await");
    }
    const double probe_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      probe_start)
            .count();
    const double per_worker = probe_s > 0 ? probe_n / probe_s : 25.0;
    capacity_rps = per_worker * kServers * kMergeWorkersPerServer;
    if (capacity_rps < 20) capacity_rps = 20;
  }
  std::printf("measured merge capacity: %.0f sessions/s\n", capacity_rps);
  reporter.Metric("capacity", "capacity_rps", capacity_rps);

  // --- the open-loop sweep ------------------------------------------------
  // One schedule (same seed → same users, same storms), replayed at
  // 1×/2×/4× of capacity by compressing release times. Tenants: "gold"
  // (weight 3, 700 users) and "free" (weight 1, 300 users) — a thousand
  // simulated users, hot-key skew at 80%, diurnal swing, three storms.
  sim::SaturationConfig schedule_config;
  schedule_config.tenants = {
      {"gold", 3, 700, 0.8, distinct_specs},
      {"free", 1, 300, 0.8, distinct_specs},
  };
  schedule_config.duration_s = level_seconds;
  schedule_config.diurnal_amplitude = 0.4;
  schedule_config.storm_fraction = 0.15;
  schedule_config.storm_count = 3;
  schedule_config.seed = 11;

  uint64_t wrong_winners = 0;
  uint64_t wedged_pollers = 0;
  uint64_t deadline_overruns = 0;
  std::map<int, LevelResult> levels;
  for (double mult : {1.0, 2.0, 4.0}) {
    sim::SaturationConfig level_config = schedule_config;
    level_config.base_rps =
        std::min(capacity_rps * mult, 4000.0 / level_seconds);
    const std::vector<sim::SaturationEvent> schedule =
        sim::BuildSaturationSchedule(level_config);
    LevelResult level = RunLevel(schedule, /*rate_scale=*/1.0, transports,
                                 references);
    const int key = static_cast<int>(mult);
    levels[key] = level;
    wrong_winners += level.wrong_winners;
    wedged_pollers += level.wedged_pollers;
    deadline_overruns += level.deadline_overruns;
    std::printf(
        "%dx: offered %llu | winners %llu shed %llu expired %llu other %llu "
        "| p50 %.1fms p99 %.1fms | %.0f rpc/s | goodput %.0f/s | "
        "wedged %llu overruns %llu wrong %llu\n",
        key, static_cast<unsigned long long>(level.offered),
        static_cast<unsigned long long>(level.completed),
        static_cast<unsigned long long>(level.shed_typed),
        static_cast<unsigned long long>(level.expired_typed),
        static_cast<unsigned long long>(level.other_typed), level.p50_ms,
        level.p99_ms, level.rps, level.goodput,
        static_cast<unsigned long long>(level.wedged_pollers),
        static_cast<unsigned long long>(level.deadline_overruns),
        static_cast<unsigned long long>(level.wrong_winners));
    const std::string tag = std::to_string(key) + "x";
    reporter.Metric("saturation", "offered_" + tag,
                    static_cast<double>(level.offered));
    reporter.Metric("saturation", "completed_" + tag,
                    static_cast<double>(level.completed));
    reporter.Metric("saturation", "shed_typed_" + tag,
                    static_cast<double>(level.shed_typed));
    reporter.Metric("saturation", "expired_typed_" + tag,
                    static_cast<double>(level.expired_typed));
    reporter.Metric("saturation", "p50_" + tag + "_ms", level.p50_ms);
    reporter.Metric("saturation", "p99_" + tag + "_ms", level.p99_ms);
    reporter.Metric("saturation", "rps_" + tag, level.rps);
    reporter.Metric("saturation", "goodput_" + tag, level.goodput);
  }

  const double goodput_1x = levels[1].goodput;
  const double goodput_4x = levels[4].goodput;
  // Coalescing makes goodput scale WITH offered load (hot submissions ride
  // shared batches), so 4× must retain at least 1× — degradation bound.
  const double retention = goodput_1x > 0 ? goodput_4x / goodput_1x : 0;
  const double rss_mb = PeakRssMb();
  std::printf("goodput retention 4x/1x: %.2f | generator peak RSS %.0f MiB\n",
              retention, rss_mb);
  reporter.Metric("saturation", "goodput_retention_4x", retention);
  reporter.Metric("saturation", "rss_peak_mb", rss_mb);

  // --- server-vs-client equivalence across merge shard counts ------------
  // The sweep already checked every winner at merge_shards=1; this slice
  // re-checks the sharded merge paths end-to-end through the service.
  bench::Section("winner equivalence at 1/2/4 merge shards");
  const std::vector<uint32_t> shard_counts =
      args.short_mode ? std::vector<uint32_t>{2} : std::vector<uint32_t>{2, 4};
  for (uint32_t shards : shard_counts) {
    service::MergeJobSpec spec = SpecForSeed(1);
    spec.merge_shards = shards;
    service::MergeServiceClient client(transports[0].get(), "equiv");
    auto submitted =
        bench::CheckedValue(client.Submit(spec), "equivalence submit");
    auto server_winner = client.AwaitWinner(submitted.session_id, 1, 120000);
    bench::CheckOk(server_winner.status(), "equivalence await");
    const service::MergeWinner reference = ClientLocalReference(spec);
    const bool identical =
        server_winner->Fingerprint() == reference.Fingerprint();
    if (!identical) ++wrong_winners;
    std::printf("merge_shards=%u: %s\n", shards,
                identical ? "fingerprint identical" : "WRONG WINNER");
  }

  // --- fairness under a full backlog -------------------------------------
  // Weighted share needs exact batch counters, so this phase runs the
  // service in process (REAL merges, same code path the servers run):
  // both tenants submit 40 non-coalescible batches, and while both are
  // backlogged the executed-batch share must track the 3:1 weights.
  bench::Section("weighted fairness under backlog");
  uint64_t starved_tenants = 0;
  {
    service::MergeServiceOptions options;
    options.worker_threads = 2;
    options.tenant_weights = {{"gold", 3}, {"free", 1}};
    options.max_queued_per_tenant = 64;
    service::MergeService svc(options);
    bench::CheckOk(svc.Start(), "fairness service start");
    const uint64_t per_tenant = args.short_mode ? 24 : 40;
    std::vector<std::pair<std::string, std::string>> sessions;
    for (uint64_t i = 0; i < per_tenant; ++i) {
      // Seeds far outside the reference range: every batch distinct.
      for (const char* tenant : {"gold", "free"}) {
        service::MergeJobSpec spec = SpecForSeed(1000 + i * 2);
        spec.seed += (tenant[0] == 'g') ? 0 : 1;
        spec.tenant = tenant;
        auto submitted = svc.Submit(spec);
        bench::CheckOk(submitted.status(), "fairness submit");
        sessions.emplace_back(tenant, submitted->session_id);
      }
    }
    // Snapshot the shares while both tenants are still provably
    // backlogged (well under per_tenant executed for either).
    const uint64_t window = per_tenant;  // first N batches executed
    service::MergeServiceStats snap;
    while (true) {
      snap = svc.stats();
      if (snap.batches_executed >= window) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const double gold_batches =
        static_cast<double>(snap.tenant_batches.count("gold")
                                ? snap.tenant_batches.at("gold")
                                : 0);
    const double total_batches =
        static_cast<double>(snap.batches_executed);
    const double gold_share =
        total_batches > 0 ? gold_batches / total_batches : 0;
    const double expected_gold = 3.0 / 4.0;
    std::printf(
        "at %llu executed batches: gold share %.2f (expected %.2f +-25%%)\n",
        static_cast<unsigned long long>(snap.batches_executed), gold_share,
        expected_gold);
    for (const char* tenant : {"gold", "free"}) {
      const double expected =
          tenant[0] == 'g' ? expected_gold : 1 - expected_gold;
      const double actual =
          tenant[0] == 'g' ? gold_share : 1 - gold_share;
      if (actual < expected * 0.75) {
        ++starved_tenants;
        std::printf("STARVED: %s share %.2f < 75%% of expected %.2f\n",
                    tenant, actual, expected);
      }
    }
    reporter.Metric("fairness", "gold_share", gold_share);
    reporter.Metric("fairness", "expected_gold_share", expected_gold);
    // Cancel the remaining backlog so teardown is quick, then drain.
    for (const auto& [tenant, id] : sessions) (void)svc.Cancel(tenant, id);
    bench::CheckOk(svc.Stop(), "fairness service stop");
  }

  // Reaching this line at all means zero hangs — the CI watchdog kills the
  // process otherwise; the metric makes the claim explicit in the report.
  const uint64_t hangs = 0;
  reporter.Metric("contract", "wrong_winners",
                  static_cast<double>(wrong_winners));
  reporter.Metric("contract", "wedged_pollers",
                  static_cast<double>(wedged_pollers));
  reporter.Metric("contract", "deadline_overruns",
                  static_cast<double>(deadline_overruns));
  reporter.Metric("contract", "starved_tenants",
                  static_cast<double>(starved_tenants));
  reporter.Metric("contract", "hangs", static_cast<double>(hangs));
  reporter.Write(args.json_path);

  transports.clear();
  bench::CheckOk(cluster.Stop(), "cluster stop");

  bool fail = false;
  auto gate = [&](bool bad, const char* what) {
    if (bad) {
      std::printf("GATE FAILED: %s\n", what);
      fail = true;
    }
  };
  gate(wrong_winners > 0, "server winner diverged from client-local merge");
  gate(wedged_pollers > 0, "a poller wedged past deadline+epsilon");
  gate(deadline_overruns > 0, "a session overran deadline+epsilon");
  gate(starved_tenants > 0, "a tenant's share fell 25% below its weight");
  gate(goodput_1x > 0 && retention < 0.70,
       "goodput at 4x collapsed below 70% of 1x");
  gate(rss_mb > 2048, "generator peak RSS unbounded");

  std::printf("\nSATURATION SUITE: %s\n", fail ? "FAIL" : "PASS");
  return fail ? 1 : 0;
}
