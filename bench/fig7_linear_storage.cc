// Reproduces Fig. 7: cumulative storage size (CSS) for linear versioning.
// Expected shape (paper Sec. VII-C): ModelDB grows linearly (every iteration
// re-archives everything); MLflow is much flatter (outputs of repeated
// components stored once); MLCask is flattest thanks to chunk-level
// de-duplication across library versions and reusable outputs.

#include <cstdio>

#include "baselines/system_under_test.h"
#include "bench_util.h"
#include "sim/libraries.h"
#include "sim/linear_driver.h"
#include "sim/workloads.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.25;

void RunWorkload(const std::string& name,
                 const pipeline::LibraryRegistry& registry) {
  sim::Workload workload =
      bench::CheckedValue(sim::MakeWorkload(name, kScale), "MakeWorkload");
  auto schedule = bench::CheckedValue(sim::BuildLinearSchedule(workload, {}),
                                      "BuildLinearSchedule");

  const baselines::SystemConfig configs[] = {baselines::ModelDbConfig(),
                                             baselines::MlflowConfig(),
                                             baselines::MlcaskConfig()};
  bench::Section(name);
  std::printf("%-10s", "iteration");
  for (const auto& c : configs) std::printf("%14s", c.name.c_str());
  std::printf("   (CSS, MB)\n");

  std::vector<std::vector<baselines::IterationStats>> all;
  for (const auto& config : configs) {
    baselines::SystemUnderTest system(config, &registry);
    all.push_back(bench::CheckedValue(sim::ReplaySchedule(schedule, &system),
                                      "ReplaySchedule"));
  }
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::printf("%-10zu", i + 1);
    for (const auto& run : all) {
      std::printf("%14.2f", static_cast<double>(run[i].css_bytes) / 1e6);
    }
    std::printf("\n");
  }
  double modeldb = static_cast<double>(all[0].back().css_bytes);
  double mlcask = static_cast<double>(all[2].back().css_bytes);
  std::printf("storage saving, ModelDB vs MLCask: %.1fx\n", modeldb / mlcask);
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 7", "cumulative storage size for linear versioning");
  std::printf("scale=%.2f, 10 iterations\n", kScale);
  pipeline::LibraryRegistry registry;
  bench::CheckOk(sim::RegisterWorkloadLibraries(&registry),
                 "RegisterWorkloadLibraries");
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name, registry);
  }
  return 0;
}
