// Reproduces Fig. 11 twice over:
//  (a) the legacy closed-form simulation — training loss vs simulated
//      wall-clock for synchronous data-parallel training on 1/2/4/8 GPUs (a
//      real MLP stands in for ResNet18) and the pipeline-time speedup law
//      1/((1-p)+p/k);
//  (b) the REAL distributed engine — the same scaling question asked of the
//      actual stack: a sharded storage deployment (ShardedStorageEngine over
//      loopback RemoteStorageEngine proxies, so every call crosses the wire
//      format) running MergeOperation::Merge with MergeOptions::shards ∈
//      {1,2,4,8} on the widened two-branch scenario. Both curves print side
//      by side: the analytic all-reduce speedup and the measured virtual
//      makespan speedup of the sharded candidate drain.
//
// PASS requires the sharded merges to reproduce the single-node winner and
// execution count exactly and the 4-shard drain to be >= 2x faster than
// 1-shard; the exit status is the verdict, so CI gates on it. Flags:
// --short (fewer shard counts), --json <path> (write the
// BENCH_fig11_distributed.json trajectory artifact), --socket=1 (host every
// shard in its own mlcask_server OS process over unix: endpoints — the
// same merges, now crossing real process boundaries; results must stay
// bit-identical, and the JSON lands under a `real_engine_socket` section so
// socket history gates separately from loopback history).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "merge/merge_op.h"
#include "sim/distributed.h"
#include "sim/scenario.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"

#ifndef MLCASK_SERVER_BIN
#define MLCASK_SERVER_BIN ""
#endif

namespace mlcask {
namespace {

void LossVsTime(bench::JsonReporter* reporter) {
  bench::Section("Fig. 11a — training loss vs time (simulated s)");
  // A real training job: 2-D blobs, 800 examples, 24 epochs.
  Pcg32 rng(11);
  ml::Matrix x(800, 4);
  std::vector<double> y(800);
  for (size_t i = 0; i < 800; ++i) {
    bool pos = rng.Bernoulli(0.5);
    for (size_t j = 0; j < 4; ++j) {
      x.At(i, j) = (pos ? 0.8 : -0.8) + rng.NextGaussian();
    }
    y[i] = pos ? 1.0 : 0.0;
  }
  ml::MlpConfig cfg;
  cfg.hidden_units = 16;
  cfg.sgd.epochs = 24;

  std::printf("%-8s", "time(s)");
  const size_t gpu_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<sim::LossCurvePoint>> curves;
  for (size_t gpus : gpu_counts) {
    sim::DistributedConfig dc;
    dc.gpus = gpus;
    dc.base_epoch_seconds = 30.0;
    curves.push_back(bench::CheckedValue(
        sim::SimulateDistributedTraining(x, y, cfg, dc),
        "SimulateDistributedTraining"));
    std::printf("%12s", ("loss@" + std::to_string(gpus) + "gpu").c_str());
  }
  std::printf("\n");
  // Sample the curves on a common time grid.
  for (double t = 60.0; t <= 720.0; t += 60.0) {
    std::printf("%-8.0f", t);
    for (const auto& curve : curves) {
      double loss = curve.front().loss;
      for (const auto& p : curve) {
        if (p.time_s <= t) loss = p.loss;
      }
      std::printf("%12.4f", loss);
    }
    std::printf("\n");
  }
  for (size_t i = 0; i < std::size(gpu_counts); ++i) {
    const double speedup = sim::DistributedSpeedup(gpu_counts[i], 0.06);
    std::printf("throughput speedup @%zu GPUs: %.2fx\n", gpu_counts[i],
                speedup);
    reporter->Metric("fig11a_sim",
                     "speedup_" + std::to_string(gpu_counts[i]) + "gpu",
                     speedup);
  }
}

void SpeedupSurface() {
  bench::Section("Fig. 11b — pipeline time speedup 1/((1-p)+p/k)");
  std::printf("%-8s", "p \\ k");
  const double ks[] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (double k : ks) std::printf("%8.0f", k);
  std::printf("\n");
  for (double p = 0.1; p <= 0.95; p += 0.1) {
    double pp = p > 0.9 ? 0.95 : p;  // include the paper's p>0.9 regime
    std::printf("%-8.2f", pp);
    for (double k : ks) {
      std::printf("%8.2f", sim::PipelineTimeSpeedup(pp, k));
    }
    std::printf("\n");
    if (pp >= 0.95) break;
  }
}

constexpr double kScale = 0.12;

struct ShardPoint {
  size_t shards = 0;
  uint64_t executions = 0;
  double makespan_s = 0;
  double best_score = 0;
  size_t candidates = 0;
  size_t busiest_shard = 0;  ///< Largest per-shard candidate assignment.
  /// 2PC commits during the MERGE itself (scenario-build commits excluded):
  /// the winner's PutMany batch plus the merge-commit metadata write.
  uint64_t merge_two_phase_commits = 0;
  /// Peak round trips one transaction phase had in flight at once — the
  /// accounting witness that the 2PC fan-out overlaps (> 1 when sharded).
  uint64_t max_inflight_round_trips = 0;
  double wall_ms = 0;  ///< Real steady-clock time of the merge call.
};

/// One full metric-driven merge of the widened fig11 scenario on a fresh
/// deployment whose storage is ACTUALLY sharded `shards` ways — behind
/// loopback remote proxies, or (socket mode) behind per-shard
/// mlcask_server OS processes dialed over unix: endpoints.
ShardPoint RunRealMerge(size_t shards, bool socket_mode) {
  storage::LocalServerCluster servers;
  sim::DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  if (socket_mode) {
    storage::LocalServerCluster::Options server_options;
    server_options.server_binary = MLCASK_SERVER_BIN;
    bench::CheckOk(servers.Start(shards, server_options),
                   "LocalServerCluster::Start");
    config.storage_endpoints = servers.endpoints();
  }
  auto d = bench::CheckedValue(
      sim::MakeDeployment("readmission", kScale, config), "MakeDeployment");
  bench::CheckOk(sim::BuildDistributedMergeScenario(
                     d.get(), /*extra_extractor_versions=*/2,
                     /*extra_model_versions=*/4)
                     .status(),
                 "BuildDistributedMergeScenario");
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.shards = shards;
  auto* sharded =
      dynamic_cast<storage::ShardedStorageEngine*>(d->engine.get());
  const uint64_t commits_before =
      sharded != nullptr ? sharded->two_phase_stats().commits : 0;
  const auto wall_start = std::chrono::steady_clock::now();
  auto report =
      bench::CheckedValue(op.Merge("master", "dev", options), "Merge");
  const auto wall_end = std::chrono::steady_clock::now();

  ShardPoint point;
  point.shards = shards;
  point.wall_ms = std::chrono::duration<double, std::milli>(wall_end -
                                                            wall_start)
                      .count();
  point.executions = report.component_executions;
  point.makespan_s = report.makespan_s;
  point.best_score = report.best_score;
  point.candidates = report.candidates_considered;
  for (size_t n : report.shard_candidates) {
    point.busiest_shard = std::max(point.busiest_shard, n);
  }
  if (sharded != nullptr) {
    auto tp = sharded->two_phase_stats();
    point.merge_two_phase_commits = tp.commits - commits_before;
    point.max_inflight_round_trips = tp.max_inflight_round_trips;
  }
  return point;
}

bool RealEngineScaling(const bench::BenchArgs& args, bool socket_mode,
                       bench::JsonReporter* reporter) {
  bench::Section(socket_mode
                     ? "Fig. 11 (real engine, SOCKET) — merge drain scaling "
                       "over per-shard mlcask_server processes"
                     : "Fig. 11 (real engine) — sharded merge drain scaling");
  const std::vector<size_t> shard_counts =
      args.short_mode ? std::vector<size_t>{1, 4}
                      : std::vector<size_t>{1, 2, 4, 8};
  // Socket history must not mix with loopback history in bench_compare:
  // the wall-clock profile differs even though results are bit-identical.
  const std::string section =
      socket_mode ? "real_engine_socket" : "real_engine";

  std::vector<ShardPoint> points;
  for (size_t shards : shard_counts) {
    points.push_back(RunRealMerge(shards, socket_mode));
  }
  const ShardPoint& single = points.front();

  std::printf("fig11 merge scenario: %zu candidates, scale=%.2f\n",
              single.candidates, kScale);
  std::printf("%8s%8s%10s%14s%10s%10s%12s%8s%10s%10s\n", "shards", "busiest",
              "execs", "makespan(s)", "measured", "analytic", "best",
              "2pc", "inflight", "wall(ms)");
  bool ok = true;
  double speedup_at_4 = 0;
  for (const ShardPoint& p : points) {
    const double measured = single.makespan_s / p.makespan_s;
    const double analytic = sim::DistributedSpeedup(p.shards, 0.06);
    std::printf("%8zu%8zu%10llu%14.2f%9.2fx%9.2fx%12.4f%8llu%10llu%10.1f\n",
                p.shards, p.busiest_shard,
                static_cast<unsigned long long>(p.executions), p.makespan_s,
                measured, analytic, p.best_score,
                static_cast<unsigned long long>(p.merge_two_phase_commits),
                static_cast<unsigned long long>(p.max_inflight_round_trips),
                p.wall_ms);
    if (p.shards > 1 && p.max_inflight_round_trips < 2) {
      // The async fan-out must be visible in the round-trip ledger: a
      // sharded merge commits replicated metadata + the winner batch, so
      // some transaction overlapped >= 2 round trips. A regression to the
      // serial issue-one-wait-one loop pins the peak at 1.
      std::printf("FAIL: max inflight round trips at %zu shards is %llu "
                  "(expected >= 2: overlapped 2pc fan-out)\n",
                  p.shards,
                  static_cast<unsigned long long>(
                      p.max_inflight_round_trips));
      ok = false;
    }
    if (p.executions != single.executions) {
      std::printf("FAIL: executions at %zu shards (%llu) differ from "
                  "single-node (%llu)\n",
                  p.shards, static_cast<unsigned long long>(p.executions),
                  static_cast<unsigned long long>(single.executions));
      ok = false;
    }
    if (p.best_score != single.best_score) {
      std::printf("FAIL: best score at %zu shards differs from single-node\n",
                  p.shards);
      ok = false;
    }
    if (p.shards > 1 && p.merge_two_phase_commits < 2) {
      // The merge itself must transact at least twice: the winner's
      // atomic PutMany batch and the replicated merge-commit write. A
      // regression to uncoordinated per-key winner puts trips this.
      std::printf("FAIL: merge ran %llu 2pc commit(s), expected >= 2 "
                  "(winner batch + merge commit)\n",
                  static_cast<unsigned long long>(p.merge_two_phase_commits));
      ok = false;
    }
    if (p.shards == 4) speedup_at_4 = measured;
    reporter->Metric(section, "makespan_s_shards" + std::to_string(p.shards),
                     p.makespan_s);
    reporter->Metric(section, "speedup_shards" + std::to_string(p.shards),
                     measured);
    // Recorded, not gated (no makespan/speedup tag): the real merge wall
    // time, where socket round trips actually cost something.
    reporter->Metric(section,
                     "real_wall_ms_shards" + std::to_string(p.shards),
                     p.wall_ms);
    reporter->Metric(section,
                     "max_inflight_round_trips_shards" +
                         std::to_string(p.shards),
                     static_cast<double>(p.max_inflight_round_trips));
  }
  std::printf("virtual makespan speedup at 4 shards: %.2fx (target >= 2x): "
              "%s\n",
              speedup_at_4, speedup_at_4 >= 2.0 ? "PASS" : "FAIL");
  ok = ok && speedup_at_4 >= 2.0;

  reporter->Metric(section, "candidates",
                   static_cast<double>(single.candidates));
  reporter->Metric(section, "executions",
                   static_cast<double>(single.executions));
  reporter->Metric(section, "best_score", single.best_score);
  reporter->Metric(section, "speedup_at_4_shards", speedup_at_4);
  return ok;
}

/// Streamed-prefix-handoff A/B on the distributed-merge scenario: the same
/// 4-virtual-worker drain charged with legacy full waits vs pipelined chunk
/// streaming. Runs on the preprocessing-heavy dpm workload — its
/// schema-bumped hmm_processing stage costs ~3x the model, so cross-branch
/// candidates genuinely wait on in-flight prefixes — with an INLINE core
/// (1 real thread), which keeps virtual claim order deterministic: the A/B
/// is exact, not within jitter. PASS requires identical executions/winner
/// and streamed makespan <= legacy.
bool StreamedHandoffAB(bench::JsonReporter* reporter) {
  bench::Section("Fig. 11 (virtual-time model) — streamed prefix handoff");
  double makespans[2] = {0, 0};
  uint64_t execs[2] = {0, 0};
  double best[2] = {0, 0};
  for (int streamed = 0; streamed < 2; ++streamed) {
    auto d = bench::CheckedValue(
        sim::MakeDeployment("dpm", kScale, /*folder_storage=*/false,
                            /*num_workers=*/1),
        "MakeDeployment");
    bench::CheckOk(sim::BuildDistributedMergeScenario(
                       d.get(), /*extra_extractor_versions=*/2,
                       /*extra_model_versions=*/2)
                       .status(),
                   "BuildDistributedMergeScenario");
    merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                             d->registry.get(), d->engine.get(),
                             d->clock.get());
    merge::MergeOptions options;
    options.num_workers = 4;
    options.core = d->core.get();
    options.streamed_handoff = streamed == 1;
    auto report =
        bench::CheckedValue(op.Merge("master", "dev", options), "Merge");
    makespans[streamed] = report.makespan_s;
    execs[streamed] = report.component_executions;
    best[streamed] = report.best_score;
  }
  const double tightening = 100.0 * (1.0 - makespans[1] / makespans[0]);
  std::printf("dpm distributed-merge scenario, 4 virtual workers:\n");
  std::printf("  legacy full-wait makespan:   %8.2f s\n", makespans[0]);
  std::printf("  streamed handoff makespan:   %8.2f s  (%.1f%% tighter)\n",
              makespans[1], tightening);
  bool ok = true;
  if (execs[0] != execs[1] || best[0] != best[1]) {
    std::printf("FAIL: streamed charging changed executions or winner\n");
    ok = false;
  }
  if (makespans[1] > makespans[0]) {
    std::printf("FAIL: streamed handoff INFLATED the makespan\n");
    ok = false;
  }
  reporter->Metric("streamed_handoff", "ab_legacy_makespan_s", makespans[0]);
  reporter->Metric("streamed_handoff", "ab_streamed_makespan_s",
                   makespans[1]);
  reporter->Metric("streamed_handoff", "tightening_pct", tightening);
  return ok;
}

}  // namespace
}  // namespace mlcask

int main(int argc, char** argv) {
  using namespace mlcask;
  bench::BenchArgs args =
      bench::ParseBenchArgs(argc, argv, {{"--socket", 0}});
  const bool socket_mode = args.ints.at("--socket") != 0;
  bench::Banner("Fig. 11", "distributed training: simulation + real engine");
  bench::JsonReporter reporter("fig11_distributed");
  LossVsTime(&reporter);
  SpeedupSurface();
  bool ok = RealEngineScaling(args, socket_mode, &reporter);
  ok = StreamedHandoffAB(&reporter) && ok;
  reporter.Metric("summary", "pass", ok);
  reporter.Metric("summary", "socket_mode", socket_mode);
  reporter.Write(args.json_path);
  return ok ? 0 : 1;
}
