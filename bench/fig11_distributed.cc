// Reproduces Fig. 11: (a) training loss vs simulated wall-clock time for
// synchronous data-parallel training on 1/2/4/8 GPUs — a real MLP stands in
// for ResNet18; (b) the pipeline-time speedup law 1/((1-p)+p/k). Expected
// shape: more GPUs drive the loss down faster; both larger k and larger p
// increase pipeline speedup, crossing 4x when p > 0.9 and k = 8.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/distributed.h"

namespace mlcask {
namespace {

void LossVsTime() {
  bench::Section("Fig. 11a — training loss vs time (simulated s)");
  // A real training job: 2-D blobs, 800 examples, 24 epochs.
  Pcg32 rng(11);
  ml::Matrix x(800, 4);
  std::vector<double> y(800);
  for (size_t i = 0; i < 800; ++i) {
    bool pos = rng.Bernoulli(0.5);
    for (size_t j = 0; j < 4; ++j) {
      x.At(i, j) = (pos ? 0.8 : -0.8) + rng.NextGaussian();
    }
    y[i] = pos ? 1.0 : 0.0;
  }
  ml::MlpConfig cfg;
  cfg.hidden_units = 16;
  cfg.sgd.epochs = 24;

  std::printf("%-8s", "time(s)");
  const size_t gpu_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<sim::LossCurvePoint>> curves;
  for (size_t gpus : gpu_counts) {
    sim::DistributedConfig dc;
    dc.gpus = gpus;
    dc.base_epoch_seconds = 30.0;
    curves.push_back(bench::CheckedValue(
        sim::SimulateDistributedTraining(x, y, cfg, dc),
        "SimulateDistributedTraining"));
    std::printf("%12s", ("loss@" + std::to_string(gpus) + "gpu").c_str());
  }
  std::printf("\n");
  // Sample the curves on a common time grid.
  for (double t = 60.0; t <= 720.0; t += 60.0) {
    std::printf("%-8.0f", t);
    for (const auto& curve : curves) {
      double loss = curve.front().loss;
      for (const auto& p : curve) {
        if (p.time_s <= t) loss = p.loss;
      }
      std::printf("%12.4f", loss);
    }
    std::printf("\n");
  }
  for (size_t i = 0; i < std::size(gpu_counts); ++i) {
    std::printf("throughput speedup @%zu GPUs: %.2fx\n", gpu_counts[i],
                sim::DistributedSpeedup(gpu_counts[i], 0.06));
  }
}

void SpeedupSurface() {
  bench::Section("Fig. 11b — pipeline time speedup 1/((1-p)+p/k)");
  std::printf("%-8s", "p \\ k");
  const double ks[] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (double k : ks) std::printf("%8.0f", k);
  std::printf("\n");
  for (double p = 0.1; p <= 0.95; p += 0.1) {
    double pp = p > 0.9 ? 0.95 : p;  // include the paper's p>0.9 regime
    std::printf("%-8.2f", pp);
    for (double k : ks) {
      std::printf("%8.2f", sim::PipelineTimeSpeedup(pp, k));
    }
    std::printf("\n");
    if (pp >= 0.95) break;
  }
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 11", "distributed training");
  LossVsTime();
  SpeedupSurface();
  return 0;
}
