// overload_suite — the graceful-degradation acceptance gate: adversarial
// workloads (sim/adversarial.h) drive real socket clusters OPEN LOOP at
// 1×/2×/4× of measured capacity under PR 7 fault schedules, with a per-call
// deadline stamped on every request. The invariant scored here is the
// overload contract of the admission/deadline/retry-budget stack:
//
//   every request ends in success or a TYPED ResourceExhausted /
//   DeadlineExceeded (or other typed status) within deadline+ε — never a
//   hang, never an unbounded wait — while server queue depth stays at or
//   under its admission cap and process RSS stays bounded; goodput at 4×
//   offered load retains ≥70% of 1× goodput (degradation, not collapse).
//
// ε is derived from accounting, not guessed: a call's absolute wall bound
// is max_call_replays redial episodes × redial_budget_ms each, and a 2PC
// write runs three sequential phases, so with the client tuned to
// 4 replays × 500ms budget the bound is 3 × 4 × 500ms = 6s; ε = 8s adds
// the deadline itself plus scheduling slop. Anything past that is a hang.
//
// A merges-racing-commits pass then runs the full two-branch merge while
// racer threads land replicated 2PC commits through the same cluster: the
// merge must end typed, a successful merge must be BIT-IDENTICAL to the
// fault-free reference fingerprint, and every acknowledged racer commit
// must read back — never a lost key.
//
// Flags: --short (fewer seeds, shorter levels), --json <path>.
// Gated metrics (tools/bench_compare.py): hangs / wrong_winners /
// deadline_overruns / race_lost_keys are EXACT zero-tolerance;
// shed_typed_* and the goodput numbers are counted for the trajectory.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "merge/merge_op.h"
#include "sim/adversarial.h"
#include "sim/scenario.h"
#include "storage/deadline.h"
#include "storage/fault_injector.h"
#include "storage/forkbase_engine.h"
#include "storage/remote_engine.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"
#include "storage/socket_transport.h"

namespace mlcask {
namespace {

// Per-request budget stamped by the open-loop driver.
constexpr uint64_t kDeadlineMs = 500;
// Derived overrun bound — see the file banner for the accounting.
constexpr uint64_t kEpsilonMs = 8000;
// Server-wide admission cap for the saturation clusters: small enough that
// 4× offered load must shed, large enough that 1× rarely does.
constexpr size_t kQueueCap = 256;

/// In-process socket servers: same wire, same epoll loop, same admission
/// control as mlcask_server processes, but with queue/shed counters
/// readable directly instead of scraped from log lines.
struct InProcessCluster {
  std::vector<std::unique_ptr<storage::StorageEngineService>> services;
  std::vector<std::unique_ptr<storage::SocketTransportServer>> servers;
  std::vector<std::string> endpoints;

  void Start(size_t shards, const std::string& tag,
             const std::string& server_fault_spec) {
    for (size_t s = 0; s < shards; ++s) {
      std::unique_ptr<storage::StorageEngine> engine =
          std::make_unique<storage::ForkBaseEngine>();
      storage::SocketTransportServer::Options options;
      options.max_queued_jobs = kQueueCap;
      if (!server_fault_spec.empty()) {
        auto spec = storage::FaultSpec::Parse(server_fault_spec);
        bench::CheckOk(spec.status(), "server fault spec");
        auto injector = std::make_shared<storage::FaultInjector>(*spec);
        engine = std::make_unique<storage::FaultyEngine>(std::move(engine),
                                                         injector);
        options.injector = injector;
      }
      services.push_back(
          std::make_unique<storage::StorageEngineService>(std::move(engine)));
      const std::string spec = "unix:/tmp/mlcask-overload-" +
                               std::to_string(::getpid()) + "-" + tag + "-" +
                               std::to_string(s) + ".sock";
      auto server = bench::CheckedValue(
          storage::SocketTransportServer::Bind(spec, options), "bind");
      storage::StorageEngineService* service = services.back().get();
      bench::CheckOk(
          server->Serve([service](std::string_view request) {
            return service->Handle(request);
          }),
          "serve");
      endpoints.push_back(server->endpoint());
      servers.push_back(std::move(server));
    }
  }

  uint64_t peak_queued_jobs() const {
    uint64_t peak = 0;
    for (const auto& s : servers) peak = std::max(peak, s->peak_queued_jobs());
    return peak;
  }
  uint64_t peak_queued_bytes() const {
    uint64_t peak = 0;
    for (const auto& s : servers) {
      peak = std::max(peak, s->peak_queued_bytes());
    }
    return peak;
  }
  uint64_t shed_jobs() const {
    uint64_t total = 0;
    for (const auto& s : servers) total += s->shed_jobs();
    return total;
  }
  uint64_t expired_jobs() const {
    uint64_t total = 0;
    for (const auto& s : servers) total += s->expired_jobs();
    return total;
  }
};

/// Client options tuned so the per-call wall bound above actually holds.
storage::SocketTransport::Options ClientOptions(uint64_t seed,
                                                const std::string& fault_spec) {
  storage::SocketTransport::Options options;
  options.call_timeout_ms = kDeadlineMs * 4;
  options.redial_budget_ms = 500;
  options.max_call_replays = 4;
  options.redial_jitter_seed = seed + 1000;
  if (!fault_spec.empty()) {
    auto spec = storage::FaultSpec::Parse(fault_spec);
    bench::CheckOk(spec.status(), "client fault spec");
    options.injector = std::make_shared<storage::FaultInjector>(*spec);
  }
  return options;
}

struct LevelResult {
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t shed_typed = 0;      ///< ResourceExhausted outcomes.
  uint64_t deadline_typed = 0;  ///< DeadlineExceeded outcomes.
  uint64_t other_failures = 0;  ///< Other typed statuses (all still typed).
  uint64_t overruns = 0;        ///< Wall latency past deadline+ε.
  double goodput_rps = 0;       ///< Successes per wall second.
};

/// The open-loop driver: requests are released on a FIXED schedule derived
/// from the offered rate — a slow cluster makes the drivers fall behind and
/// requests shed or expire, it never makes the generator pause (that
/// closed-loop mercy is exactly what hides overload collapse).
LevelResult RunLevel(storage::StorageEngine* engine,
                     const std::vector<sim::AdversarialRequest>& stream,
                     double offered_rps) {
  LevelResult result;
  result.offered = stream.size();
  const auto interval = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / (offered_rps > 1 ? offered_rps : 1)));
  const size_t workers =
      std::max<size_t>(8, static_cast<size_t>(offered_rps * kDeadlineMs /
                                              1000.0 / 250.0));
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> ok{0}, shed{0}, deadline{0}, other{0}, overruns{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        std::this_thread::sleep_until(start + interval * i);
        const auto begin = std::chrono::steady_clock::now();
        Status status;
        {
          storage::DeadlineBudget budget(kDeadlineMs);
          storage::DeadlineScope scope(&budget);
          status = sim::ApplyAdversarialRequest(engine, stream[i]);
        }
        const uint64_t wall_ms =
            static_cast<uint64_t>(std::chrono::duration_cast<
                                      std::chrono::milliseconds>(
                                      std::chrono::steady_clock::now() - begin)
                                      .count());
        if (wall_ms > kDeadlineMs + kEpsilonMs) overruns.fetch_add(1);
        if (status.ok()) {
          ok.fetch_add(1);
        } else if (status.IsResourceExhausted()) {
          shed.fetch_add(1);
        } else if (status.IsDeadlineExceeded()) {
          deadline.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.ok = ok.load();
  result.shed_typed = shed.load();
  result.deadline_typed = deadline.load();
  result.other_failures = other.load();
  result.overruns = overruns.load();
  result.goodput_rps = elapsed_s > 0 ? result.ok / elapsed_s : 0;
  return result;
}

/// VmHWM from /proc/self/status, in MiB (0 when unreadable) — the whole
/// bench is one process, servers included, so this IS the server RSS bound.
double PeakRssMb() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmHWM:") {
      double kb = 0;
      in >> kb;
      return kb / 1024.0;
    }
    std::string rest;
    std::getline(in, rest);
  }
  return 0;
}

struct MergeFingerprint {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  std::vector<std::string> winner_chain;

  bool operator==(const MergeFingerprint& other) const {
    return executions == other.executions && best_score == other.best_score &&
           best_index == other.best_index &&
           winner_chain == other.winner_chain;
  }
};

StatusOr<MergeFingerprint> FingerprintOf(const merge::MergeReport& report) {
  MergeFingerprint fp;
  fp.executions = report.component_executions;
  fp.best_score = report.best_score;
  fp.best_index = report.best_index;
  if (report.best_index < 0 ||
      static_cast<size_t>(report.best_index) >= report.outcomes.size()) {
    return Status::Internal("merge report has no winner");
  }
  for (const pipeline::ComponentVersionSpec* spec :
       report.outcomes[static_cast<size_t>(report.best_index)].chain) {
    fp.winner_chain.push_back(spec->Key());
  }
  return fp;
}

}  // namespace
}  // namespace mlcask

int main(int argc, char** argv) {
  using namespace mlcask;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("overload_suite",
                "open-loop saturation: adversarial load at 1x/2x/4x capacity");
  bench::JsonReporter reporter("overload_suite");

  const std::vector<uint64_t> seeds = args.short_mode
                                          ? std::vector<uint64_t>{7}
                                          : std::vector<uint64_t>{7, 23};
  const size_t kShards = 4;
  const double level_seconds = args.short_mode ? 2.0 : 5.0;
  const std::vector<double> multipliers = {1.0, 2.0, 4.0};

  sim::AdversarialOptions adversarial;  // deep 1000-version chain + tenants

  // --- saturation sweep ---------------------------------------------------
  bench::Section("open-loop saturation");
  const uint64_t seed = seeds.front();
  InProcessCluster cluster;
  cluster.Start(kShards, "sat",
                "seed=" + std::to_string(seed) + ",delay_ms=2:0.05");
  auto engine = bench::CheckedValue(
      storage::ConnectCluster(
          cluster.endpoints, storage::ShardedStorageEngine::Options(),
          ClientOptions(seed, "seed=" + std::to_string(seed + 1) +
                                  ",drop=0.01,dropafter=0.01")),
      "connect saturation cluster");

  sim::AdversarialSeedReport seeded =
      sim::SeedAdversarialState(engine.get(), adversarial);
  std::printf("seeded adversarial state: %llu acked, %llu typed failures\n",
              static_cast<unsigned long long>(seeded.acked_writes),
              static_cast<unsigned long long>(seeded.typed_failures));

  // Capacity yardstick: closed-loop single-threaded over the same request
  // mix. Only the RATIO between levels matters, so measuring through the
  // live injectors is fine — every level shares the distortion.
  const std::vector<sim::AdversarialRequest> probe =
      sim::MakeAdversarialStream(adversarial, 256);
  const auto probe_start = std::chrono::steady_clock::now();
  for (const sim::AdversarialRequest& request : probe) {
    (void)sim::ApplyAdversarialRequest(engine.get(), request);
  }
  const double probe_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - probe_start)
                             .count();
  double capacity_rps = probe_s > 0 ? probe.size() / probe_s : 100.0;
  if (capacity_rps < 50) capacity_rps = 50;  // degenerate-box floor
  std::printf("measured capacity: %.0f req/s\n", capacity_rps);
  reporter.Metric("saturation", "capacity_rps", capacity_rps);

  uint64_t deadline_overruns = 0;
  uint64_t shed_typed_total = 0;
  std::map<int, LevelResult> levels;
  for (double mult : multipliers) {
    sim::AdversarialOptions stream_options = adversarial;
    stream_options.seed = seed + static_cast<uint64_t>(mult);
    const size_t offered = std::min<size_t>(
        20000,
        static_cast<size_t>(capacity_rps * mult * level_seconds));
    const std::vector<sim::AdversarialRequest> stream =
        sim::MakeAdversarialStream(stream_options, offered);
    LevelResult level = RunLevel(engine.get(), stream, capacity_rps * mult);
    const int key = static_cast<int>(mult);
    levels[key] = level;
    deadline_overruns += level.overruns;
    shed_typed_total += level.shed_typed;
    std::printf(
        "%dx: offered %llu | ok %llu shed %llu deadline %llu other %llu | "
        "goodput %.0f req/s | overruns %llu\n",
        key, static_cast<unsigned long long>(level.offered),
        static_cast<unsigned long long>(level.ok),
        static_cast<unsigned long long>(level.shed_typed),
        static_cast<unsigned long long>(level.deadline_typed),
        static_cast<unsigned long long>(level.other_failures),
        level.goodput_rps, static_cast<unsigned long long>(level.overruns));
    const std::string tag = std::to_string(key) + "x";
    reporter.Metric("saturation", "offered_" + tag,
                    static_cast<double>(level.offered));
    reporter.Metric("saturation", "goodput_" + tag, level.goodput_rps);
    reporter.Metric("saturation", "shed_typed_" + tag,
                    static_cast<double>(level.shed_typed));
    reporter.Metric("saturation", "deadline_typed_" + tag,
                    static_cast<double>(level.deadline_typed));
    reporter.Metric("saturation", "other_failures_" + tag,
                    static_cast<double>(level.other_failures));
  }

  const double goodput_1x = levels[1].goodput_rps;
  const double goodput_4x = levels[4].goodput_rps;
  const double retention = goodput_1x > 0 ? goodput_4x / goodput_1x : 0;
  const uint64_t peak_jobs = cluster.peak_queued_jobs();
  const uint64_t peak_bytes = cluster.peak_queued_bytes();
  const double rss_mb = PeakRssMb();
  std::printf(
      "goodput retention 4x/1x: %.2f | peak queue %llu jobs / %llu bytes "
      "(cap %zu) | server sheds %llu, expired %llu | peak RSS %.0f MiB\n",
      retention, static_cast<unsigned long long>(peak_jobs),
      static_cast<unsigned long long>(peak_bytes), kQueueCap,
      static_cast<unsigned long long>(cluster.shed_jobs()),
      static_cast<unsigned long long>(cluster.expired_jobs()), rss_mb);
  reporter.Metric("saturation", "goodput_retention_4x", retention);
  reporter.Metric("saturation", "deadline_overruns",
                  static_cast<double>(deadline_overruns));
  reporter.Metric("saturation", "shed_typed",
                  static_cast<double>(shed_typed_total));
  reporter.Metric("saturation", "server_shed_jobs",
                  static_cast<double>(cluster.shed_jobs()));
  reporter.Metric("saturation", "server_expired_jobs",
                  static_cast<double>(cluster.expired_jobs()));
  reporter.Metric("saturation", "peak_queued_jobs",
                  static_cast<double>(peak_jobs));
  reporter.Metric("saturation", "peak_queued_bytes",
                  static_cast<double>(peak_bytes));
  reporter.Metric("saturation", "rss_peak_mb", rss_mb);

  // --- merges racing concurrent commits -----------------------------------
  bench::Section("merge racing concurrent commits");
  MergeFingerprint reference;
  {
    sim::DeploymentConfig config;
    config.num_workers = 1;
    auto d = bench::CheckedValue(
        sim::MakeDeployment("readmission", 0.06, config), "reference deploy");
    bench::CheckOk(sim::BuildTwoBranchScenario(d.get()).status(),
                   "reference scenario");
    merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                             d->registry.get(), d->engine.get(),
                             d->clock.get());
    auto report = bench::CheckedValue(op.Merge("master", "dev", {}),
                                      "reference merge");
    reference =
        bench::CheckedValue(FingerprintOf(report), "reference fingerprint");
  }

  uint64_t wrong_winners = 0;
  uint64_t race_merges_ok = 0;
  uint64_t race_typed_errors = 0;
  uint64_t race_lost_keys = 0;
  uint64_t racer_acked = 0;
  for (uint64_t s : seeds) {
    InProcessCluster race_servers;
    race_servers.Start(kShards, "race" + std::to_string(s),
                       "seed=" + std::to_string(s) + ",delay_ms=2:0.05");
    sim::DeploymentConfig config;
    config.num_workers = 1;
    config.storage_endpoints = race_servers.endpoints;
    config.client_fault_spec =
        "seed=" + std::to_string(s + 1) + ",drop=0.01,dropafter=0.01";
    auto deployed = sim::MakeDeployment("readmission", 0.06, config);
    if (!deployed.ok()) {
      ++race_typed_errors;
      std::printf("seed %llu: typed deploy failure: %s\n",
                  static_cast<unsigned long long>(s),
                  deployed.status().ToString().c_str());
      continue;
    }
    auto d = *std::move(deployed);
    Status scenario = sim::BuildTwoBranchScenario(d.get()).status();
    if (!scenario.ok()) {
      ++race_typed_errors;
      std::printf("seed %llu: typed scenario failure: %s\n",
                  static_cast<unsigned long long>(s),
                  scenario.ToString().c_str());
      continue;
    }
    merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                             d->registry.get(), d->engine.get(),
                             d->clock.get());
    merge::MergeOptions options;
    options.shards = kShards;
    StatusOr<MergeFingerprint> fingerprint =
        Status::Internal("merge never ran");
    sim::RaceReport race = sim::RunRacingCommits(
        d->engine.get(), /*racers=*/2, /*commits_per_racer=*/8, [&]() {
          auto report = op.Merge("master", "dev", options);
          if (!report.ok()) return report.status();
          fingerprint = FingerprintOf(*report);
          return fingerprint.status();
        });
    racer_acked += race.racer_acked;
    race_lost_keys += race.racer_lost;
    if (!race.contended_ok) {
      ++race_typed_errors;
      std::printf("seed %llu: typed merge failure under race: %s\n",
                  static_cast<unsigned long long>(s),
                  race.contended_status.c_str());
    } else if (*fingerprint == reference) {
      ++race_merges_ok;
      std::printf("seed %llu: merge fingerprint identical, %llu racer "
                  "commits acked, %llu lost\n",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(race.racer_acked),
                  static_cast<unsigned long long>(race.racer_lost));
    } else {
      ++wrong_winners;
      std::printf("seed %llu: WRONG WINNER under racing commits\n",
                  static_cast<unsigned long long>(s));
    }
  }

  // Reaching this line at all means zero hangs — the CI watchdog kills the
  // process otherwise; the metric makes the claim explicit in the report.
  const uint64_t hangs = 0;
  reporter.Metric("race", "trials", static_cast<double>(seeds.size()));
  reporter.Metric("race", "race_merges_ok",
                  static_cast<double>(race_merges_ok));
  reporter.Metric("race", "race_typed_errors",
                  static_cast<double>(race_typed_errors));
  reporter.Metric("race", "wrong_winners", static_cast<double>(wrong_winners));
  reporter.Metric("race", "racer_acked", static_cast<double>(racer_acked));
  reporter.Metric("race", "race_lost_keys",
                  static_cast<double>(race_lost_keys));
  reporter.Metric("race", "hangs", static_cast<double>(hangs));
  reporter.Write(args.json_path);

  bool fail = false;
  auto gate = [&](bool bad, const char* what) {
    if (bad) {
      std::printf("GATE FAILED: %s\n", what);
      fail = true;
    }
  };
  gate(deadline_overruns > 0, "requests exceeded deadline+epsilon");
  gate(wrong_winners > 0, "merge produced a wrong winner under racing load");
  gate(race_lost_keys > 0, "acknowledged racing commits were lost");
  gate(peak_jobs > kQueueCap, "admission queue exceeded its cap");
  gate(rss_mb > 2048, "peak RSS unbounded");
  gate(goodput_1x > 0 && retention < 0.70,
       "goodput at 4x collapsed below 70% of 1x");

  std::printf("\nOVERLOAD SUITE: %s\n", fail ? "FAIL" : "PASS");
  return fail ? 1 : 0;
}
