// REAL wall-clock scaling of the sharded merge drain. Earlier benches
// measure VIRTUAL makespans (SimClock timelines); this one measures the
// actual steady-clock time of MergeOperation::Merge's candidate-drain phase
// (MergeReport::drain_wall_ms) and compares the sequential real-time shard
// dispatch (concurrent_shard_drains=false, the pre-existing behaviour)
// against the concurrent dispatch (per-shard drains on concurrently running
// per-shard ExecutionCores — real OS threads).
//
// Per shard count the bench verifies the two dispatch modes are
// result-identical (executions, winner score, virtual makespan — one
// virtual worker per shard keeps virtual time deterministic) and reports
//   real speedup = min sequential drain wall / min concurrent drain wall.
//
// PASS requires >= 2x real speedup at 4 shards — but only on a host with
// at least --min-cores (default 4) hardware threads. On smaller machines
// real parallelism physically cannot show, so the gate SKIPS WITH A NOTICE
// (exit stays 0) instead of failing contributors on 1/2-core laptops; CI
// runs on multi-core runners where the gate is live. Flags: --short (fewer
// shard counts/repeats), --json <path> (write the
// BENCH_micro_merge_realtime.json trajectory artifact), --repeats <n>,
// --min-cores <n>.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.12;

struct DrainPoint {
  uint64_t executions = 0;
  double best_score = 0;
  double makespan_s = 0;
  double wall_ms = 0;  ///< Best (minimum) drain wall over the repeats.
};

/// One full metric-driven merge of the widened fig11 scenario on a fresh
/// sharded deployment; returns the drain's real wall time and the
/// result fingerprint. `concurrent` picks the real-time dispatch mode.
DrainPoint RunOnce(size_t shards, bool concurrent) {
  sim::DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  auto d = bench::CheckedValue(
      sim::MakeDeployment("readmission", kScale, config), "MakeDeployment");
  bench::CheckOk(sim::BuildDistributedMergeScenario(
                     d.get(), /*extra_extractor_versions=*/2,
                     /*extra_model_versions=*/4)
                     .status(),
                 "BuildDistributedMergeScenario");
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.shards = shards;
  options.concurrent_shard_drains = concurrent;
  auto report =
      bench::CheckedValue(op.Merge("master", "dev", options), "Merge");
  DrainPoint point;
  point.executions = report.component_executions;
  point.best_score = report.best_score;
  point.makespan_s = report.makespan_s;
  point.wall_ms = report.drain_wall_ms;
  return point;
}

DrainPoint RunBest(size_t shards, bool concurrent, int repeats) {
  DrainPoint best = RunOnce(shards, concurrent);
  for (int r = 1; r < repeats; ++r) {
    DrainPoint next = RunOnce(shards, concurrent);
    // The fingerprint must be run-invariant; keep the fastest wall.
    if (next.executions != best.executions ||
        next.best_score != best.best_score ||
        next.makespan_s != best.makespan_s) {
      std::fprintf(stderr,
                   "[bench] nondeterministic merge fingerprint at %zu "
                   "shards (%s dispatch)\n",
                   shards, concurrent ? "concurrent" : "sequential");
      std::exit(1);
    }
    best.wall_ms = std::min(best.wall_ms, next.wall_ms);
  }
  return best;
}

}  // namespace
}  // namespace mlcask

int main(int argc, char** argv) {
  using namespace mlcask;
  bench::BenchArgs args = bench::ParseBenchArgs(
      argc, argv, {{"--repeats", 3}, {"--min-cores", 4}});
  // Repeats are NOT reduced in short mode: the gate compares best-of-N
  // wall times, and on shared CI runners one clean run out of three is
  // what keeps a noisy-neighbor hiccup from failing the build. Each drain
  // is ~100ms, so the extra repeats cost almost nothing.
  const int repeats = std::max(1, static_cast<int>(args.ints["--repeats"]));
  const size_t min_cores = static_cast<size_t>(args.ints["--min-cores"]);
  const size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());

  bench::Banner("micro_merge_realtime",
                "REAL (steady-clock) sharded merge drain scaling");
  std::printf("fig11 merge scenario, scale=%.2f, host cores=%zu, "
              "repeats=%d%s\n",
              kScale, cores, repeats, args.short_mode ? " (short mode)" : "");
  bench::JsonReporter reporter("micro_merge_realtime");
  reporter.Metric("realtime", "host_cores", static_cast<double>(cores));
  reporter.Metric("realtime", "repeats", static_cast<double>(repeats));

  const std::vector<size_t> shard_counts =
      args.short_mode ? std::vector<size_t>{4}
                      : std::vector<size_t>{2, 4, 8};

  bool ok = true;
  double real_speedup_at_4 = 0;
  std::printf("%8s%16s%16s%12s%14s%10s\n", "shards", "seq wall(ms)",
              "conc wall(ms)", "real", "makespan(s)", "execs");
  for (size_t shards : shard_counts) {
    DrainPoint seq = RunBest(shards, /*concurrent=*/false, repeats);
    DrainPoint conc = RunBest(shards, /*concurrent=*/true, repeats);
    if (conc.executions != seq.executions ||
        conc.best_score != seq.best_score ||
        conc.makespan_s != seq.makespan_s) {
      std::printf("FAIL: concurrent dispatch changed the merge result at "
                  "%zu shards\n",
                  shards);
      ok = false;
    }
    const double speedup = conc.wall_ms > 0 ? seq.wall_ms / conc.wall_ms : 0;
    if (shards == 4) real_speedup_at_4 = speedup;
    std::printf("%8zu%16.1f%16.1f%11.2fx%14.2f%10llu\n", shards, seq.wall_ms,
                conc.wall_ms, speedup, conc.makespan_s,
                static_cast<unsigned long long>(conc.executions));
    const std::string suffix = "_s" + std::to_string(shards);
    reporter.Metric("realtime", "drain_wall_ms_seq" + suffix, seq.wall_ms);
    reporter.Metric("realtime", "drain_wall_ms_conc" + suffix, conc.wall_ms);
    reporter.Metric("realtime", "real_speedup" + suffix, speedup);
    reporter.Metric("realtime", "virtual_makespan_s" + suffix,
                    conc.makespan_s);
    reporter.Metric("realtime", "executions" + suffix,
                    static_cast<double>(conc.executions));
  }

  // The gate: >= 2x real drain speedup at 4 shards — live only on hosts
  // with enough hardware threads for real parallelism to exist.
  std::string gate = "skipped-shard-counts";
  if (std::find(shard_counts.begin(), shard_counts.end(), size_t{4}) !=
      shard_counts.end()) {
    if (cores < min_cores) {
      gate = "skipped-cores";
      std::printf(
          "NOTICE: host has %zu hardware thread(s) (< %zu): the >= 2x "
          "real-speedup gate is SKIPPED — real shard parallelism cannot "
          "show here. Numbers above are still reported; CI gates on a "
          "multi-core runner.\n",
          cores, min_cores);
    } else {
      const bool pass = real_speedup_at_4 >= 2.0;
      gate = pass ? "pass" : "fail";
      std::printf("real drain speedup at 4 shards: %.2fx (target >= 2x): "
                  "%s\n",
                  real_speedup_at_4, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    }
  }
  reporter.Metric("realtime", "gate", gate);
  reporter.Metric("summary", "pass", ok);
  reporter.Write(args.json_path);
  return ok ? 0 : 1;
}
