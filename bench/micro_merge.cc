// Micro benchmarks for the merge machinery: search-tree construction
// (Algorithm 1) and compatibility pruning scaling with versions per
// component, plus the candidate-enumeration walk of Algorithm 2.

#include <benchmark/benchmark.h>

#include "merge/compat_lut.h"
#include "merge/search_space.h"
#include "merge/search_tree.h"

namespace mlcask::merge {
namespace {

/// Builds a synthetic search space: `levels` components, `versions` versions
/// each; every second version of each component bumps the schema so half the
/// edges are incompatible (mimicking Fig. 4's split).
SearchSpace MakeSpace(size_t levels, size_t versions) {
  SearchSpace space;
  for (size_t l = 0; l < levels; ++l) {
    ComponentSearchSpace c;
    c.component = "comp" + std::to_string(l);
    for (size_t v = 0; v < versions; ++v) {
      pipeline::ComponentVersionSpec s;
      s.name = c.component;
      s.version.increment = static_cast<uint32_t>(v);
      s.kind = l == 0 ? pipeline::ComponentKind::kDataset
                      : pipeline::ComponentKind::kPreprocessor;
      s.impl = "impl";
      // Half the versions speak schema A, half schema B.
      uint64_t in_schema = l == 0 ? 0 : 100 * l + (v % 2);
      uint64_t out_schema = 100 * (l + 1) + (v % 2);
      s.input_schema = in_schema;
      s.output_schema = out_schema;
      c.versions.push_back(std::move(s));
    }
    space.components.push_back(std::move(c));
  }
  return space;
}

void BM_TreeBuild(benchmark::State& state) {
  SearchSpace space = MakeSpace(static_cast<size_t>(state.range(0)),
                                static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    PipelineSearchTree tree = PipelineSearchTree::Build(space);
    benchmark::DoNotOptimize(tree.NumNodes());
  }
  state.counters["candidates"] =
      static_cast<double>(space.NumCandidates());
}
BENCHMARK(BM_TreeBuild)->Args({4, 3})->Args({4, 5})->Args({5, 5})->Args({6, 4});

void BM_TreePrune(benchmark::State& state) {
  SearchSpace space = MakeSpace(static_cast<size_t>(state.range(0)),
                                static_cast<size_t>(state.range(1)));
  CompatLut lut = CompatLut::Build(space);
  size_t leaves_after = 0;
  for (auto _ : state) {
    PipelineSearchTree tree = PipelineSearchTree::Build(space);
    benchmark::DoNotOptimize(tree.PruneIncompatible(lut));
    leaves_after = tree.NumLeaves();
  }
  state.counters["leaves_before"] =
      static_cast<double>(space.NumCandidates());
  state.counters["leaves_after"] = static_cast<double>(leaves_after);
}
BENCHMARK(BM_TreePrune)->Args({4, 3})->Args({4, 5})->Args({5, 5})->Args({6, 4});

void BM_CandidateEnumeration(benchmark::State& state) {
  SearchSpace space = MakeSpace(static_cast<size_t>(state.range(0)),
                                static_cast<size_t>(state.range(1)));
  CompatLut lut = CompatLut::Build(space);
  PipelineSearchTree tree = PipelineSearchTree::Build(space);
  tree.PruneIncompatible(lut);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Candidates());
  }
}
BENCHMARK(BM_CandidateEnumeration)->Args({5, 5})->Args({6, 4});

void BM_CompatLutBuild(benchmark::State& state) {
  SearchSpace space = MakeSpace(static_cast<size_t>(state.range(0)),
                                static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompatLut::Build(space));
  }
}
BENCHMARK(BM_CompatLutBuild)->Args({4, 5})->Args({6, 8});

}  // namespace
}  // namespace mlcask::merge

BENCHMARK_MAIN();
