// Parallel prioritized-search scaling on the non-linear merge workload: the
// PC-pruned, PR-seeded candidate frontier is drained by 1/2/4/8 workers.
// Reported per worker count:
//  - execs:    component executions (the paper's pruned-candidate metric).
//    Must be IDENTICAL across worker counts on a fixed seed — the artifact
//    cache's in-flight guards dedup shared prefixes across workers.
//  - wall(s):  virtual wall-clock of the trial (worker-makespan of the
//    simulated schedule; the repo-wide SimClock convention).
//  - speedup:  serial wall / parallel wall. Target: >= 2x at 4 workers.
//  - cpu(ms):  real host time per trial, for reference (the toy library
//    functions are too cheap for host-level scaling to be meaningful on a
//    small container; the virtual schedule is the metric of record).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "merge/prioritized.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.15;
constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5};
constexpr size_t kWorkerCounts[] = {1, 2, 4, 8};

struct ScalePoint {
  size_t workers = 0;
  double avg_wall_s = 0;
  double avg_cpu_ms = 0;
  uint64_t executions = 0;  ///< From the first seed (seed-invariant check).
  double best_score = 0;
};

bool RunWorkload(const std::string& name) {
  bench::Section(name);
  auto d = bench::CheckedValue(sim::MakeDeployment(name, kScale),
                               "MakeDeployment");
  // Widen the Fig. 3 history with extra trained model versions on dev: a
  // heavy merge has a broad frontier, which is where worker scaling shows.
  bench::CheckOk(
      sim::BuildTwoBranchScenario(d.get(), /*extra_model_versions=*/4)
          .status(),
      "BuildTwoBranchScenario");
  merge::PrioritizedSearch search(d->repo.get(), d->libraries.get(),
                                  d->registry.get(), d->engine.get());
  bench::CheckOk(search.Prepare("master", "dev"), "Prepare");
  std::printf("candidates: %zu\n", search.num_candidates());

  std::vector<ScalePoint> points;
  for (size_t workers : kWorkerCounts) {
    ScalePoint point;
    point.workers = workers;
    for (uint64_t seed : kSeeds) {
      merge::TrialOptions options;
      options.mode = merge::SearchMode::kPrioritized;
      options.seed = seed;
      options.num_workers = workers;
      auto start = std::chrono::steady_clock::now();
      auto trial = bench::CheckedValue(search.RunTrial(options), "RunTrial");
      auto elapsed = std::chrono::steady_clock::now() - start;
      point.avg_wall_s += trial.wall_clock_s;
      point.avg_cpu_ms +=
          std::chrono::duration<double, std::milli>(elapsed).count();
      if (seed == kSeeds[0]) {
        point.executions = trial.executions;
        point.best_score = trial.best_score;
      }
    }
    point.avg_wall_s /= static_cast<double>(std::size(kSeeds));
    point.avg_cpu_ms /= static_cast<double>(std::size(kSeeds));
    points.push_back(point);
  }

  std::printf("%8s%10s%12s%10s%10s%12s\n", "workers", "execs", "wall(s)",
              "speedup", "cpu(ms)", "best");
  const double serial_wall = points.front().avg_wall_s;
  for (const ScalePoint& p : points) {
    std::printf("%8zu%10llu%12.2f%10.2f%10.1f%12.4f\n", p.workers,
                static_cast<unsigned long long>(p.executions), p.avg_wall_s,
                serial_wall / p.avg_wall_s, p.avg_cpu_ms, p.best_score);
  }

  bool ok = true;
  for (const ScalePoint& p : points) {
    if (p.executions != points.front().executions) {
      std::printf("FAIL: executions at %zu workers (%llu) differ from "
                  "serial (%llu)\n",
                  p.workers, static_cast<unsigned long long>(p.executions),
                  static_cast<unsigned long long>(points.front().executions));
      ok = false;
    }
    if (p.best_score != points.front().best_score) {
      std::printf("FAIL: best score at %zu workers differs from serial\n",
                  p.workers);
      ok = false;
    }
  }
  double speedup4 = 0;
  for (const ScalePoint& p : points) {
    if (p.workers == 4) speedup4 = serial_wall / p.avg_wall_s;
  }
  std::printf("wall-clock speedup at 4 workers: %.2fx (target >= 2x): %s\n",
              speedup4, speedup4 >= 2.0 ? "PASS" : "FAIL");
  return ok && speedup4 >= 2.0;
}

}  // namespace
}  // namespace mlcask

int main() {
  mlcask::bench::Banner("micro_parallel_search",
                        "prioritized merge search: worker scaling");
  bool ok = true;
  for (const char* workload : {"readmission", "sa"}) {
    ok = mlcask::RunWorkload(workload) && ok;
  }
  return ok ? 0 : 1;
}
