// Reproduces Fig. 5: total (cumulative) time for linear versioning over 10
// iterations, for each of the four pipelines under ModelDB, MLflow, and
// MLCask. Expected shape (paper Sec. VII-C): ModelDB grows linearly and
// fastest; MLflow and MLCask track lower by skipping unchanged components;
// MLCask is flat on the final (incompatible) iteration because the pre-check
// skips the run entirely.

#include <cstdio>

#include "baselines/system_under_test.h"
#include "bench_util.h"
#include "sim/libraries.h"
#include "sim/linear_driver.h"
#include "sim/workloads.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.25;

void RunWorkload(const std::string& name,
                 const pipeline::LibraryRegistry& registry) {
  sim::Workload workload = bench::CheckedValue(
      sim::MakeWorkload(name, kScale), "MakeWorkload");
  auto schedule = bench::CheckedValue(
      sim::BuildLinearSchedule(workload, {}), "BuildLinearSchedule");

  const baselines::SystemConfig configs[] = {baselines::ModelDbConfig(),
                                             baselines::MlflowConfig(),
                                             baselines::MlcaskConfig()};
  bench::Section(name);
  std::printf("%-10s", "iteration");
  for (const auto& c : configs) std::printf("%14s", c.name.c_str());
  std::printf("\n");

  std::vector<std::vector<baselines::IterationStats>> all;
  for (const auto& config : configs) {
    baselines::SystemUnderTest system(config, &registry);
    all.push_back(bench::CheckedValue(sim::ReplaySchedule(schedule, &system),
                                      "ReplaySchedule"));
  }
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::printf("%-10zu", i + 1);
    for (const auto& run : all) {
      std::printf("%13.1fs", run[i].total_time_s);
    }
    std::printf("\n");
  }
  std::printf("final-iteration handling: modeldb=%s mlflow=%s mlcask=%s\n",
              all[0].back().failed_at_runtime ? "failed-at-runtime" : "ok",
              all[1].back().failed_at_runtime ? "failed-at-runtime" : "ok",
              all[2].back().skipped_incompatible ? "skipped-by-precheck"
                                                 : "ok");
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 5", "total time for linear versioning (simulated s)");
  std::printf("scale=%.2f, 10 iterations, updates: preprocessor p=0.4 / "
              "model p=0.6, final iteration incompatible\n",
              kScale);
  pipeline::LibraryRegistry registry;
  bench::CheckOk(sim::RegisterWorkloadLibraries(&registry),
                 "RegisterWorkloadLibraries");
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name, registry);
  }
  return 0;
}
