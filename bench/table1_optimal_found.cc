// Reproduces Table I: the percentage of trials in which the optimal pipeline
// has been found after the first 20/40/60/80/100% of searches, for random
// vs prioritized order. Expected shape (paper Sec. VII-E): prioritized
// search finds the optimum earlier at every budget, and always within 80%
// of searches.

#include <cstdio>

#include <vector>

#include "bench_util.h"
#include "merge/prioritized.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.15;
constexpr int kTrials = 100;

void RunWorkload(const std::string& name) {
  auto d = bench::CheckedValue(sim::MakeDeployment(name, kScale),
                               "MakeDeployment");
  bench::CheckOk(sim::BuildTwoBranchScenario(d.get()).status(),
                 "BuildTwoBranchScenario");
  merge::PrioritizedSearch search(d->repo.get(), d->libraries.get(),
                                  d->registry.get(), d->engine.get());
  bench::CheckOk(search.Prepare("master", "dev"), "Prepare");

  bench::Section(name);
  std::printf("%-12s%10s%10s%10s%10s%10s\n", "method", "20%", "40%", "60%",
              "80%", "100%");
  const double budgets[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  for (merge::SearchMode mode :
       {merge::SearchMode::kRandom, merge::SearchMode::kPrioritized}) {
    const char* label =
        mode == merge::SearchMode::kRandom ? "random" : "prioritized";
    int found[5] = {0, 0, 0, 0, 0};
    for (int t = 0; t < kTrials; ++t) {
      auto trial = bench::CheckedValue(
          search.RunTrial(mode, static_cast<uint64_t>(t) + 1), "RunTrial");
      size_t n = trial.steps.size();
      for (int b = 0; b < 5; ++b) {
        size_t budget_steps =
            static_cast<size_t>(budgets[b] * static_cast<double>(n) + 1e-9);
        if (trial.steps_to_optimal <= budget_steps) found[b] += 1;
      }
    }
    std::printf("%-12s", label);
    for (int b = 0; b < 5; ++b) {
      std::printf("%9d%%", found[b]);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Table I", "percentage of trials with the optimal pipeline found");
  std::printf("scale=%.2f, %d trials per method\n", kScale, kTrials);
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name);
  }
  return 0;
}
