// Reproduces Fig. 10: prioritized vs random pipeline search. For every
// candidate position we report the average end time and average score (with
// score variance) over repeated trials. Expected shape (paper Sec. VII-E):
// prioritized search runs high-score candidates early (scores spread wide,
// high scores at small end times); random search's per-position scores are
// roughly flat.

#include <cstdio>

#include <vector>

#include "bench_util.h"
#include "merge/prioritized.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.15;
constexpr int kTrials = 100;

void RunWorkload(const std::string& name) {
  auto d = bench::CheckedValue(sim::MakeDeployment(name, kScale),
                               "MakeDeployment");
  bench::CheckOk(sim::BuildTwoBranchScenario(d.get()).status(),
                 "BuildTwoBranchScenario");
  merge::PrioritizedSearch search(d->repo.get(), d->libraries.get(),
                                  d->registry.get(), d->engine.get());
  bench::CheckOk(search.Prepare("master", "dev"), "Prepare");

  bench::Section(name + " (" + std::to_string(search.num_candidates()) +
                 " candidates, " + std::to_string(kTrials) + " trials)");
  std::printf("%-12s%-12s%14s%12s%12s\n", "method", "position",
              "avg end(s)", "avg score", "score var");

  for (merge::SearchMode mode :
       {merge::SearchMode::kPrioritized, merge::SearchMode::kRandom}) {
    const char* label =
        mode == merge::SearchMode::kPrioritized ? "prioritized" : "random";
    size_t n = search.num_candidates();
    std::vector<double> time_sum(n, 0), score_sum(n, 0), score_sq(n, 0);
    for (int t = 0; t < kTrials; ++t) {
      auto trial = bench::CheckedValue(
          search.RunTrial(mode, static_cast<uint64_t>(t) + 1), "RunTrial");
      for (size_t pos = 0; pos < trial.steps.size(); ++pos) {
        time_sum[pos] += trial.steps[pos].end_time_s;
        score_sum[pos] += trial.steps[pos].score;
        score_sq[pos] += trial.steps[pos].score * trial.steps[pos].score;
      }
    }
    for (size_t pos = 0; pos < n; ++pos) {
      double mean_t = time_sum[pos] / kTrials;
      double mean_s = score_sum[pos] / kTrials;
      double var_s = score_sq[pos] / kTrials - mean_s * mean_s;
      std::printf("%-12s%-12zu%14.1f%12.3f%12.4f\n", label, pos + 1, mean_t,
                  mean_s, var_s < 0 ? 0.0 : var_s);
    }
  }
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 10", "prioritized pipeline search vs random search");
  std::printf("scale=%.2f\n", kScale);
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name);
  }
  return 0;
}
