// micro_transport — wire-speed report for the PR-6 transport stack.
//
// Two questions, answered with numbers and hard gates:
//
//   1. Codec: how much faster is the binary wire codec than the JSON+hex
//      codec it replaced? Measured as Get bytes/s and small-RPC round
//      trips/s through two RemoteStorageEngines over LoopbackTransport —
//      same service, same engine, only the codec differs, so the ratio IS
//      the serialization cost. GATE: binary must move ≥5x the bytes/s of
//      JSON+hex at the 8 MiB payload (hex alone doubles every byte).
//
//   2. Streaming: does chunked transfer bound the receiver's memory and
//      dedupe repeated content? Measured over real unix sockets against
//      two epoll servers — one with chunking disabled (monolithic frames),
//      one with the default 256 KiB threshold. GATEs: the streamed
//      client's peak decoder buffer stays under a quarter of the value
//      size, and re-sending the same value scores chunk-cache dedup hits
//      on the server.
//
// Flags: --short (CI-sized iteration counts), --json <path> (write
// BENCH_micro_transport.json for tools/bench_compare.py; the history-gated
// metric is `real_codec_speedup_8m`).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "storage/forkbase_engine.h"
#include "storage/remote_engine.h"
#include "storage/socket_transport.h"
#include "storage/transport.h"
#include "storage/wire_codec.h"

namespace {

using namespace mlcask;
using namespace mlcask::storage;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic byte soup: varied enough that the content-defined chunker
/// produces realistic cuts, cheap enough to generate at any size.
std::string PatternedValue(size_t size) {
  std::string value(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    value[i] = static_cast<char>((i * 2654435761u) >> 13);
  }
  return value;
}

std::unique_ptr<RemoteStorageEngine> LoopbackRemote(StorageEngineService* svc,
                                                    WireCodec codec) {
  return std::make_unique<RemoteStorageEngine>(
      std::make_unique<LoopbackTransport>(
          [svc](std::string_view request) { return svc->Handle(request); }),
      codec);
}

/// Times `iters` Gets of `key` (whose value is `size` bytes) and returns
/// payload bytes per second. Exits via CheckOk on any failed Get.
double TimeGets(StorageEngine* engine, const std::string& key, size_t size,
                long iters) {
  const double start = NowSeconds();
  for (long i = 0; i < iters; ++i) {
    auto value = engine->Get(key);
    bench::CheckOk(value.status(), ("Get(" + key + ")").c_str());
    if (value->size() != size) {
      std::fprintf(stderr, "FAIL: Get(%s) returned %zu bytes, want %zu\n",
                   key.c_str(), value->size(), size);
      std::exit(1);
    }
  }
  const double elapsed = NowSeconds() - start;
  return static_cast<double>(size) * static_cast<double>(iters) /
         (elapsed > 0 ? elapsed : 1e-9);
}

std::string HumanSize(size_t bytes) {
  if (bytes >= (1u << 20)) return std::to_string(bytes >> 20) + "m";
  if (bytes >= (1u << 10)) return std::to_string(bytes >> 10) + "k";
  return std::to_string(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("micro_transport",
                "wire codec + chunk streaming throughput (PR-6 gates)");
  bench::JsonReporter reporter("micro_transport");

  const struct {
    size_t size;
    long iters;
    long iters_short;
  } kPayloads[] = {
      {4u << 10, 2000, 400},
      {256u << 10, 96, 24},
      {8u << 20, 8, 3},
  };
  const size_t kLargeSize = 8u << 20;

  // ---- 1. codec throughput over loopback -------------------------------
  bench::Section("codec: binary vs JSON+hex over loopback");
  StorageEngineService binary_service(std::make_unique<ForkBaseEngine>());
  StorageEngineService json_service(std::make_unique<ForkBaseEngine>());
  auto binary = LoopbackRemote(&binary_service, WireCodec::kBinary);
  auto json = LoopbackRemote(&json_service, WireCodec::kJson);

  double speedup_8m = 0;
  for (const auto& p : kPayloads) {
    const long iters = args.short_mode ? p.iters_short : p.iters;
    const std::string key = "payload-" + HumanSize(p.size);
    const std::string value = PatternedValue(p.size);
    bench::CheckOk(binary->Put(key, value).status(), "binary Put");
    bench::CheckOk(json->Put(key, value).status(), "json Put");

    const double binary_bps = TimeGets(binary.get(), key, p.size, iters);
    const double json_bps = TimeGets(json.get(), key, p.size, iters);
    const double ratio = binary_bps / json_bps;
    std::printf("  %6s x%-5ld  binary %8.1f MB/s   json+hex %8.1f MB/s   "
                "ratio %.1fx\n",
                HumanSize(p.size).c_str(), iters, binary_bps / 1e6,
                json_bps / 1e6, ratio);
    const std::string suffix = "_" + HumanSize(p.size);
    reporter.Metric("codec", "binary_bytes_per_s" + suffix, binary_bps);
    reporter.Metric("codec", "json_bytes_per_s" + suffix, json_bps);
    if (p.size == kLargeSize) speedup_8m = ratio;
  }
  reporter.Metric("codec", "real_codec_speedup_8m", speedup_8m);

  // Small-RPC rate: HasVersion round trips carry ~40 bytes each way, so
  // this measures per-call codec+dispatch overhead rather than bandwidth.
  {
    const long iters = args.short_mode ? 5000 : 50000;
    auto id = binary->Put("rpc-probe", "x");
    bench::CheckOk(id.status(), "Put rpc-probe");
    auto json_id = json->Put("rpc-probe", "x");
    bench::CheckOk(json_id.status(), "json Put rpc-probe");
    const double b_start = NowSeconds();
    for (long i = 0; i < iters; ++i) (void)binary->HasVersion(id->id);
    const double binary_rps = iters / (NowSeconds() - b_start);
    const double j_start = NowSeconds();
    for (long i = 0; i < iters; ++i) (void)json->HasVersion(json_id->id);
    const double json_rps = iters / (NowSeconds() - j_start);
    std::printf("  small RPC      binary %8.0f rpc/s    json+hex %8.0f "
                "rpc/s\n",
                binary_rps, json_rps);
    reporter.Metric("codec", "rpc_per_s_binary", binary_rps);
    reporter.Metric("codec", "rpc_per_s_json", json_rps);
  }

  // ---- 2. monolithic vs chunk-streamed over unix sockets ---------------
  bench::Section("streaming: monolithic vs chunked over unix sockets");
  char dir_template[] = "/tmp/mlcask-bench-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "FAIL: mkdtemp: cannot create socket dir\n");
    return 1;
  }
  const std::string dir = dir_template;

  const std::string large = PatternedValue(kLargeSize);
  const long stream_iters = args.short_mode ? 3 : 8;

  struct Lane {
    const char* name;
    size_t threshold;  // SIZE_MAX disables chunking entirely
  } lanes[] = {
      {"monolithic", static_cast<size_t>(-1)},
      {"streamed", wire::kDefaultChunkThreshold},
  };
  double streamed_bps = 0;
  for (const Lane& lane : lanes) {
    StorageEngineService service(std::make_unique<ForkBaseEngine>());
    SocketTransportServer::Options server_options;
    server_options.chunk_threshold = lane.threshold;
    const std::string spec = "unix:" + dir + "/" + lane.name + ".sock";
    auto server = SocketTransportServer::Bind(spec, server_options);
    bench::CheckOk(server.status(), ("Bind " + spec).c_str());
    bench::CheckOk((*server)->Serve([&service](std::string_view request) {
      return service.Handle(request);
    }),
                   ("Serve " + spec).c_str());

    SocketTransport::Options client_options;
    client_options.chunk_threshold = lane.threshold;
    auto transport = SocketTransport::Connect(spec, client_options);
    bench::CheckOk(transport.status(), ("Connect " + spec).c_str());
    SocketTransport* raw_transport = transport->get();
    RemoteStorageEngine remote(std::move(*transport));

    bench::CheckOk(remote.Put("large", large).status(), "Put large");
    const double bps = TimeGets(&remote, "large", kLargeSize, stream_iters);
    const TransportStats stats = raw_transport->stats();
    std::printf("  %-10s  %8.1f MB/s   chunk frames rx %llu   peak decoder "
                "buffer %llu bytes\n",
                lane.name, bps / 1e6,
                static_cast<unsigned long long>(stats.chunk_frames_received),
                static_cast<unsigned long long>(
                    stats.peak_decoder_buffer_bytes));
    reporter.Metric("streaming", std::string(lane.name) + "_bytes_per_s", bps);
    reporter.Metric("streaming",
                    std::string(lane.name) + "_peak_decoder_buffer_bytes",
                    static_cast<double>(stats.peak_decoder_buffer_bytes));

    if (lane.threshold != static_cast<size_t>(-1)) {
      streamed_bps = bps;
      // GATE: streamed receive memory is O(chunk), not O(value).
      if (stats.peak_decoder_buffer_bytes * 4 >= kLargeSize) {
        std::fprintf(stderr,
                     "FAIL: streamed peak decoder buffer %llu bytes is not "
                     "under a quarter of the %zu-byte value\n",
                     static_cast<unsigned long long>(
                         stats.peak_decoder_buffer_bytes),
                     kLargeSize);
        return 1;
      }
      if (stats.chunk_frames_received == 0) {
        std::fprintf(stderr, "FAIL: streamed lane never saw a chunk frame\n");
        return 1;
      }
      // GATE: re-sending the same bytes dedupes on the receiving shard.
      bench::CheckOk(remote.Put("large-again", large).status(),
                     "Put large-again");
      const ChunkStoreStats chunk_stats = (*server)->wire_chunk_stats();
      std::printf("  %-10s  server chunk cache: %llu dedup hits, %llu -> "
                  "%llu bytes\n",
                  "", static_cast<unsigned long long>(chunk_stats.dedup_hits),
                  static_cast<unsigned long long>(chunk_stats.logical_bytes),
                  static_cast<unsigned long long>(chunk_stats.physical_bytes));
      reporter.Metric("streaming", "server_dedup_hits",
                      static_cast<double>(chunk_stats.dedup_hits));
      if (chunk_stats.dedup_hits == 0) {
        std::fprintf(stderr,
                     "FAIL: repeated transfer produced no chunk dedup hits\n");
        return 1;
      }
    }

    (*server)->Shutdown();
    ::unlink((dir + "/" + lane.name + ".sock").c_str());
  }
  ::rmdir(dir.c_str());
  (void)streamed_bps;

  // ---- verdict ---------------------------------------------------------
  bench::Section("verdict");
  std::printf("  binary/json ratio at 8 MiB: %.1fx (gate: >= 5x)\n",
              speedup_8m);
  const bool ok = speedup_8m >= 5.0;
  reporter.Metric("summary", "pass", ok);
  reporter.Write(args.json_path);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: binary codec only %.1fx JSON+hex at 8 MiB (need "
                 ">= 5x)\n",
                 speedup_8m);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
