#ifndef MLCASK_BENCH_BENCH_UTIL_H_
#define MLCASK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/status.h"

namespace mlcask::bench {

/// Prints a figure/table banner.
inline void Banner(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Aborts the bench with a readable message when a Status fails (benches are
/// top-level binaries; failing loudly is the right behaviour).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckedValue(StatusOr<T> value, const char* what) {
  CheckOk(value.status(), what);
  return *std::move(value);
}

}  // namespace mlcask::bench

#endif  // MLCASK_BENCH_BENCH_UTIL_H_
