#ifndef MLCASK_BENCH_BENCH_UTIL_H_
#define MLCASK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace mlcask::bench {

/// Prints a figure/table banner.
inline void Banner(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Aborts the bench with a readable message when a Status fails (benches are
/// top-level binaries; failing loudly is the right behaviour).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckedValue(StatusOr<T> value, const char* what) {
  CheckOk(value.status(), what);
  return *std::move(value);
}

/// Common bench CLI flags — THE one flag parser every standalone bench
/// shares (micro_merge_parallel, fig11_distributed, micro_merge_realtime);
/// benches must not hand-roll their own argv loops:
///   --json <path> / --json=<path>  write a machine-readable report there
///   --short                        reduced iteration count for CI
/// Bench-specific integer knobs register through `int_flags` (defaults in,
/// parsed values out via `ints`), so every bench gets identical syntax
/// (`--name <n>` / `--name=<n>`) and identical unknown-flag handling.
struct BenchArgs {
  std::string json_path;
  bool short_mode = false;
  /// Values of the caller-registered integer flags, keyed by flag name
  /// (including the leading dashes), pre-filled with the defaults.
  std::map<std::string, long> ints;
};

inline BenchArgs ParseBenchArgs(
    int argc, char** argv, const std::map<std::string, long>& int_flags = {}) {
  BenchArgs args;
  args.ints = int_flags;
  auto parse_int = [](const char* flag, const char* text) {
    char* end = nullptr;
    long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "[bench] %s expects an integer, got '%s'\n", flag,
                   text);
      std::exit(2);
    }
    return value;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--short") == 0) {
      args.short_mode = true;
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
      continue;
    }
    if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "[bench] --json requires a path argument\n");
        std::exit(2);
      }
      args.json_path = argv[++i];
      continue;
    }
    bool matched = false;
    for (const auto& [name, unused_default] : int_flags) {
      (void)unused_default;
      if (std::strncmp(arg, name.c_str(), name.size()) == 0 &&
          arg[name.size()] == '=') {
        args.ints[name] = parse_int(name.c_str(), arg + name.size() + 1);
        matched = true;
        break;
      }
      if (name == arg) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "[bench] %s requires an integer argument\n",
                       name.c_str());
          std::exit(2);
        }
        args.ints[name] = parse_int(name.c_str(), argv[++i]);
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "[bench] unknown argument: %s\n", arg);
      std::exit(2);
    }
  }
  return args;
}

/// Accumulates bench results into a JSON document — the format behind the
/// repo's `BENCH_*.json` perf-trajectory artifacts. Typical shape:
///   {"bench": "...", "sections": {"<name>": {<metric>: <number>, ...}}}
/// Metrics land under named sections; Write() emits the document (pretty,
/// newline-terminated) when a path was requested and is a no-op otherwise.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Metric(const std::string& section, const std::string& key,
              double value) {
    Section(section).Set(key, Json::Number(value));
  }
  void Metric(const std::string& section, const std::string& key,
              const std::string& value) {
    Section(section).Set(key, Json::Str(value));
  }
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion beats the user-defined one to std::string) and be
  /// silently recorded as `true`.
  void Metric(const std::string& section, const std::string& key,
              const char* value) {
    Metric(section, key, std::string(value));
  }
  void Metric(const std::string& section, const std::string& key, bool value) {
    Section(section).Set(key, Json::Bool(value));
  }

  /// Direct access to one section's object, for nested values.
  Json& Section(const std::string& name) {
    auto it = sections_.find(name);
    if (it == sections_.end()) {
      it = sections_.emplace(name, Json::Object()).first;
    }
    return it->second;
  }

  /// Writes the report to `path` (no-op when empty). Returns false and
  /// warns on I/O failure — the bench's PASS/FAIL verdict stays about the
  /// measured numbers, not about the disk.
  bool Write(const std::string& path) {
    if (path.empty()) return true;
    Json root = Json::Object();
    root.Set("bench", Json::Str(bench_name_));
    Json sections = Json::Object();
    for (const auto& [name, section] : sections_) {
      sections.Set(name, section);
    }
    root.Set("sections", std::move(sections));
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    out << root.Pretty() << "\n";
    out.flush();  // surface ENOSPC-style errors now, not in the destructor
    if (!out.good()) {
      std::fprintf(stderr, "[bench] error writing %s\n", path.c_str());
      return false;
    }
    std::printf("json report written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  std::map<std::string, Json> sections_;
};

}  // namespace mlcask::bench

#endif  // MLCASK_BENCH_BENCH_UTIL_H_
