// Parallel merge-drain scaling and cache-cap behaviour on the Fig. 9 merge
// scenario: MergeOperation::Merge (Algorithm 2) drains the PC-pruned,
// PR-seeded candidate list through the shared ExecutionCore with
// 1/2/4/8 workers.
//
// Reported per worker count:
//  - execs:       component executions. Must be IDENTICAL across worker
//    counts — the artifact cache's in-flight leases dedup racing prefixes.
//  - makespan(s): virtual wall-clock of the candidate drain (list-scheduled
//    over virtual worker slots; the repo-wide SimClock convention).
//  - CPT(s):      cumulative pipeline time (worker-count-invariant).
//  - speedup:     serial makespan / parallel makespan. Target: >= 2x at 4.
//  - best:        winning candidate's score. Must match serial exactly.
//
// A second section re-runs the merge with a byte cap on the artifact cache
// (60% of the uncapped peak): peak resident bytes must stay under the cap,
// evictions must actually happen, and the winner must be unchanged —
// eviction degrades to recomputation, never to a different merge result.
//
// Exit status is the PASS/FAIL verdict, so CI can gate on it. Flags:
// --short (fewer worker counts/workloads for CI), --json <path> (write the
// BENCH_micro_merge.json trajectory artifact).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "merge/merge_op.h"
#include "pipeline/execution_core.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.15;

struct MergePoint {
  size_t workers = 0;
  uint64_t executions = 0;
  double makespan_s = 0;
  double cpt_s = 0;
  double best_score = 0;
  double cpu_ms = 0;
  uint64_t cache_peak_bytes = 0;
  uint64_t cache_evictions = 0;
  uint64_t largest_entry_bytes = 0;
};

/// Runs one full metric-driven merge of the Fig. 9 two-branch scenario on a
/// fresh deployment. `widen` adds extra trained model versions on dev (same
/// knob as the parallel-search bench) so the frontier is broad enough for
/// worker scaling to show.
MergePoint RunMerge(const std::string& workload, size_t workers, int widen,
                    uint64_t cache_max_bytes) {
  // num_workers sizes the deployment pool's REAL threads too, so the drain
  // races genuinely concurrent workers (on multi-core hosts) rather than
  // an inline pool.
  auto d = bench::CheckedValue(
      sim::MakeDeployment(workload, kScale, /*folder_storage=*/false,
                          workers),
      "MakeDeployment");
  bench::CheckOk(
      sim::BuildTwoBranchScenario(d.get(), /*extra_model_versions=*/widen)
          .status(),
      "BuildTwoBranchScenario");
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions opts;
  opts.num_workers = workers;
  opts.core = d->core.get();  // the deployment-wide shared pool
  opts.cache_max_bytes = cache_max_bytes;
  auto start = std::chrono::steady_clock::now();
  auto report = bench::CheckedValue(op.Merge("master", "dev", opts), "Merge");
  auto elapsed = std::chrono::steady_clock::now() - start;

  MergePoint point;
  point.workers = workers;
  point.executions = report.component_executions;
  point.makespan_s = report.makespan_s;
  point.cpt_s = report.total_time.Total();
  point.best_score = report.best_score;
  point.cpu_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  point.cache_peak_bytes = report.cache_stats.peak_bytes;
  point.cache_evictions = report.cache_stats.evictions;
  point.largest_entry_bytes = report.cache_stats.largest_entry_bytes;
  return point;
}

bool RunWorkload(const std::string& workload, const bench::BenchArgs& args,
                 bench::JsonReporter* reporter) {
  bench::Section(workload);
  const int widen = 4;
  const std::vector<size_t> worker_counts =
      args.short_mode ? std::vector<size_t>{1, 4}
                      : std::vector<size_t>{1, 2, 4, 8};

  // --- Worker scaling, unbounded cache --------------------------------
  std::vector<MergePoint> points;
  for (size_t workers : worker_counts) {
    points.push_back(RunMerge(workload, workers, widen, /*cache=*/0));
  }
  const MergePoint& serial = points.front();

  std::printf("%8s%10s%14s%10s%10s%10s%12s\n", "workers", "execs",
              "makespan(s)", "CPT(s)", "speedup", "cpu(ms)", "best");
  for (const MergePoint& p : points) {
    std::printf("%8zu%10llu%14.2f%10.1f%10.2f%10.1f%12.4f\n", p.workers,
                static_cast<unsigned long long>(p.executions), p.makespan_s,
                p.cpt_s, serial.makespan_s / p.makespan_s, p.cpu_ms,
                p.best_score);
  }

  bool ok = true;
  double speedup_at_4 = 0;
  for (const MergePoint& p : points) {
    if (p.executions != serial.executions) {
      std::printf("FAIL: executions at %zu workers (%llu) differ from serial "
                  "(%llu)\n",
                  p.workers, static_cast<unsigned long long>(p.executions),
                  static_cast<unsigned long long>(serial.executions));
      ok = false;
    }
    if (p.best_score != serial.best_score) {
      std::printf("FAIL: best score at %zu workers differs from serial\n",
                  p.workers);
      ok = false;
    }
    if (p.workers == 4) speedup_at_4 = serial.makespan_s / p.makespan_s;
    reporter->Metric(workload,
                     "makespan_s_w" + std::to_string(p.workers),
                     p.makespan_s);
  }
  std::printf("virtual makespan speedup at 4 workers: %.2fx "
              "(target >= 2x): %s\n",
              speedup_at_4, speedup_at_4 >= 2.0 ? "PASS" : "FAIL");
  ok = ok && speedup_at_4 >= 2.0;

  reporter->Metric(workload, "executions",
                   static_cast<double>(serial.executions));
  reporter->Metric(workload, "best_score", serial.best_score);
  reporter->Metric(workload, "cpt_s", serial.cpt_s);
  reporter->Metric(workload, "speedup_at_4_workers", speedup_at_4);
  reporter->Metric(workload, "uncapped_peak_cache_bytes",
                   static_cast<double>(serial.cache_peak_bytes));

  // --- Byte-bounded cache ---------------------------------------------
  // Cap at 60% of the uncapped peak: the LRU policy must keep residency
  // under the cap by trading evicted prefixes for recomputation, without
  // changing the merge result.
  const uint64_t cap =
      static_cast<uint64_t>(static_cast<double>(serial.cache_peak_bytes) * 0.6);
  std::printf("cache cap: %llu bytes (uncapped peak %llu)\n",
              static_cast<unsigned long long>(cap),
              static_cast<unsigned long long>(serial.cache_peak_bytes));
  for (size_t workers : {size_t{1}, size_t{4}}) {
    MergePoint capped = RunMerge(workload, workers, widen, cap);
    // The cap can be exceeded by the transiently pinned working set: every
    // running candidate (serial included) pins its resume checkpoint and
    // current input entry while publishing, and pinned entries are never
    // evicted — bounded by a couple of entries per worker.
    const uint64_t pin_slack = 2 * workers * capped.largest_entry_bytes;
    std::printf(
        "  capped w=%zu: peak=%llu (bound %llu) evictions=%llu execs=%llu "
        "best=%.4f\n",
        workers, static_cast<unsigned long long>(capped.cache_peak_bytes),
        static_cast<unsigned long long>(cap + pin_slack),
        static_cast<unsigned long long>(capped.cache_evictions),
        static_cast<unsigned long long>(capped.executions),
        capped.best_score);
    if (capped.cache_peak_bytes > cap + pin_slack) {
      std::printf("FAIL: capped peak exceeds its bound at %zu workers\n",
                  workers);
      ok = false;
    }
    if (capped.cache_evictions == 0) {
      std::printf("FAIL: cap below uncapped peak but nothing evicted\n");
      ok = false;
    }
    if (capped.best_score != serial.best_score) {
      std::printf("FAIL: capped merge changed the winner at %zu workers\n",
                  workers);
      ok = false;
    }
    if (capped.executions < serial.executions) {
      std::printf("FAIL: capped merge executed fewer components than "
                  "uncapped\n");
      ok = false;
    }
    const std::string prefix = "capped_w" + std::to_string(workers) + "_";
    reporter->Metric(workload, prefix + "peak_cache_bytes",
                     static_cast<double>(capped.cache_peak_bytes));
    reporter->Metric(workload, prefix + "evictions",
                     static_cast<double>(capped.cache_evictions));
    reporter->Metric(workload, prefix + "executions",
                     static_cast<double>(capped.executions));
  }
  reporter->Metric(workload, "cache_cap_bytes", static_cast<double>(cap));
  reporter->Metric(workload, "pass", ok);
  return ok;
}

}  // namespace
}  // namespace mlcask

int main(int argc, char** argv) {
  using namespace mlcask;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("micro_merge_parallel",
                "parallel merge drain: worker scaling + byte-bounded cache");
  std::printf("fig9 two-branch scenario, scale=%.2f%s\n", kScale,
              args.short_mode ? " (short mode)" : "");
  bench::JsonReporter reporter("micro_merge_parallel");
  const std::vector<std::string> workloads =
      args.short_mode ? std::vector<std::string>{"readmission"}
                      : std::vector<std::string>{"readmission", "sa"};
  bool ok = true;
  for (const std::string& workload : workloads) {
    ok = RunWorkload(workload, args, &reporter) && ok;
  }
  reporter.Metric("summary", "pass", ok);
  reporter.Write(args.json_path);
  return ok ? 0 : 1;
}
