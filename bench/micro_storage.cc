// Micro/ablation benchmarks for the storage substrate: chunking throughput,
// the content-defined vs fixed-size de-duplication ablation (DESIGN.md §7.1),
// and blob write/read round trips.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.h"
#include "storage/blob.h"
#include "storage/chunk_store.h"
#include "storage/chunker.h"
#include "storage/forkbase_engine.h"
#include "storage/persistence.h"

namespace mlcask::storage {
namespace {

std::string RandomBytes(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextU32() & 0xff);
  return out;
}

void BM_FixedChunkerSplit(benchmark::State& state) {
  std::string data = RandomBytes(static_cast<size_t>(state.range(0)), 1);
  FixedChunker chunker(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.Split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FixedChunkerSplit)->Arg(1 << 16)->Arg(1 << 20);

void BM_GearChunkerSplit(benchmark::State& state) {
  std::string data = RandomBytes(static_cast<size_t>(state.range(0)), 2);
  GearChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.Split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GearChunkerSplit)->Arg(1 << 16)->Arg(1 << 20);

/// Ablation: de-duplication ratio after a small edit, content-defined vs
/// fixed chunking. The counter "dedup_ratio" is logical/physical bytes after
/// writing the original and an edited copy — higher is better; CDC should
/// approach 2.0 while fixed chunking collapses toward 1.0.
template <typename ChunkerT>
void DedupAfterEdit(benchmark::State& state, size_t avg_chunk) {
  std::string data = RandomBytes(1 << 20, 3);
  std::string edited = data;
  edited.insert(1000, "EDIT");
  double ratio = 0;
  for (auto _ : state) {
    ChunkStore store;
    ChunkerT chunker(avg_chunk / 4, avg_chunk, avg_chunk * 4);
    WriteBlob(&store, chunker, data);
    WriteBlob(&store, chunker, edited);
    ratio = store.stats().DedupRatio();
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["dedup_ratio"] = ratio;
}

void BM_DedupAfterEdit_Gear(benchmark::State& state) {
  DedupAfterEdit<GearChunker>(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_DedupAfterEdit_Gear)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DedupAfterEdit_Fixed(benchmark::State& state) {
  std::string data = RandomBytes(1 << 20, 3);
  std::string edited = data;
  edited.insert(1000, "EDIT");
  double ratio = 0;
  for (auto _ : state) {
    ChunkStore store;
    FixedChunker chunker(static_cast<size_t>(state.range(0)));
    WriteBlob(&store, chunker, data);
    WriteBlob(&store, chunker, edited);
    ratio = store.stats().DedupRatio();
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["dedup_ratio"] = ratio;
}
BENCHMARK(BM_DedupAfterEdit_Fixed)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BlobWriteRead(benchmark::State& state) {
  std::string data = RandomBytes(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    ChunkStore store;
    GearChunker chunker;
    BlobWriteInfo info = WriteBlob(&store, chunker, data);
    auto back = ReadBlob(store, info.ref);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_BlobWriteRead)->Arg(1 << 16)->Arg(1 << 20);

void BM_CheckpointSaveLoad(benchmark::State& state) {
  // Durable checkpoint round trip for an engine holding versioned objects.
  ForkBaseEngine engine;
  std::string base = RandomBytes(static_cast<size_t>(state.range(0)), 9);
  for (int i = 0; i < 8; ++i) {
    std::string v = base;
    v[static_cast<size_t>(i) * 100 % v.size()] ^= 1;
    benchmark::DoNotOptimize(engine.Put("lib", v));
  }
  std::string dir = "/tmp/mlcask_bench_ckpt";
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    if (!SaveEngine(engine, dir).ok()) {
      state.SkipWithError("save failed");
      return;
    }
    auto loaded = LoadEngine(dir);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded->get());
  }
  std::filesystem::remove_all(dir);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(engine.stats().physical_bytes));
}
BENCHMARK(BM_CheckpointSaveLoad)->Arg(1 << 16)->Arg(1 << 19);

void BM_ForkBasePutVersions(benchmark::State& state) {
  // Put N slightly-edited versions of the same object; measures the
  // steady-state versioned-write path with de-duplication.
  std::string base = RandomBytes(1 << 18, 5);
  for (auto _ : state) {
    ForkBaseEngine engine;
    std::string v = base;
    for (int i = 0; i < state.range(0); ++i) {
      v[static_cast<size_t>(1000 * i % v.size())] ^= 1;
      benchmark::DoNotOptimize(engine.Put("lib", v));
    }
  }
}
BENCHMARK(BM_ForkBasePutVersions)->Arg(4)->Arg(16);

}  // namespace
}  // namespace mlcask::storage

BENCHMARK_MAIN();
