// Micro benchmarks for the pipeline executor: chain-key hashing, cache-hit
// vs cache-miss runs, and table serialization (the artifact materialization
// format).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/generators.h"
#include "pipeline/executor.h"
#include "sim/libraries.h"
#include "sim/workloads.h"
#include "storage/forkbase_engine.h"

namespace mlcask::pipeline {
namespace {

void BM_ChainKey(benchmark::State& state) {
  auto w = sim::MakeWorkload("readmission", 0.05);
  std::vector<const ComponentVersionSpec*> chain;
  for (const auto& c : w->initial.components()) chain.push_back(&c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Executor::ChainKey(chain));
  }
}
BENCHMARK(BM_ChainKey);

void BM_ExecutorCacheHit(benchmark::State& state) {
  LibraryRegistry registry;
  if (!sim::RegisterWorkloadLibraries(&registry).ok()) {
    state.SkipWithError("registry");
    return;
  }
  storage::ForkBaseEngine engine;
  SimClock clock;
  Executor executor(&registry, &engine, &clock);
  auto w = sim::MakeWorkload("readmission", 0.05);
  ExecutorOptions opts;
  opts.store_outputs = false;
  if (!executor.Run(w->initial, opts).ok()) {
    state.SkipWithError("warm-up run");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(w->initial, opts));
  }
}
BENCHMARK(BM_ExecutorCacheHit);

void BM_ExecutorCacheMiss(benchmark::State& state) {
  LibraryRegistry registry;
  if (!sim::RegisterWorkloadLibraries(&registry).ok()) {
    state.SkipWithError("registry");
    return;
  }
  storage::ForkBaseEngine engine;
  SimClock clock;
  auto w = sim::MakeWorkload("readmission", 0.05);
  ExecutorOptions opts;
  opts.store_outputs = false;
  opts.reuse_cached_outputs = false;
  Executor executor(&registry, &engine, &clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(w->initial, opts));
  }
}
BENCHMARK(BM_ExecutorCacheMiss);

void BM_TableSerializeRoundTrip(benchmark::State& state) {
  auto t = data::GenerateReadmissionData(
      static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    std::string bytes = t->Serialize();
    auto back = data::Table::Deserialize(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TableSerializeRoundTrip)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace mlcask::pipeline

BENCHMARK_MAIN();
