// Reproduces Fig. 8: non-linear versioning (merge) performance — cumulative
// pipeline time (CPT), cumulative storage size (CSS), cumulative execution
// time (CET), and cumulative storage time (CST) for MLCask vs the two
// ablation arms ("w/o PR" disables output reuse; "w/o PCPR" additionally
// disables compatibility pruning). Expected shape (paper Sec. VII-D):
// MLCask dominates on every metric (headline: up to 7.8x faster, 11.9x
// smaller storage); w/o PR holds a minor edge over w/o PCPR.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.15;

struct ArmResult {
  std::string name;
  merge::MergeReport report;
};

ArmResult RunArm(const std::string& workload, const std::string& arm,
                 bool pc, bool pr) {
  auto d = bench::CheckedValue(sim::MakeDeployment(workload, kScale),
                               "MakeDeployment");
  bench::CheckOk(sim::BuildTwoBranchScenario(d.get()).status(),
                 "BuildTwoBranchScenario");
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions opts;
  opts.prune_compatibility = pc;
  opts.reuse_outputs = pr;
  opts.store_trial_outputs = !pr;
  ArmResult result;
  result.name = arm;
  result.report =
      bench::CheckedValue(op.Merge("master", "dev", opts), "Merge");
  return result;
}

void RunWorkload(const std::string& name) {
  bench::Section(name);
  ArmResult arms[] = {RunArm(name, "mlcask", true, true),
                      RunArm(name, "w/o PR", true, false),
                      RunArm(name, "w/o PCPR", false, false)};
  std::printf("%-10s%12s%12s%12s%12s%8s%8s\n", "system", "CPT(s)", "CET(s)",
              "CST(s)", "CSS(MB)", "cands", "execs");
  for (const ArmResult& arm : arms) {
    const merge::MergeReport& r = arm.report;
    std::printf("%-10s%12.1f%12.1f%12.1f%12.2f%8zu%8llu\n", arm.name.c_str(),
                r.total_time.Total(),
                r.total_time.preprocess_s + r.total_time.train_s,
                r.total_time.storage_s,
                static_cast<double>(r.storage_bytes) / 1e6,
                r.candidates_considered,
                static_cast<unsigned long long>(r.component_executions));
  }
  double speedup = arms[2].report.total_time.Total() /
                   arms[0].report.total_time.Total();
  // MLCask's CSS delta can be ~0 when the winner's outputs fully de-duplicate
  // against history; floor the denominator so the ratio stays meaningful.
  double mlcask_bytes =
      static_cast<double>(std::max<uint64_t>(arms[0].report.storage_bytes, 1024));
  double storage_saving =
      static_cast<double>(arms[2].report.storage_bytes) / mlcask_bytes;
  std::printf("merge speedup (w/o PCPR vs MLCask): %.1fx; "
              "storage saving: %s%.1fx; best score %.3f (%s)\n",
              speedup,
              arms[0].report.storage_bytes < 1024 ? ">" : "",
              storage_saving, arms[0].report.best_score,
              arms[0].report.metric.c_str());
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 8", "non-linear versioning (merge) performance");
  std::printf("scale=%.2f, two-branch scenario per Fig. 3\n", kScale);
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name);
  }
  return 0;
}
