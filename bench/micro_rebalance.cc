// micro_rebalance — elastic-cluster rebalance bench: migration throughput
// (keys/s streamed shard→shard through the wire codec's MigrateBatch
// opcode) and merge makespan while the topology change is in flight.
//
//   bench_micro_rebalance [--keys N] [--versions V] [--json PATH] [--short]
//
// Three sections land in the JSON report (BENCH_micro_rebalance.json):
//   scale_out             AddShard on a loopback cluster: exact counters
//                         (migrated_keys, versions, cursor writes) plus
//                         real_migrate_keys_per_s (steady clock)
//   scale_in              RemoveShard(0): the coordinator hands off and the
//                         slot drains EMPTY — same counters
//   merge_during_rebalance  fig9 merge with AddShard running mid-merge:
//                         virtual makespan + wrong_winners (0 = the winner,
//                         executions and artifact hashes are bit-identical
//                         to the fixed-topology reference)
//
// Counters named migrated_keys/lost_keys/wrong_winners are gated EXACTLY by
// tools/bench_compare.py; real_* metrics get the loose real-time threshold.

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "storage/forkbase_engine.h"
#include "storage/sharded_engine.h"

namespace {

using mlcask::Status;
using mlcask::bench::BenchArgs;
using mlcask::bench::CheckedValue;
using mlcask::bench::CheckOk;
using mlcask::bench::JsonReporter;
using mlcask::Hash256;
using mlcask::storage::ForkBaseEngine;
using mlcask::storage::MakeLoopbackCluster;
using mlcask::storage::MakeLoopbackShard;
using mlcask::storage::ShardedStorageEngine;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::unique_ptr<ShardedStorageEngine> MakeCluster(size_t shards) {
  return MakeLoopbackCluster(
      shards, [] { return std::make_unique<ForkBaseEngine>(); });
}

std::string Key(size_t i) { return "artifact/obj" + std::to_string(i); }

/// Verifies every expected key version reads back; returns the LOST count
/// (anything unreadable or with a changed id) — the headline invariant.
size_t CountLostKeys(ShardedStorageEngine& cluster, size_t keys,
                     const std::map<std::string, std::vector<Hash256>>& ids) {
  size_t lost = 0;
  for (size_t i = 0; i < keys; ++i) {
    const std::string key = Key(i);
    auto it = ids.find(key);
    if (it == ids.end() || cluster.Versions(key) != it->second) {
      ++lost;
      continue;
    }
    auto got = cluster.Get(key);
    if (!got.ok()) ++lost;
  }
  return lost;
}

struct MergeResult {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  double makespan_s = 0;
  double wall_ms = 0;
  std::vector<std::string> artifact_hashes;
};

/// One fig9 merge at `shards` loopback shards; `mid_merge` (optional) runs
/// on a side thread once the merge is underway.
MergeResult RunMerge(size_t shards,
                     const std::function<void(ShardedStorageEngine*)>&
                         mid_merge = nullptr) {
  mlcask::sim::DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  auto deployment =
      CheckedValue(mlcask::sim::MakeDeployment("readmission", 0.06, config),
                   "deployment");
  CheckOk(mlcask::sim::BuildTwoBranchScenario(deployment.get()).status(),
          "scenario");
  mlcask::merge::MergeOperation op(
      deployment->repo.get(), deployment->libraries.get(),
      deployment->registry.get(), deployment->engine.get(),
      deployment->clock.get());
  mlcask::merge::MergeOptions options;
  options.shards = shards;

  std::thread side;
  if (mid_merge != nullptr) {
    ShardedStorageEngine* sharded = deployment->sharded_engine();
    MLCASK_CHECK_MSG(sharded != nullptr, "deployment engine is not sharded");
    side = std::thread([&, sharded] {
      // Short stagger: the whole merge drains in tens of milliseconds, so
      // anything longer would land the topology change after the fact.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      mid_merge(sharded);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  auto report = op.Merge("master", "dev", options);
  const double wall_ms = MillisSince(start);
  if (side.joinable()) side.join();
  CheckOk(report.status(), "merge");

  MergeResult result;
  result.executions = report->component_executions;
  result.best_score = report->best_score;
  result.best_index = report->best_index;
  result.makespan_s = report->makespan_s;
  result.wall_ms = wall_ms;
  auto head = CheckedValue(deployment->repo->Head("master"), "head");
  for (const auto& rec : head->snapshot.components) {
    result.artifact_hashes.push_back(rec.output_id.ToHex());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = mlcask::bench::ParseBenchArgs(
      argc, argv, {{"--keys", 600}, {"--versions", 2}});
  const size_t keys =
      static_cast<size_t>(args.short_mode ? 200 : args.ints["--keys"]);
  const size_t versions = static_cast<size_t>(args.ints["--versions"]);

  mlcask::bench::Banner("micro_rebalance",
                        "live shard rebalance: migration throughput + merge "
                        "makespan during migration");
  JsonReporter report("micro_rebalance");
  bool failed = false;

  // ------------------------------------------------------------ scale out
  mlcask::bench::Section("scale_out: AddShard streams keys to the new slot");
  {
    auto cluster = MakeCluster(2);
    std::map<std::string, std::vector<Hash256>> ids;
    for (size_t i = 0; i < keys; ++i) {
      for (size_t v = 0; v < versions; ++v) {
        CheckOk(cluster->Put(Key(i), "payload v" + std::to_string(v) +
                                         " of " + Key(i))
                    .status(),
                "seed put");
      }
      ids[Key(i)] = cluster->Versions(Key(i));
    }
    CheckOk(cluster->Put("pipeline/demo/commits", "commit-json").status(),
            "replicated seed");

    const auto start = std::chrono::steady_clock::now();
    CheckOk(cluster->AddShard(
                MakeLoopbackShard(std::make_unique<ForkBaseEngine>())),
            "AddShard");
    const double wall_ms = MillisSince(start);
    auto stats = cluster->migration_stats();
    const size_t lost = CountLostKeys(*cluster, keys, ids);
    const double keys_per_s =
        wall_ms > 0 ? static_cast<double>(stats.keys_migrated) /
                          (wall_ms / 1000.0)
                    : 0;
    std::printf("  keys=%zu versions=%zu migrated_keys=%llu "
                "migrated_versions=%llu batches=%llu cursor_writes=%llu\n",
                keys, versions,
                static_cast<unsigned long long>(stats.keys_migrated),
                static_cast<unsigned long long>(stats.versions_migrated),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.cursor_writes));
    std::printf("  wall=%.1fms  rate=%.0f keys/s  lost_keys=%zu\n", wall_ms,
                keys_per_s, lost);
    report.Metric("scale_out", "migrated_keys",
                  static_cast<double>(stats.keys_migrated));
    report.Metric("scale_out", "migrated_versions",
                  static_cast<double>(stats.versions_migrated));
    report.Metric("scale_out", "skipped_versions",
                  static_cast<double>(stats.skipped_versions));
    report.Metric("scale_out", "cursor_writes",
                  static_cast<double>(stats.cursor_writes));
    report.Metric("scale_out", "lost_keys", static_cast<double>(lost));
    report.Metric("scale_out", "real_migrate_keys_per_s", keys_per_s);
    report.Metric("scale_out", "migrate_wall_ms", wall_ms);
    if (lost > 0 || stats.keys_migrated == 0) failed = true;

    // ---------------------------------------------------------- scale in
    mlcask::bench::Section(
        "scale_in: RemoveShard(0) hands off the coordinator and drains");
    const auto start_in = std::chrono::steady_clock::now();
    CheckOk(cluster->RemoveShard(0), "RemoveShard");
    const double wall_in_ms = MillisSince(start_in);
    auto stats_in = cluster->migration_stats();
    const size_t lost_in = CountLostKeys(*cluster, keys, ids);
    const bool drained = cluster->shard(0)->ListAllVersions().empty();
    const bool replicated_ok =
        cluster->Get("pipeline/demo/commits").ok() &&
        cluster->coordinator_shard() != 0;
    const double keys_in_per_s =
        wall_in_ms > 0 ? static_cast<double>(stats_in.keys_migrated) /
                             (wall_in_ms / 1000.0)
                       : 0;
    std::printf("  migrated_keys=%llu wall=%.1fms rate=%.0f keys/s "
                "lost_keys=%zu drained=%d replicated_ok=%d\n",
                static_cast<unsigned long long>(stats_in.keys_migrated),
                wall_in_ms, keys_in_per_s, lost_in, drained ? 1 : 0,
                replicated_ok ? 1 : 0);
    report.Metric("scale_in", "migrated_keys",
                  static_cast<double>(stats_in.keys_migrated));
    report.Metric("scale_in", "lost_keys", static_cast<double>(lost_in));
    report.Metric("scale_in", "leaver_residue",
                  static_cast<double>(
                      cluster->shard(0)->ListAllVersions().size()));
    report.Metric("scale_in", "real_migrate_keys_per_s", keys_in_per_s);
    report.Metric("scale_in", "migrate_wall_ms", wall_in_ms);
    if (lost_in > 0 || !drained || !replicated_ok) failed = true;
  }

  // ------------------------------------------------ merge during rebalance
  mlcask::bench::Section(
      "merge_during_rebalance: fig9 merge with AddShard mid-flight");
  {
    MergeResult reference = RunMerge(4);
    Status rebalance = Status::Ok();
    MergeResult live = RunMerge(4, [&](ShardedStorageEngine* engine) {
      rebalance = engine->AddShard(
          MakeLoopbackShard(std::make_unique<ForkBaseEngine>()));
    });
    CheckOk(rebalance, "mid-merge AddShard");
    const bool identical = live.executions == reference.executions &&
                           live.best_index == reference.best_index &&
                           live.best_score == reference.best_score &&
                           live.artifact_hashes == reference.artifact_hashes;
    std::printf("  executions=%llu best_index=%d makespan=%.3fs "
                "wall=%.1fms identical=%d\n",
                static_cast<unsigned long long>(live.executions),
                live.best_index, live.makespan_s, live.wall_ms,
                identical ? 1 : 0);
    report.Metric("merge_during_rebalance", "executions",
                  static_cast<double>(live.executions));
    report.Metric("merge_during_rebalance", "makespan_during_rebalance_s",
                  live.makespan_s);
    report.Metric("merge_during_rebalance", "merge_wall_ms", live.wall_ms);
    report.Metric("merge_during_rebalance", "wrong_winners",
                  identical ? 0.0 : 1.0);
    if (!identical) failed = true;
  }

  if (!report.Write(args.json_path)) failed = true;
  std::printf("\n%s\n", failed ? "FAIL" : "PASS");
  return failed ? 1 : 0;
}
