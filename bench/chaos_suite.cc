// chaos_suite — the seeded fault sweep behind the self-healing acceptance
// gate: real 4-shard mlcask_server clusters under deterministic injection
// (server-side job delays + client-side connection kills before/after
// send), each running the full two-branch merge. The invariant scored
// here is the robustness contract of the transport/2PC stack:
//
//   every trial ends in a TYPED failure or a recovered merge whose winner,
//   execution count, and artifact hashes are BIT-IDENTICAL to the
//   fault-free reference — never a hang, never a wrong winner.
//
// A kill-schedule pass then SIGKILLs a durable shard, restarts it, and
// requires router-level 2PC recovery to leave ZERO staged intents behind.
//
// A migration pass runs AddShard with the same fault specs live: the
// rebalance either completes or fails with a typed status, and either way
// every acknowledged write must still read back — never a lost key.
//
// Flags: --short (fewer seeds), --json <path> (machine-readable report).
// Gated metrics (see tools/bench_compare.py): recovered_merges may not
// regress, typed_failures / hangs / migration_lost_keys may not grow.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "storage/fault_injector.h"
#include "storage/remote_engine.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"
#include "storage/socket_transport.h"

#ifndef MLCASK_SERVER_BIN
#define MLCASK_SERVER_BIN ""
#endif

namespace mlcask {
namespace {

struct MergeFingerprint {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  std::vector<std::string> winner_chain;
  std::vector<std::string> artifact_hashes;

  bool operator==(const MergeFingerprint& other) const {
    return executions == other.executions && best_score == other.best_score &&
           best_index == other.best_index &&
           winner_chain == other.winner_chain &&
           artifact_hashes == other.artifact_hashes;
  }
};

StatusOr<MergeFingerprint> RunMerge(size_t shards,
                                    const std::vector<std::string>& endpoints,
                                    const std::string& client_fault_spec) {
  sim::DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  config.storage_endpoints = endpoints;
  config.client_fault_spec = client_fault_spec;
  MLCASK_ASSIGN_OR_RETURN(auto d,
                          sim::MakeDeployment("readmission", 0.06, config));
  MLCASK_RETURN_IF_ERROR(sim::BuildTwoBranchScenario(d.get()).status());
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(), d->clock.get());
  merge::MergeOptions options;
  options.shards = shards;
  MLCASK_ASSIGN_OR_RETURN(merge::MergeReport report,
                          op.Merge("master", "dev", options));

  MergeFingerprint fp;
  fp.executions = report.component_executions;
  fp.best_score = report.best_score;
  fp.best_index = report.best_index;
  const merge::CandidateChain& winner =
      report.outcomes[static_cast<size_t>(report.best_index)].chain;
  for (const pipeline::ComponentVersionSpec* spec : winner) {
    fp.winner_chain.push_back(spec->Key());
  }
  MLCASK_ASSIGN_OR_RETURN(auto head, d->repo->Head("master"));
  for (const version::ComponentRecord& rec : head->snapshot.components) {
    fp.artifact_hashes.push_back(rec.output_id.ToHex());
  }
  return fp;
}

size_t CountStagedKeys(const storage::ShardedStorageEngine& cluster) {
  size_t staged = 0;
  for (size_t s = 0; s < cluster.num_shards(); ++s) {
    for (const auto& [key, id] : cluster.shard(s)->ListAllVersions()) {
      (void)id;
      if (key.rfind("__2pc__/", 0) == 0) ++staged;
    }
  }
  return staged;
}

}  // namespace
}  // namespace mlcask

int main(int argc, char** argv) {
  using namespace mlcask;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::Banner("chaos_suite",
                "seeded fault sweep: 4-shard merges under injection");
  bench::JsonReporter reporter("chaos_suite");

  const std::vector<uint64_t> seeds =
      args.short_mode ? std::vector<uint64_t>{7}
                      : std::vector<uint64_t>{7, 23, 101};
  const size_t kShards = 4;

  bench::Section("fault-free reference");
  MergeFingerprint reference =
      bench::CheckedValue(RunMerge(1, {}, ""), "reference merge");
  std::printf("reference: %llu executions, best_index %d\n",
              static_cast<unsigned long long>(reference.executions),
              reference.best_index);

  // --- the sweep ----------------------------------------------------------
  // Every trial either recovers to the bit-identical fingerprint
  // (recovered_merges) or fails with a typed status (typed_failures). A
  // wrong winner is an immediate FAIL; a hang trips the CI watchdog.
  uint64_t recovered_merges = 0;
  uint64_t typed_failures = 0;
  uint64_t wrong_winners = 0;

  bench::Section("seeded merge sweep");
  for (uint64_t seed : seeds) {
    storage::LocalServerCluster servers;
    storage::LocalServerCluster::Options options;
    options.server_binary = MLCASK_SERVER_BIN;
    options.fault_spec = "seed=" + std::to_string(seed) + ",delay_ms=2:0.05";
    bench::CheckOk(servers.Start(kShards, options), "cluster start");
    const std::string client_spec = "seed=" + std::to_string(seed + 1) +
                                    ",drop=0.01,dropafter=0.01";
    auto fp = RunMerge(kShards, servers.endpoints(), client_spec);
    if (!fp.ok()) {
      // A typed failure is an acceptable outcome — the contract forbids
      // hangs and wrong answers, not honest errors.
      ++typed_failures;
      std::printf("seed %llu: typed failure: %s\n",
                  static_cast<unsigned long long>(seed),
                  fp.status().ToString().c_str());
    } else if (*fp == reference) {
      ++recovered_merges;
      std::printf("seed %llu: recovered, fingerprint identical\n",
                  static_cast<unsigned long long>(seed));
    } else {
      ++wrong_winners;
      std::printf("seed %llu: WRONG WINNER (executions %llu vs %llu)\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(fp->executions),
                  static_cast<unsigned long long>(reference.executions));
    }
    bench::CheckOk(servers.Stop(), "cluster stop");
  }

  // --- kill -9 + durable recovery drill -----------------------------------
  bench::Section("kill -9 recovery drill");
  uint64_t recovered_transactions = 0;
  uint64_t staged_residue = 0;
  {
    storage::LocalServerCluster servers;
    storage::LocalServerCluster::Options options;
    options.server_binary = MLCASK_SERVER_BIN;
    options.durable = true;
    bench::CheckOk(servers.Start(2, options), "durable cluster start");
    {
      auto cluster = bench::CheckedValue(
          storage::ConnectCluster(servers.endpoints()), "connect");
      // Debris of a coordinator that died after its commit decision.
      for (size_t s = 0; s < 2; ++s) {
        bench::CheckOk(cluster->shard(s)
                           ->Put("__2pc__/txn42/s" + std::to_string(s) + "/w0",
                                 std::string("__2pc-intent__\x1f") +
                                     "pipeline/drill/commits" + '\x1f' +
                                     "the-commit")
                           .status(),
                       "stage intent");
      }
      bench::CheckOk(cluster->shard(0)
                         ->Put("__2pc__/txn42/decision",
                               std::string("__2pc-intent__\x1f") + "commit")
                         .status(),
                     "stage decision");
    }
    for (size_t s = 0; s < 2; ++s) {
      bench::CheckOk(servers.KillShard(s), "kill -9");
    }
    for (size_t s = 0; s < 2; ++s) {
      bench::CheckOk(servers.RestartShard(s), "restart");
    }
    auto cluster = bench::CheckedValue(
        storage::ConnectCluster(servers.endpoints()), "reconnect");
    bench::CheckOk(cluster->RecoverTwoPhase(), "recover");
    recovered_transactions =
        cluster->two_phase_stats().recovered_transactions;
    staged_residue = CountStagedKeys(*cluster);
    bench::CheckOk(servers.Stop(), "durable cluster stop");
    std::printf("recovered %llu transaction(s), %llu staged keys left\n",
                static_cast<unsigned long long>(recovered_transactions),
                static_cast<unsigned long long>(staged_residue));
  }

  // --- migration under injected faults ------------------------------------
  // Elastic rebalance with the SAME fault schedules live on both sides of
  // the wire. The contract mirrors the merge sweep: AddShard either
  // completes or returns a typed status (the durable plan keeps the
  // migration resumable either way) — and in EVERY outcome each
  // acknowledged write still reads back. Reads retry a few times because
  // the injector keeps dropping ~1% of calls afterwards; a drop absorbed
  // by redial replay is noise, a key no retry can see is loss.
  bench::Section("migration under injected faults");
  uint64_t migration_recovered = 0;
  uint64_t migration_typed_errors = 0;
  uint64_t migration_lost_keys = 0;
  for (uint64_t seed : seeds) {
    storage::LocalServerCluster servers;
    storage::LocalServerCluster::Options options;
    options.server_binary = MLCASK_SERVER_BIN;
    options.fault_spec = "seed=" + std::to_string(seed) + ",delay_ms=2:0.05";
    bench::CheckOk(servers.Start(2, options), "migration cluster start");

    storage::SocketTransport::Options client;
    auto spec = storage::FaultSpec::Parse("seed=" + std::to_string(seed + 1) +
                                          ",drop=0.01,dropafter=0.01");
    bench::CheckOk(spec.status(), "client fault spec");
    client.injector = std::make_shared<storage::FaultInjector>(*spec);
    auto cluster = bench::CheckedValue(
        storage::ConnectCluster(servers.endpoints(),
                                storage::ShardedStorageEngine::Options(),
                                client),
        "migration cluster connect");

    // Only acknowledged writes join the loss contract; a put the injector
    // failed with a typed status made no durability promise.
    std::map<std::string, std::string> acked;
    for (size_t i = 0; i < 32; ++i) {
      const std::string key = "artifact/obj" + std::to_string(i);
      if (cluster->Put(key, "payload " + key).ok()) {
        acked[key] = "payload " + key;
      }
    }

    auto endpoint = servers.AddShard();
    bench::CheckOk(endpoint.status(), "spawn joining shard");
    Status migrated = Status::Ok();
    auto transport = storage::SocketTransport::Connect(*endpoint, client);
    if (!transport.ok()) {
      migrated = transport.status();
    } else {
      migrated = cluster->AddShard(std::make_unique<storage::RemoteStorageEngine>(
          *std::move(transport)));
    }
    if (!migrated.ok()) {
      ++migration_typed_errors;
      std::printf("seed %llu: migration typed error: %s\n",
                  static_cast<unsigned long long>(seed),
                  migrated.ToString().c_str());
      // Best effort: a typed failure leaves the durable plan behind, so one
      // resume attempt is fair game. Keys must read back either way.
      (void)cluster->ResumeMigration();
    }

    size_t lost = 0;
    for (const auto& [key, payload] : acked) {
      bool seen = false;
      for (int attempt = 0; attempt < 5 && !seen; ++attempt) {
        auto got = cluster->Get(key);
        seen = got.ok() && *got == payload;
      }
      if (!seen) ++lost;
    }
    migration_lost_keys += lost;
    if (migrated.ok() && lost == 0) {
      ++migration_recovered;
      std::printf("seed %llu: migration recovered, %zu/%zu keys intact\n",
                  static_cast<unsigned long long>(seed), acked.size(),
                  acked.size());
    } else if (lost > 0) {
      std::printf("seed %llu: LOST %zu of %zu acknowledged keys\n",
                  static_cast<unsigned long long>(seed), lost, acked.size());
    }
    bench::CheckOk(servers.Stop(), "migration cluster stop");
  }

  // --- verdict ------------------------------------------------------------
  // Reaching this line at all means zero hangs (the CI watchdog would have
  // killed us); the metric makes the claim explicit in the report.
  const uint64_t hangs = 0;
  reporter.Metric("chaos", "trials", static_cast<double>(seeds.size()));
  reporter.Metric("chaos", "recovered_merges",
                  static_cast<double>(recovered_merges));
  reporter.Metric("chaos", "typed_failures",
                  static_cast<double>(typed_failures));
  reporter.Metric("chaos", "wrong_winners",
                  static_cast<double>(wrong_winners));
  reporter.Metric("chaos", "hangs", static_cast<double>(hangs));
  reporter.Metric("chaos", "recovered_transactions",
                  static_cast<double>(recovered_transactions));
  reporter.Metric("chaos", "staged_residue",
                  static_cast<double>(staged_residue));
  // migration_lost_keys carries the exact zero-tolerance "lost_keys" gate;
  // the recovered/typed split is recorded for the trajectory but left
  // ungated (which calls a drop fault lands on can shift with async
  // interleaving, losing a key cannot).
  reporter.Metric("migration", "trials", static_cast<double>(seeds.size()));
  reporter.Metric("migration", "migration_recovered",
                  static_cast<double>(migration_recovered));
  reporter.Metric("migration", "migration_typed_errors",
                  static_cast<double>(migration_typed_errors));
  reporter.Metric("migration", "migration_lost_keys",
                  static_cast<double>(migration_lost_keys));
  reporter.Write(args.json_path);

  std::printf(
      "\n%llu/%zu merges recovered bit-identical, %llu typed failures, "
      "%llu wrong winners, %llu hangs\n",
      static_cast<unsigned long long>(recovered_merges), seeds.size(),
      static_cast<unsigned long long>(typed_failures),
      static_cast<unsigned long long>(wrong_winners),
      static_cast<unsigned long long>(hangs));
  if (wrong_winners > 0 || staged_residue > 0 ||
      recovered_transactions != 1 || migration_lost_keys > 0) {
    std::printf("CHAOS SUITE: FAIL\n");
    return 1;
  }
  std::printf("CHAOS SUITE: PASS\n");
  return 0;
}
