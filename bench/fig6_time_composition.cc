// Reproduces Fig. 6: pipeline-time composition (storage / pre-processing /
// model-training) accumulated over the 10 linear-versioning iterations, per
// system and workload. Expected shape (paper Sec. VII-C): model-training
// time is comparable across systems; the main difference is pre-processing
// (ModelDB redoes it every iteration); baselines' storage time is near zero
// while MLCask pays a few seconds per materialization.

#include <cstdio>

#include "baselines/system_under_test.h"
#include "bench_util.h"
#include "sim/libraries.h"
#include "sim/linear_driver.h"
#include "sim/workloads.h"

namespace mlcask {
namespace {

constexpr double kScale = 0.25;

void RunWorkload(const std::string& name,
                 const pipeline::LibraryRegistry& registry) {
  sim::Workload workload =
      bench::CheckedValue(sim::MakeWorkload(name, kScale), "MakeWorkload");
  auto schedule = bench::CheckedValue(sim::BuildLinearSchedule(workload, {}),
                                      "BuildLinearSchedule");

  bench::Section(name);
  std::printf("%-10s%16s%16s%16s%14s\n", "system", "storage(s)",
              "preprocess(s)", "training(s)", "total(s)");
  for (const auto& config :
       {baselines::ModelDbConfig(), baselines::MlflowConfig(),
        baselines::MlcaskConfig()}) {
    baselines::SystemUnderTest system(config, &registry);
    auto stats = bench::CheckedValue(sim::ReplaySchedule(schedule, &system),
                                     "ReplaySchedule");
    TimeBreakdown total;
    for (const auto& s : stats) total += s.time;
    std::printf("%-10s%16.1f%16.1f%16.1f%14.1f\n", config.name.c_str(),
                total.storage_s, total.preprocess_s, total.train_s,
                total.Total());
  }
}

}  // namespace
}  // namespace mlcask

int main() {
  using namespace mlcask;
  bench::Banner("Fig. 6",
                "pipeline time composition for linear versioning (simulated s)");
  std::printf("scale=%.2f, cumulative over 10 iterations\n", kScale);
  pipeline::LibraryRegistry registry;
  bench::CheckOk(sim::RegisterWorkloadLibraries(&registry),
                 "RegisterWorkloadLibraries");
  for (const std::string& name : sim::WorkloadNames()) {
    RunWorkload(name, registry);
  }
  return 0;
}
