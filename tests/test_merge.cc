#include "merge/merge_op.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "merge/compat_lut.h"
#include "merge/search_space.h"
#include "merge/search_tree.h"
#include "sim/scenario.h"

namespace mlcask::merge {
namespace {

using sim::BuildTwoBranchScenario;
using sim::Deployment;
using sim::MakeDeployment;
using sim::ScenarioInfo;

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = MakeDeployment("readmission", /*scale=*/0.08);
    MLCASK_CHECK_OK(d.status());
    deployment_ = *std::move(d);
    auto info = BuildTwoBranchScenario(deployment_.get());
    MLCASK_CHECK_OK(info.status());
    info_ = *info;
  }

  MergeOperation MakeOp() {
    return MergeOperation(deployment_->repo.get(),
                          deployment_->libraries.get(),
                          deployment_->registry.get(),
                          deployment_->engine.get(), deployment_->clock.get());
  }

  std::unique_ptr<Deployment> deployment_;
  ScenarioInfo info_;
};

TEST_F(MergeTest, SearchSpaceMatchesFig3) {
  auto space = BuildSearchSpace(*deployment_->repo, *deployment_->libraries,
                                "master", "dev");
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->components.size(), 4u);
  EXPECT_EQ(space->components[0].component, "dataset");
  EXPECT_EQ(space->components[0].versions.size(), 1u);
  EXPECT_EQ(space->components[1].component, "data_cleansing");
  EXPECT_EQ(space->components[1].versions.size(), 2u);
  EXPECT_EQ(space->components[2].component, "feature_extract");
  EXPECT_EQ(space->components[2].versions.size(), 2u);
  EXPECT_EQ(space->components[3].component, "cnn");
  // The model experienced 5 versions since the common ancestor (Sec. V).
  EXPECT_EQ(space->components[3].versions.size(), 5u);
  EXPECT_EQ(space->NumCandidates(), 20u);
}

TEST_F(MergeTest, CompatLutSplitsModelVersions) {
  auto space = BuildSearchSpace(*deployment_->repo, *deployment_->libraries,
                                "master", "dev");
  ASSERT_TRUE(space.ok());
  CompatLut lut = CompatLut::Build(*space);
  const auto& fe = space->components[2].versions;
  const auto& cnn = space->components[3].versions;
  ASSERT_EQ(fe.size(), 2u);
  // Count compatible models per feature-extraction version: {3, 2} as in
  // Fig. 4 ("CNN 0.0/0.1/0.4 follow FE 0.0; CNN 0.2/0.3 follow FE 1.0").
  std::vector<size_t> counts;
  for (const auto& f : fe) {
    size_t n = 0;
    for (const auto& m : cnn) {
      if (lut.Compatible(f, m)) ++n;
    }
    counts.push_back(n);
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<size_t>{2, 3}));
}

TEST_F(MergeTest, TreeBuildAndPruneMatchFig4) {
  auto space = BuildSearchSpace(*deployment_->repo, *deployment_->libraries,
                                "master", "dev");
  ASSERT_TRUE(space.ok());
  PipelineSearchTree tree = PipelineSearchTree::Build(*space);
  // 1 dataset + 2 cleansing + 4 extraction + 20 model nodes.
  EXPECT_EQ(tree.NumNodes(), 27u);
  EXPECT_EQ(tree.NumLeaves(), 20u);

  CompatLut lut = CompatLut::Build(*space);
  size_t pruned = tree.PruneIncompatible(lut);
  EXPECT_EQ(pruned, 10u);
  // "the size of the pre-merge pipeline candidate set can be reduced to
  // half of its original size."
  EXPECT_EQ(tree.NumLeaves(), 10u);
  EXPECT_EQ(tree.Candidates().size(), 10u);
  for (const CandidateChain& c : tree.Candidates()) {
    ASSERT_EQ(c.size(), 4u);
    for (size_t i = 0; i + 1 < c.size(); ++i) {
      EXPECT_TRUE(c[i]->CompatibleWith(*c[i + 1]));
    }
  }
}

TEST_F(MergeTest, MlcaskMergeExecutesOnlySixComponents) {
  MergeOperation op = MakeOp();
  MergeOptions opts;  // PC + PR on
  auto report = op.Merge("master", "dev", opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->fast_forward);
  EXPECT_EQ(report->candidates_total, 20u);
  EXPECT_EQ(report->candidates_considered, 10u);
  EXPECT_EQ(report->pruned_by_compatibility, 10u);
  // The paper's Fig. 4 walkthrough: "only 6 components ... corresponding to
  // 5 pipelines, are needed to be executed."
  EXPECT_EQ(report->component_executions, 6u);
  EXPECT_GE(report->checkpoints_marked, 10u);
  EXPECT_GE(report->best_index, 0);
  EXPECT_GT(report->best_score, 0.5);

  // The merge commit exists on master with two parents.
  auto head = deployment_->repo->Head("master");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ((*head)->id, report->merge_commit);
  ASSERT_EQ((*head)->parents.size(), 2u);
  EXPECT_DOUBLE_EQ((*head)->snapshot.score, report->best_score);
}

TEST_F(MergeTest, AblationOrderingMatchesFig8) {
  // Run the three arms on identical deployments and compare work done.
  auto run_arm = [&](bool pc, bool pr) {
    auto d = MakeDeployment("readmission", 0.08);
    MLCASK_CHECK_OK(d.status());
    MLCASK_CHECK_OK(BuildTwoBranchScenario(d->get()).status());
    MergeOperation op((*d)->repo.get(), (*d)->libraries.get(),
                      (*d)->registry.get(), (*d)->engine.get(),
                      (*d)->clock.get());
    MergeOptions opts;
    opts.prune_compatibility = pc;
    opts.reuse_outputs = pr;
    opts.store_trial_outputs = !pr;  // ablation arms archive trial outputs
    auto report = op.Merge("master", "dev", opts);
    MLCASK_CHECK_OK(report.status());
    return *std::move(report);
  };

  MergeReport mlcask = run_arm(true, true);
  MergeReport no_pr = run_arm(true, false);
  MergeReport no_pcpr = run_arm(false, false);

  // Candidate counts: 10, 10, 20.
  EXPECT_EQ(mlcask.candidates_considered, 10u);
  EXPECT_EQ(no_pr.candidates_considered, 10u);
  EXPECT_EQ(no_pcpr.candidates_considered, 20u);

  // Executions: 6 (tree-dedup), 40 (10 pipelines x 4 components from
  // scratch), 70 (40 + 10 incompatible pipelines failing at the model).
  EXPECT_EQ(mlcask.component_executions, 6u);
  EXPECT_EQ(no_pr.component_executions, 40u);
  EXPECT_EQ(no_pcpr.component_executions, 70u);

  // Cumulative pipeline time (CPT) ordering of Fig. 8: MLCask wins big;
  // w/o PR beats w/o PCPR by a smaller margin.
  EXPECT_LT(mlcask.total_time.Total(), no_pr.total_time.Total());
  EXPECT_LT(no_pr.total_time.Total(), no_pcpr.total_time.Total());

  // Incompatible candidates appear only in the w/o PCPR arm, and they fail
  // after burning pre-processing time.
  size_t incompatible = 0;
  for (const auto& o : no_pcpr.outcomes) {
    if (o.incompatible) {
      ++incompatible;
      EXPECT_GT(o.time.preprocess_s, 0.0);
    }
  }
  EXPECT_EQ(incompatible, 10u);

  // All arms find the same winner (same search space, same scores).
  EXPECT_DOUBLE_EQ(mlcask.best_score, no_pr.best_score);
  EXPECT_DOUBLE_EQ(no_pr.best_score, no_pcpr.best_score);

  // Storage: MLCask materializes only the winner; the ablations archive
  // every trial (Fig. 8b's CSS gap).
  EXPECT_LT(mlcask.storage_bytes, no_pr.storage_bytes);
}

TEST_F(MergeTest, MetricDrivenMergePicksArgmax) {
  MergeOperation op = MakeOp();
  auto report = op.Merge("master", "dev", {});
  ASSERT_TRUE(report.ok());
  for (const auto& outcome : report->outcomes) {
    if (!outcome.incompatible) {
      EXPECT_LE(outcome.score, report->best_score);
    }
  }
  const auto& best =
      report->outcomes[static_cast<size_t>(report->best_index)];
  EXPECT_DOUBLE_EQ(best.score, report->best_score);
}

TEST_F(MergeTest, MergedSnapshotIsCompatibleAndPersisted) {
  MergeOperation op = MakeOp();
  auto report = op.Merge("master", "dev", {});
  ASSERT_TRUE(report.ok());
  auto head = deployment_->repo->Head("master");
  ASSERT_TRUE(head.ok());
  const auto& records = (*head)->snapshot.components;
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_EQ(records[i].output_schema, records[i + 1].input_schema);
  }
  // Winner outputs were materialized exactly once into the engine.
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.has_output());
    EXPECT_TRUE(deployment_->engine->HasVersion(rec.output_id));
  }
}

TEST(MergeFastForwardTest, NoSearchWhenHeadIsAncestor) {
  auto d = MakeDeployment("readmission", 0.08);
  ASSERT_TRUE(d.ok());
  auto& dep = **d;
  // Only dev commits after the fork -> fast-forward (Fig. 2).
  MLCASK_CHECK_OK(
      dep.RunAndCommit(dep.workload.initial, "master", "a", "init").status());
  auto model = *dep.workload.initial.Find(dep.workload.model);
  auto updated = sim::WithComponent(dep.workload.initial,
                                    sim::BumpIncrement(*model));
  ASSERT_TRUE(updated.ok());
  MLCASK_CHECK_OK(dep.RunAndCommit(*updated, "dev", "b", "model 0.1").status());

  MergeOperation op(dep.repo.get(), dep.libraries.get(), dep.registry.get(),
                    dep.engine.get(), dep.clock.get());
  auto report = op.Merge("master", "dev", {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->fast_forward);
  EXPECT_EQ(report->component_executions, 0u);
  EXPECT_TRUE(report->outcomes.empty());
  auto head = dep.repo->Head("master");
  ASSERT_TRUE(head.ok());
  ASSERT_EQ((*head)->parents.size(), 2u);
  // Merge result duplicates the dev snapshot.
  EXPECT_EQ((*head)->snapshot.components[3].version.ToString(), "0.1");
}

TEST(MergeScenarioSweep, AllWorkloadsMergeCleanly) {
  for (const std::string& name : sim::WorkloadNames()) {
    auto d = MakeDeployment(name, 0.04);
    ASSERT_TRUE(d.ok()) << name;
    ASSERT_TRUE(BuildTwoBranchScenario(d->get()).ok()) << name;
    MergeOperation op((*d)->repo.get(), (*d)->libraries.get(),
                      (*d)->registry.get(), (*d)->engine.get(),
                      (*d)->clock.get());
    auto report = op.Merge("master", "dev", {});
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_GE(report->best_index, 0) << name;
    EXPECT_GT(report->candidates_considered, 0u) << name;
    EXPECT_LT(report->candidates_considered, report->candidates_total) << name;
  }
}

}  // namespace
}  // namespace mlcask::merge
