#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/strings.h"

namespace mlcask {
namespace {

TEST(RngTest, Deterministic) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, SeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Pcg32 rng(7);
  for (uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Pcg32 rng(42);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Pcg32 rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.4, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Pcg32 rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clk;
  EXPECT_DOUBLE_EQ(clk.Now(), 0.0);
  clk.Advance(1.5);
  clk.Advance(2.0);
  EXPECT_DOUBLE_EQ(clk.Now(), 3.5);
  clk.Advance(-10.0);  // negative ignored
  EXPECT_DOUBLE_EQ(clk.Now(), 3.5);
  clk.Reset();
  EXPECT_DOUBLE_EQ(clk.Now(), 0.0);
}

TEST(TimeBreakdownTest, SumsBuckets) {
  TimeBreakdown a{1, 2, 3};
  TimeBreakdown b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.preprocess_s, 1.5);
  EXPECT_DOUBLE_EQ(a.train_s, 2.5);
  EXPECT_DOUBLE_EQ(a.storage_s, 3.5);
  EXPECT_DOUBLE_EQ(a.Total(), 7.5);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "."), "x.y.z");
  EXPECT_EQ(StrSplit(StrJoin(parts, "."), '.'), parts);
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  abc \t\n"), "abc");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("a b"), "a b");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("master@0.1", "master"));
  EXPECT_FALSE(StartsWith("dev", "master"));
  EXPECT_TRUE(EndsWith("file.json", ".json"));
  EXPECT_FALSE(EndsWith("file.json", ".yaml"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("MixedCASE123"), "mixedcase123");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, ParseUint) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint("", &v));
  EXPECT_FALSE(ParseUint("12a", &v));
  EXPECT_FALSE(ParseUint("-3", &v));
  EXPECT_FALSE(ParseUint("18446744073709551616", &v));  // overflow
}

}  // namespace
}  // namespace mlcask
