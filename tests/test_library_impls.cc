// Behavioural tests of the workload library implementations themselves —
// the computational units the pipelines are made of.

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "data/generators.h"
#include "pipeline/library_registry.h"
#include "sim/libraries.h"

namespace mlcask::sim {
namespace {

using data::Column;
using data::Table;
using pipeline::ExecInput;
using pipeline::ExecOutput;

class LibraryImplTest : public ::testing::Test {
 protected:
  LibraryImplTest() { MLCASK_CHECK_OK(RegisterWorkloadLibraries(&registry_)); }

  StatusOr<ExecOutput> Call(const std::string& impl, const Table* input,
                            Json params, uint64_t seed = 1) {
    auto fn = registry_.Get(impl);
    MLCASK_RETURN_IF_ERROR(fn.status());
    ExecInput in;
    in.input = input;
    if (input != nullptr) in.inputs = {input};
    params_storage_ = std::move(params);
    in.params = &params_storage_;
    in.seed = seed;
    return (**fn)(in);
  }

  pipeline::LibraryRegistry registry_;
  Json params_storage_ = Json::Object();
};

TEST_F(LibraryImplTest, CleanseImputeFillsEverything) {
  auto raw = data::GenerateReadmissionData(400, 3, 0, /*missing_rate=*/0.2);
  ASSERT_TRUE(raw.ok());
  auto out = Call("cleanse_impute", &*raw, Json::Object());
  ASSERT_TRUE(out.ok());
  for (const Column& c : out->table.columns()) {
    for (double v : c.doubles) {
      EXPECT_FALSE(std::isnan(v)) << c.name;
    }
    for (const std::string& s : c.strings) {
      EXPECT_FALSE(s.empty()) << c.name;
    }
  }
}

TEST_F(LibraryImplTest, CleanseMeanVsZeroStrategiesDiffer) {
  auto raw = data::GenerateReadmissionData(300, 5, 0, 0.3);
  ASSERT_TRUE(raw.ok());
  Json mean_params = Json::Object();
  mean_params.Set("strategy", Json::Str("mean"));
  Json zero_params = Json::Object();
  zero_params.Set("strategy", Json::Str("zero"));
  auto mean_out = Call("cleanse_impute", &*raw, std::move(mean_params));
  auto zero_out = Call("cleanse_impute", &*raw, std::move(zero_params));
  ASSERT_TRUE(mean_out.ok() && zero_out.ok());
  EXPECT_NE(mean_out->table.Serialize(), zero_out->table.Serialize());

  Json bad = Json::Object();
  bad.Set("strategy", Json::Str("median"));
  EXPECT_TRUE(Call("cleanse_impute", &*raw, std::move(bad))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(LibraryImplTest, PreprocessorsRequireInput) {
  for (const char* impl :
       {"cleanse_impute", "extract_ehr_features", "hmm_smooth",
        "corpus_process", "train_embedding", "pool_features",
        "zernike_features", "autolearn_features", "autolearn_select",
        "train_mlp", "train_logreg", "train_adaboost"}) {
    EXPECT_FALSE(Call(impl, nullptr, Json::Object()).ok()) << impl;
  }
}

TEST_F(LibraryImplTest, ExtractProducesStandardizedFeatures) {
  Json gen = Json::Object();
  gen.Set("rows", Json::Int(500));
  gen.Set("missing_rate", Json::Number(0.0));
  auto raw = Call("gen_readmission", nullptr, std::move(gen));
  ASSERT_TRUE(raw.ok());
  auto out = Call("extract_ehr_features", &raw->table, Json::Object());
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->table.HasColumn("label"));
  ASSERT_TRUE(out->table.HasColumn("f0"));
  const Column* f0 = *out->table.GetColumn("f0");
  double mean = 0;
  for (double v : f0->doubles) mean += v;
  mean /= static_cast<double>(f0->doubles.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST_F(LibraryImplTest, ExtractVariantAddsColumns) {
  Json gen = Json::Object();
  gen.Set("rows", Json::Int(200));
  auto raw = Call("gen_readmission", nullptr, std::move(gen));
  ASSERT_TRUE(raw.ok());
  auto base = Call("extract_ehr_features", &raw->table, Json::Object());
  Json v1 = Json::Object();
  v1.Set("variant", Json::Int(1));
  auto variant = Call("extract_ehr_features", &raw->table, std::move(v1));
  ASSERT_TRUE(base.ok() && variant.ok());
  EXPECT_GT(variant->table.num_columns(), base->table.num_columns());
}

TEST_F(LibraryImplTest, HmmSmoothReducesVariancePerPatient) {
  Json gen = Json::Object();
  gen.Set("patients", Json::Int(30));
  gen.Set("visits", Json::Int(16));
  auto raw = Call("gen_dpm", nullptr, std::move(gen));
  ASSERT_TRUE(raw.ok());
  Json params = Json::Object();
  params.Set("num_states", Json::Int(3));
  auto out = Call("hmm_smooth", &raw->table, std::move(params));
  ASSERT_TRUE(out.ok());
  // Smoothing shrinks within-column variance (posterior means live between
  // the state means).
  const Column* before = *raw->table.GetColumn("lab_0");
  const Column* after = *out->table.GetColumn("lab_0");
  auto variance = [](const std::vector<double>& v) {
    double m = 0;
    for (double x : v) m += x;
    m /= static_cast<double>(v.size());
    double var = 0;
    for (double x : v) var += (x - m) * (x - m);
    return var / static_cast<double>(v.size());
  };
  EXPECT_LT(variance(after->doubles), variance(before->doubles));
  // Grouping key and label pass through.
  EXPECT_TRUE(out->table.HasColumn("patient_id"));
  EXPECT_TRUE(out->table.HasColumn("label"));
}

TEST_F(LibraryImplTest, CorpusProcessNormalizesAndCounts) {
  Table t;
  MLCASK_CHECK_OK(t.AddStringColumn(
      "review", {"Great MOVIE, loved it!", "a b c"}));
  MLCASK_CHECK_OK(t.AddIntColumn("label", {1, 0}));
  auto out = Call("corpus_process", &t, Json::Object());
  ASSERT_TRUE(out.ok());
  const Column* reviews = *out->table.GetColumn("review");
  EXPECT_EQ(reviews->strings[0], "great movie loved it");
  const Column* counts = *out->table.GetColumn("token_count");
  EXPECT_DOUBLE_EQ(counts->doubles[0], 4.0);
  // Variant 1 drops single-character tokens.
  Json v1 = Json::Object();
  v1.Set("variant", Json::Int(1));
  auto out1 = Call("corpus_process", &t, std::move(v1));
  ASSERT_TRUE(out1.ok());
  EXPECT_DOUBLE_EQ((*out1->table.GetColumn("token_count"))->doubles[1], 0.0);
}

TEST_F(LibraryImplTest, EmbeddingProducesDocVectorsAndVocabMeta) {
  auto raw = data::GenerateReviews(200, 11);
  ASSERT_TRUE(raw.ok());
  Table renamed;
  MLCASK_CHECK_OK(renamed.AddStringColumn(
      "review", (*raw->GetColumn("review"))->strings));
  MLCASK_CHECK_OK(
      renamed.AddIntColumn("label", (*raw->GetColumn("sentiment"))->ints));
  Json params = Json::Object();
  params.Set("dims", Json::Int(8));
  auto out = Call("train_embedding", &renamed, std::move(params));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->table.HasColumn("emb0"));
  EXPECT_TRUE(out->table.HasColumn("emb7"));
  EXPECT_FALSE(out->table.HasColumn("emb8"));
  EXPECT_GT(std::stoul(out->table.meta().at("vocab_size")), 10u);
}

TEST_F(LibraryImplTest, PoolFeaturesStandardizesAndClipsOnVariant) {
  Table t;
  MLCASK_CHECK_OK(t.AddDoubleColumn("big", {100, 200, 300, 400, 100000}));
  MLCASK_CHECK_OK(t.AddIntColumn("label", {0, 1, 0, 1, 1}));
  Json v1 = Json::Object();
  v1.Set("variant", Json::Int(1));
  auto out = Call("pool_features", &t, std::move(v1));
  ASSERT_TRUE(out.ok());
  const Column* big = *out->table.GetColumn("big");
  for (double v : big->doubles) {
    EXPECT_GE(v, -3.0);
    EXPECT_LE(v, 3.0);
  }
}

TEST_F(LibraryImplTest, AutolearnSelectKeepsTopK) {
  auto digits = data::GenerateDigits(60, 16, 3);
  ASSERT_TRUE(digits.ok());
  Table features;
  // Ten arbitrary pixel columns as candidate features + label.
  for (int i = 0; i < 10; ++i) {
    std::string name = "px" + std::to_string(i * 20);
    MLCASK_CHECK_OK(features.AddDoubleColumn(
        name, (*digits->GetColumn(name))->doubles));
  }
  MLCASK_CHECK_OK(
      features.AddIntColumn("label", (*digits->GetColumn("is_ge5"))->ints));
  Json params = Json::Object();
  params.Set("keep_top_k", Json::Int(4));
  auto out = Call("autolearn_select", &features, std::move(params));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->table.num_columns(), 5u);  // 4 features + label
}

TEST_F(LibraryImplTest, ZernikeRequiresShapeMeta) {
  Table t;
  MLCASK_CHECK_OK(t.AddDoubleColumn("px0", {0.5}));
  MLCASK_CHECK_OK(t.AddIntColumn("label", {1}));
  EXPECT_TRUE(Call("zernike_features", &t, Json::Object())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(LibraryImplTest, ModelsImproveWithVariant) {
  // A capacity/epoch bump (variant) should not catastrophically hurt; its
  // score stays in a sane band. (Strict improvement is data-dependent.)
  Json gen = Json::Object();
  gen.Set("rows", Json::Int(600));
  gen.Set("missing_rate", Json::Number(0.0));
  auto raw = Call("gen_readmission", nullptr, std::move(gen));
  ASSERT_TRUE(raw.ok());
  auto feats = Call("extract_ehr_features", &raw->table, Json::Object());
  ASSERT_TRUE(feats.ok());
  for (int variant : {0, 2}) {
    Json params = Json::Object();
    params.Set("variant", Json::Int(variant));
    auto out = Call("train_mlp", &feats->table, std::move(params));
    ASSERT_TRUE(out.ok());
    EXPECT_GT(out->score, 0.55) << "variant " << variant;
    EXPECT_LE(out->score, 1.0);
  }
}

TEST_F(LibraryImplTest, DatasetSourcesHonorRowParams) {
  Json params = Json::Object();
  params.Set("rows", Json::Int(123));
  auto out = Call("gen_readmission", nullptr, std::move(params));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->table.num_rows(), 123u);
  EXPECT_TRUE(out->table.HasColumn("label"));

  Json dpm = Json::Object();
  dpm.Set("patients", Json::Int(7));
  dpm.Set("visits", Json::Int(5));
  auto dpm_out = Call("gen_dpm", nullptr, std::move(dpm));
  ASSERT_TRUE(dpm_out.ok());
  EXPECT_EQ(dpm_out->table.num_rows(), 35u);
}

}  // namespace
}  // namespace mlcask::sim
