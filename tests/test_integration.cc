// End-to-end integration: the full MLCask lifecycle on one deployment —
// linear evolution, branching, concurrent updates, metric-driven merge,
// retrospective queries, and garbage collection — verifying cross-module
// consistency at every stage.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "version/gc.h"
#include "version/history_query.h"

namespace mlcask {
namespace {

TEST(IntegrationTest, FullLifecycle) {
  auto deployment = sim::MakeDeployment("dpm", /*scale=*/0.06);
  ASSERT_TRUE(deployment.ok());
  sim::Deployment& d = **deployment;

  // --- Phase 1: linear evolution on master --------------------------------
  ASSERT_TRUE(
      d.RunAndCommit(d.workload.initial, "master", "alice", "init").ok());
  pipeline::Pipeline current = d.workload.initial;
  for (int i = 0; i < 3; ++i) {
    auto model = *current.Find(d.workload.model);
    auto updated = sim::WithComponent(current, sim::BumpIncrement(*model));
    ASSERT_TRUE(updated.ok());
    current = *updated;
    ASSERT_TRUE(d.RunAndCommit(current, "master", "alice",
                               "model update " + std::to_string(i + 1))
                    .ok());
  }
  auto master_head = d.repo->Head("master");
  ASSERT_TRUE(master_head.ok());
  EXPECT_EQ((*master_head)->Label(), "master.0.3");

  // Reuse worked: the last model-only update must not have re-run the
  // expensive pre-processing (its commits share upstream output ids).
  version::HistoryQuery query(d.repo.get());
  auto commits = query.AllCommits();
  ASSERT_EQ(commits.size(), 4u);
  const auto& first_components = commits[0]->snapshot.components;
  const auto& last_components = commits[3]->snapshot.components;
  // Same artifact ids for the shared prefix (dataset + preprocessors).
  for (size_t i = 0; i + 1 < first_components.size(); ++i) {
    EXPECT_EQ(first_components[i].output_id, last_components[i].output_id)
        << "prefix artifact should be shared, component " << i;
  }

  // --- Phase 2: branch + concurrent updates -------------------------------
  ASSERT_TRUE(d.repo->Branch("experiment", "master").ok());
  auto pre = *current.Find(d.workload.preprocessors.back());
  auto bumped = sim::BumpSchema(*pre);
  auto model_now = *current.Find(d.workload.model);
  auto adapted = sim::AdaptInputSchema(*model_now, bumped.output_schema);
  // Concurrent updates on different branches would otherwise both claim the
  // next increment; branch-qualified semantic versions (Sec. IV-B) keep the
  // identities distinct.
  adapted.version = adapted.version.OnBranch("experiment");
  bumped.version = bumped.version.OnBranch("experiment");
  auto exp_pipeline = sim::WithComponent(current, bumped);
  ASSERT_TRUE(exp_pipeline.ok());
  exp_pipeline = sim::WithComponent(*exp_pipeline, adapted);
  ASSERT_TRUE(exp_pipeline.ok());
  ASSERT_TRUE(d.RunAndCommit(*exp_pipeline, "experiment", "bob",
                             "schema evolution experiment")
                  .ok());

  // Master keeps moving concurrently.
  auto model_again = sim::BumpIncrement(*model_now);
  auto master_pipeline = sim::WithComponent(current, model_again);
  ASSERT_TRUE(master_pipeline.ok());
  ASSERT_TRUE(
      d.RunAndCommit(*master_pipeline, "master", "alice", "hotfix model").ok());

  // --- Phase 3: metric-driven merge ---------------------------------------
  merge::MergeOperation op(d.repo.get(), d.libraries.get(), d.registry.get(),
                           d.engine.get(), d.clock.get());
  auto report = op.Merge("master", "experiment", {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->fast_forward);
  ASSERT_GE(report->best_index, 0);

  auto merged = d.repo->Head("master");
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ((*merged)->parents.size(), 2u);
  // Merged pipeline is schema-consistent and scored.
  const auto& recs = (*merged)->snapshot.components;
  for (size_t i = 0; i + 1 < recs.size(); ++i) {
    EXPECT_EQ(recs[i].output_schema, recs[i + 1].input_schema);
  }
  EXPECT_TRUE((*merged)->snapshot.has_score());
  // Winner's artifacts are materialized and readable.
  for (const auto& rec : recs) {
    ASSERT_TRUE(rec.has_output());
    auto bytes = d.engine->GetVersion(rec.output_id);
    ASSERT_TRUE(bytes.ok());
    EXPECT_TRUE(data::Table::Deserialize(*bytes).ok());
  }

  // --- Phase 4: retrospective queries -------------------------------------
  const version::Commit* best = query.BestByScore();
  ASSERT_NE(best, nullptr);
  EXPECT_GE(best->snapshot.score, report->best_score - 1e-12);
  auto timeline = query.ComponentTimeline(d.workload.model);
  EXPECT_GE(timeline.size(), 4u);  // 0.0 -> 0.1 -> 0.2 -> 0.3 -> ...
  auto diff = query.Diff(commits[0]->id, (*merged)->id);
  ASSERT_TRUE(diff.ok());
  bool model_changed = false;
  for (const auto& change : *diff) {
    if (change.name == d.workload.model &&
        change.kind != version::ComponentDiff::Kind::kUnchanged) {
      model_changed = true;
    }
  }
  EXPECT_TRUE(model_changed);

  // --- Phase 5: garbage collection ----------------------------------------
  uint64_t css_before = d.engine->stats().physical_bytes;
  auto gc = version::CollectArtifactGarbage(*d.repo, d.engine.get());
  ASSERT_TRUE(gc.ok());
  EXPECT_LE(d.engine->stats().physical_bytes, css_before);
  // Everything referenced still resolves after GC.
  for (const version::Commit* c : query.AllCommits()) {
    for (const auto& rec : c->snapshot.components) {
      if (rec.has_output()) {
        EXPECT_TRUE(d.engine->HasVersion(rec.output_id))
            << c->Label() << "/" << rec.name;
      }
    }
  }
}

TEST(IntegrationTest, RepeatedMergesKeepHistoryConsistent) {
  // Two merge cycles back to back: after the first merge, the dev branch
  // continues from its own head and merges again (common ancestor moves).
  auto deployment = sim::MakeDeployment("readmission", 0.06);
  ASSERT_TRUE(deployment.ok());
  sim::Deployment& d = **deployment;
  ASSERT_TRUE(sim::BuildTwoBranchScenario(&d).ok());

  merge::MergeOperation op(d.repo.get(), d.libraries.get(), d.registry.get(),
                           d.engine.get(), d.clock.get());
  auto first = op.Merge("master", "dev", {});
  ASSERT_TRUE(first.ok());

  // After the merge, dev's head is an ancestor of master's head, so the
  // next common ancestor is dev's head itself.
  auto lca = d.repo->CommonAncestor("master", "dev");
  ASSERT_TRUE(lca.ok());
  auto dev_head = d.repo->Head("dev");
  ASSERT_TRUE(dev_head.ok());
  EXPECT_EQ(*lca, (*dev_head)->id);

  // More work on dev, then a second merge.
  auto dev_commit = d.repo->Head("dev");
  ASSERT_TRUE(dev_commit.ok());
  // Rebuild the dev pipeline from its snapshot via the library repo.
  std::vector<pipeline::ComponentVersionSpec> specs;
  for (const auto& rec : (*dev_commit)->snapshot.components) {
    auto spec = d.libraries->Get(rec.name, rec.version);
    ASSERT_TRUE(spec.ok());
    specs.push_back(**spec);
  }
  auto dev_pipeline = pipeline::Pipeline::Chain("readmission", specs);
  ASSERT_TRUE(dev_pipeline.ok());
  auto model = *dev_pipeline->Find(d.workload.model);
  auto next_model = sim::BumpIncrement(*model);
  // Master's concurrent history already claimed version 0.4 with different
  // contents; qualify the dev line's version with its branch.
  next_model.version = next_model.version.OnBranch("dev");
  auto updated = sim::WithComponent(*dev_pipeline, next_model);
  ASSERT_TRUE(updated.ok());
  ASSERT_TRUE(d.RunAndCommit(*updated, "dev", "frank", "more work").ok());

  auto second = op.Merge("master", "dev", {});
  ASSERT_TRUE(second.ok());
  // The second merge's search space is smaller: only versions since the new
  // ancestor participate.
  EXPECT_LT(second->candidates_total, first->candidates_total + 1);
  auto head = d.repo->Head("master");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ((*head)->parents.size(), 2u);
}

}  // namespace
}  // namespace mlcask
