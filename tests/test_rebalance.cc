// Elastic cluster: live shard add/remove with incremental key migration.
// Covers the ring/plan policy layer (pure functions), id-preserving
// migration on loopback clusters, dual-epoch routing while a migration is
// paused mid-flight, merge-during-rebalance bit-identity, crash-resume over
// REAL server processes (kill -9, durable cursor), the replicated-namespace
// coordinator handoff when shard 0 retires, and the LocalServerCluster
// temp-root cleanup regression.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "storage/forkbase_engine.h"
#include "storage/persistence.h"
#include "storage/remote_engine.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"
#include "storage/socket_transport.h"

#ifndef MLCASK_SERVER_BIN
#define MLCASK_SERVER_BIN ""
#endif

namespace mlcask::storage {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<ShardedStorageEngine> MakeCluster(size_t shards) {
  return MakeLoopbackCluster(
      shards, [] { return std::make_unique<ForkBaseEngine>(); });
}

std::vector<size_t> Slots(size_t n) {
  std::vector<size_t> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = i;
  return members;
}

std::vector<std::string> ObjectKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("artifact/obj" + std::to_string(i));
  }
  return keys;
}

// ------------------------------------------------- ring + plan (policy) ---

TEST(RingPolicyTest, PlanMigrationMovesOnlyOntoTheJoiningSlot) {
  const size_t vnodes = 384;
  ShardRing from = BuildShardRing(0, Slots(4), vnodes);
  ShardRing to = BuildShardRing(1, Slots(5), vnodes);
  std::vector<std::string> keys = ObjectKeys(2000);
  std::vector<KeyMove> moves = PlanMigration(from, to, keys);
  ASSERT_FALSE(moves.empty());
  for (const KeyMove& mv : moves) {
    // Slot labels depend only on the slot id, so adding slot 4 must never
    // shuffle a key between the surviving shards — minimal movement.
    EXPECT_EQ(mv.to, 4u) << mv.key;
    EXPECT_NE(mv.from, 4u);
    EXPECT_EQ(RingOwner(from, mv.key), mv.from);
    EXPECT_EQ(RingOwner(to, mv.key), mv.to);
  }
  // Roughly a 1/5 share moves (loose bounds; the split is hash-driven).
  EXPECT_GT(moves.size(), keys.size() / 10);
  EXPECT_LT(moves.size(), keys.size() / 3);
  // Moves come back sorted by key: the order the durable cursor advances.
  for (size_t i = 1; i < moves.size(); ++i) {
    EXPECT_LT(moves[i - 1].key, moves[i].key);
  }
  // Identity plan = empty plan.
  EXPECT_TRUE(PlanMigration(from, from, keys).empty());
}

TEST(RingPolicyTest, RemovalPlanScattersOnlyTheLeaverKeys) {
  const size_t vnodes = 384;
  ShardRing from = BuildShardRing(0, Slots(4), vnodes);
  ShardRing to = BuildShardRing(1, {0, 2, 3}, vnodes);
  std::vector<KeyMove> moves = PlanMigration(from, to, ObjectKeys(2000));
  ASSERT_FALSE(moves.empty());
  for (const KeyMove& mv : moves) {
    EXPECT_EQ(mv.from, 1u) << mv.key;  // only the leaver's keys move
    EXPECT_NE(mv.to, 1u);
  }
}

/// Satellite: ownership balance. Measured empirically before hard-coding:
/// at the DEFAULT vnode count the max/min ownership ratio stays under 1.3
/// for 2, 4 and 8 shards over 20k keys (16 vnodes skewed to 2.4×, which is
/// why the default is 384).
TEST(RingPolicyTest, OwnershipSkewStaysUnder1Point3) {
  ShardedStorageEngine::Options defaults;
  const std::vector<std::string> keys = ObjectKeys(20000);
  for (size_t shards : {2u, 4u, 8u}) {
    ShardRing ring =
        BuildShardRing(0, Slots(shards), defaults.virtual_nodes_per_shard);
    std::map<size_t, size_t> owned;
    for (const std::string& key : keys) owned[RingOwner(ring, key)] += 1;
    size_t min_owned = keys.size(), max_owned = 0;
    for (size_t s = 0; s < shards; ++s) {
      min_owned = std::min(min_owned, owned[s]);
      max_owned = std::max(max_owned, owned[s]);
    }
    ASSERT_GT(min_owned, 0u) << shards << " shards";
    EXPECT_LT(static_cast<double>(max_owned) /
                  static_cast<double>(min_owned),
              1.3)
        << shards << " shards: min=" << min_owned << " max=" << max_owned;
  }
}

// ------------------------------------------------ loopback live scaling ---

TEST(ElasticClusterTest, AddShardMigratesKeysPreservingIds) {
  auto cluster = MakeCluster(2);
  std::map<std::string, std::vector<Hash256>> ids_before;
  for (const std::string& key : ObjectKeys(40)) {
    ASSERT_TRUE(cluster->Put(key, "v1 of " + key).ok());
    ASSERT_TRUE(cluster->Put(key, "v2 of " + key).ok());
    ids_before[key] = cluster->Versions(key);
    ASSERT_EQ(ids_before[key].size(), 2u);
  }
  ASSERT_TRUE(cluster->Put("pipeline/demo/commits", "commit-json").ok());

  auto added =
      cluster->AddShard(MakeLoopbackShard(std::make_unique<ForkBaseEngine>()));
  ASSERT_TRUE(added.ok()) << added;
  EXPECT_FALSE(cluster->migration_in_progress());
  EXPECT_EQ(cluster->num_shards(), 3u);
  EXPECT_EQ(cluster->ring_epoch(), 1u);

  auto stats = cluster->migration_stats();
  EXPECT_GT(stats.keys_migrated, 0u);
  EXPECT_EQ(stats.versions_migrated, stats.keys_migrated * 2);
  EXPECT_GT(stats.cursor_writes, 0u);

  // Every key reads back, every version id survived the move bit-for-bit.
  for (const auto& [key, ids] : ids_before) {
    auto got = cluster->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, "v2 of " + key);
    EXPECT_EQ(cluster->Versions(key), ids) << key;
    for (const Hash256& id : ids) {
      auto by_id = cluster->GetVersion(id);
      ASSERT_TRUE(by_id.ok()) << key;
    }
  }
  // The new shard actually took ownership of a share of the keys, and the
  // replicated namespace was seeded onto it.
  size_t on_new_shard = 0;
  bool new_shard_has_replicated = false;
  for (const auto& [key, id] : cluster->shard(2)->ListAllVersions()) {
    if (key == "pipeline/demo/commits") {
      new_shard_has_replicated = true;
    } else if (key.rfind("__migration__/", 0) != 0) {
      ++on_new_shard;
    }
  }
  EXPECT_GT(on_new_shard, 0u);
  EXPECT_TRUE(new_shard_has_replicated);
  // The logical view is unchanged: 40 keys x 2 versions + 1 replicated.
  EXPECT_EQ(cluster->ListAllVersions().size(), 81u);
  // The only bookkeeping residue is the durable topology record — the
  // plan and cursor are retired by finalize.
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    for (const auto& [key, id] : cluster->shard(s)->ListAllVersions()) {
      if (key.rfind("__migration__/", 0) == 0) {
        EXPECT_EQ(key, "__migration__/topology") << "shard " << s;
      }
    }
  }
}

/// Regression for the cursor-overtake race: a key written to its OLD owner
/// while a batch pass was in flight could end up at or below the cursor
/// without being migrated — reads went NotFound (data stranded at a shard
/// the router no longer consults for that key) and a re-Put landed at the
/// new owner as ordinal 0, wedging every later MigrateBatch with a
/// permanent "migration id mismatch". The fix tracks such writes in a
/// dirty set that each batch folds in before the cursor advances.
TEST(ElasticClusterTest, WritesDuringMigrationAreNeverLostToTheCursor) {
  // Migration reads versions with GetVersion; the writer only uses
  // Put/Get. Slowing GetVersion alone stretches every batch's in-flight
  // window from microseconds to ~a millisecond, so concurrent writes
  // reliably land inside it — without it the race is too narrow to hit
  // deterministically in-process.
  struct SlowVersionReads : ForkBaseEngine {
    StatusOr<std::string> GetVersion(const Hash256& id) override {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      return ForkBaseEngine::GetVersion(id);
    }
  };
  auto cluster = MakeLoopbackCluster(
      2, [] { return std::make_unique<SlowVersionReads>(); });
  for (const std::string& key : ObjectKeys(120)) {
    ASSERT_TRUE(cluster->Put(key, "seed " + key).ok());
  }

  // Hammer writes concurrently with the migration. The "-live" suffix
  // interleaves the written keys lexicographically with the seeded ones,
  // so every batch boundary is a chance for the cursor to overtake a
  // freshly written key. Re-writing the same 60 keys exercises the re-Put
  // half of the race (ordinal-0 copies at the new owner).
  std::atomic<bool> stop{false};
  std::map<std::string, std::string> last_acked;
  std::map<std::string, size_t> puts_per_key;
  std::vector<std::string> writer_failures;
  std::thread writer([&] {
    size_t counter = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string key =
          "artifact/obj" + std::to_string(counter % 60) + "-live";
      const std::string value = "w" + std::to_string(counter);
      auto put = cluster->Put(key, value);
      if (!put.ok()) {
        writer_failures.push_back(key + ": put: " + put.status().message());
        break;
      }
      last_acked[key] = value;
      puts_per_key[key] += 1;
      // Read-after-write: an acknowledged write must be visible NOW, not
      // after the next migration pass happens to re-enumerate it.
      auto got = cluster->Get(key);
      if (!got.ok()) {
        writer_failures.push_back(key + ": get: " + got.status().message());
        break;
      }
      if (*got != value) {
        writer_failures.push_back(key + ": stale read: got '" + *got +
                                  "' want '" + value + "'");
        break;
      }
      ++counter;
    }
  });

  ShardedStorageEngine::MigrationOptions opts;
  opts.batch_keys = 1;  // maximize cursor advances = race windows
  auto added = cluster->AddShard(
      MakeLoopbackShard(std::make_unique<ForkBaseEngine>()), opts);
  stop.store(true, std::memory_order_release);
  writer.join();

  // Before the fix this failed two ways: the writer saw NotFound/stale
  // reads, and AddShard died with Internal "migration id mismatch".
  ASSERT_TRUE(added.ok()) << added;
  EXPECT_FALSE(cluster->migration_in_progress());
  EXPECT_TRUE(writer_failures.empty())
      << writer_failures.size() << " failures, first: "
      << writer_failures.front();
  ASSERT_GT(puts_per_key.size(), 0u);
  // Every acknowledged write survived the rebalance: latest value AND the
  // full version history (an overtaken re-Put would fork the history).
  for (const auto& [key, value] : last_acked) {
    auto got = cluster->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status();
    EXPECT_EQ(*got, value) << key;
    EXPECT_EQ(cluster->Versions(key).size(), puts_per_key[key]) << key;
  }
}

/// Satellite regression: replicated-prefix reads used to hard-code shard 0.
/// Removing shard 0 (the original coordinator) must hand the replicated
/// namespace and 2PC authority to the next live member.
TEST(ElasticClusterTest, RemoveShardZeroHandsOffTheCoordinator) {
  auto cluster = MakeCluster(3);
  ASSERT_TRUE(cluster->Put("pipeline/demo/commits", "commit-json").ok());
  ASSERT_TRUE(cluster->Put("library/lut", "lut-payload").ok());
  std::map<std::string, std::vector<Hash256>> ids_before;
  for (const std::string& key : ObjectKeys(30)) {
    ASSERT_TRUE(cluster->Put(key, "payload " + key).ok());
    ids_before[key] = cluster->Versions(key);
  }
  ASSERT_EQ(cluster->coordinator_shard(), 0u);

  auto removed = cluster->RemoveShard(0);
  ASSERT_TRUE(removed.ok()) << removed;
  EXPECT_FALSE(cluster->migration_in_progress());
  EXPECT_EQ(cluster->coordinator_shard(), 1u);

  // Replicated metadata still reads through the router (the failing-before
  // case: a hard-coded shard 0 would ask a drained slot).
  auto commits = cluster->Get("pipeline/demo/commits");
  ASSERT_TRUE(commits.ok()) << commits.status();
  EXPECT_EQ(*commits, "commit-json");
  auto lut = cluster->Get("library/lut");
  ASSERT_TRUE(lut.ok());
  EXPECT_EQ(*lut, "lut-payload");
  EXPECT_FALSE(cluster->Versions("pipeline/demo/commits").empty());

  // The drained slot is EMPTY — objects, replicated copies, bookkeeping.
  EXPECT_TRUE(cluster->shard(0)->ListAllVersions().empty());
  // Every object key survived with its id.
  for (const auto& [key, ids] : ids_before) {
    auto got = cluster->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(cluster->Versions(key), ids) << key;
  }
  // Replicated writes still commit by 2PC on the NEW member set.
  ASSERT_TRUE(cluster->Put("pipeline/demo/commits", "commit-json-2").ok());
  for (size_t s : cluster->live_members()) {
    auto got = cluster->shard(s)->Get("pipeline/demo/commits");
    ASSERT_TRUE(got.ok()) << "shard " << s;
    EXPECT_EQ(*got, "commit-json-2");
  }
}

TEST(ElasticClusterTest, PausedMigrationServesDualEpochReadsAndWrites) {
  auto cluster = MakeCluster(2);
  for (const std::string& key : ObjectKeys(60)) {
    ASSERT_TRUE(cluster->Put(key, "payload " + key).ok());
  }
  ShardedStorageEngine::MigrationOptions opts;
  opts.batch_keys = 4;
  opts.max_batches = 1;  // pause after one batch, dual-epoch stays live
  auto added = cluster->AddShard(
      MakeLoopbackShard(std::make_unique<ForkBaseEngine>()), opts);
  ASSERT_TRUE(added.ok()) << added;
  ASSERT_TRUE(cluster->migration_in_progress());
  EXPECT_EQ(cluster->migration_stats().batches, 1u);

  // Mid-migration, every key still reads and writes through the router —
  // already-moved keys route to the new epoch, pending ones to the old.
  for (const std::string& key : ObjectKeys(60)) {
    auto got = cluster->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, "payload " + key);
  }
  ASSERT_TRUE(cluster->Put("artifact/obj7", "rewritten mid-migration").ok());
  ASSERT_TRUE(cluster->Put("pipeline/demo/commits", "mid-migration").ok());

  ShardedStorageEngine::MigrationOptions rest;
  rest.batch_keys = 16;
  auto resumed = cluster->ResumeMigration(rest);
  ASSERT_TRUE(resumed.ok()) << resumed;
  EXPECT_FALSE(cluster->migration_in_progress());
  auto got = cluster->Get("artifact/obj7");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "rewritten mid-migration");
  EXPECT_EQ(cluster->Versions("artifact/obj7").size(), 2u);
  auto commits = cluster->Get("pipeline/demo/commits");
  ASSERT_TRUE(commits.ok());
  EXPECT_EQ(*commits, "mid-migration");
}

/// A destination that already holds a batch's versions (the signature of a
/// driver killed between the copy landing and the cursor write) reports
/// them as SKIPPED, not re-applied — replay is idempotent.
TEST(ElasticClusterTest, ReplayedBatchIsSkippedNotDuplicated) {
  auto cluster = MakeCluster(2);
  std::map<std::string, std::vector<std::string>> payloads;
  for (const std::string& key : ObjectKeys(40)) {
    payloads[key] = {"v1 of " + key, "v2 of " + key};
    for (const std::string& payload : payloads[key]) {
      ASSERT_TRUE(cluster->Put(key, payload).ok());
    }
  }
  // Compute which keys slot 2 will take, then pre-copy a few of them into
  // the new shard's BACKEND before it joins — exactly the on-disk state a
  // kill -9 between MigrateBatch and the cursor write leaves behind.
  ShardedStorageEngine::Options defaults;
  ShardRing from = BuildShardRing(0, Slots(2), defaults.virtual_nodes_per_shard);
  ShardRing to = BuildShardRing(1, Slots(3), defaults.virtual_nodes_per_shard);
  std::vector<KeyMove> plan = PlanMigration(from, to, ObjectKeys(40));
  ASSERT_GT(plan.size(), 2u);
  auto backend = std::make_unique<ForkBaseEngine>();
  size_t pre_copied_versions = 0;
  for (size_t i = 0; i < 2; ++i) {
    MigrateKeyVersions entry;
    entry.key = plan[i].key;
    for (const Hash256& id : cluster->Versions(entry.key)) {
      auto data = cluster->GetVersion(id);
      ASSERT_TRUE(data.ok());
      entry.versions.emplace_back(id, *data);
    }
    auto applied = backend->MigrateBatch({entry});
    ASSERT_TRUE(applied.ok()) << applied.status();
    pre_copied_versions += applied->applied_versions;
  }
  ASSERT_EQ(pre_copied_versions, 4u);

  auto added = cluster->AddShard(MakeLoopbackShard(std::move(backend)));
  ASSERT_TRUE(added.ok()) << added;
  auto stats = cluster->migration_stats();
  EXPECT_EQ(stats.skipped_versions, pre_copied_versions);
  // No duplicate versions anywhere: each key still has exactly v1, v2.
  for (const auto& [key, expect] : payloads) {
    std::vector<Hash256> ids = cluster->Versions(key);
    ASSERT_EQ(ids.size(), 2u) << key;
    for (size_t v = 0; v < 2; ++v) {
      auto data = cluster->GetVersion(ids[v]);
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(*data, expect[v]);
    }
  }
}

/// Regression: ResumeMigration used to treat ANY plan-scan failure as "no
/// plan" — an unreachable shard made the router silently serve single-epoch
/// against a ring that did not match the physical data layout. A scan
/// failure must surface; only NotFound means "no plan here".
TEST(ElasticClusterTest, ResumeMigrationSurfacesPlanScanFailures) {
  struct GetFailsEngine : ForkBaseEngine {
    StatusOr<std::string> Get(const std::string& key) override {
      return Status::Unavailable("injected: shard unreachable");
    }
  };
  std::vector<std::unique_ptr<StorageEngine>> shards;
  shards.push_back(std::make_unique<GetFailsEngine>());
  shards.push_back(std::make_unique<ForkBaseEngine>());
  ShardedStorageEngine cluster(std::move(shards),
                               ShardedStorageEngine::Options());
  auto resumed = cluster.ResumeMigration(ShardedStorageEngine::MigrationOptions());
  ASSERT_FALSE(resumed.ok());
  EXPECT_TRUE(resumed.IsUnavailable()) << resumed;
}

/// Regression: finalize used to retire the plan and cursor without leaving
/// any durable membership record, so a router rebuilt from the ORIGINAL
/// endpoint list (drained slot included) rebuilt an epoch-0 ring containing
/// the empty shard and routed a slice of the keyspace to it. Finalize now
/// persists a __migration__/topology record on every surviving member and
/// ResumeMigration restores it when no plan is found.
TEST(ElasticClusterTest, RebuiltRouterHonorsTheDurableTopologyRecord) {
  std::vector<fs::path> dirs;
  for (size_t s = 0; s < 3; ++s) {
    std::string tmpl = "/tmp/mlcask-topo-XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    ASSERT_NE(made, nullptr);
    dirs.emplace_back(made);
  }
  auto open_cluster = [&] {
    std::vector<std::unique_ptr<StorageEngine>> shards;
    for (const fs::path& dir : dirs) {
      auto backend = DurableForkBaseEngine::Open(dir.string());
      MLCASK_CHECK_OK(backend.status());
      shards.push_back(MakeLoopbackShard(*std::move(backend)));
    }
    return std::make_unique<ShardedStorageEngine>(
        std::move(shards), ShardedStorageEngine::Options());
  };

  std::map<std::string, std::string> expect;
  {
    auto cluster = open_cluster();
    for (const std::string& key : ObjectKeys(30)) {
      expect[key] = "durable " + key;
      ASSERT_TRUE(cluster->Put(key, expect[key]).ok()) << key;
    }
    ASSERT_TRUE(cluster->Put("pipeline/demo/commits", "commit-json").ok());
    expect["pipeline/demo/commits"] = "commit-json";
    auto removed = cluster->RemoveShard(0);
    ASSERT_TRUE(removed.ok()) << removed;
    ASSERT_EQ(cluster->ring_epoch(), 1u);
  }  // the router dies; slot 0's store is drained on disk

  // A fresh router dialing the STALE full endpoint list starts at epoch 0
  // with the drained slot back in the ring...
  auto cluster = open_cluster();
  ASSERT_EQ(cluster->ring_epoch(), 0u);
  // ...until the resume scan finds the durable topology record and
  // reinstalls the post-migration membership.
  auto resumed = cluster->ResumeMigration(ShardedStorageEngine::MigrationOptions());
  ASSERT_TRUE(resumed.ok()) << resumed;
  EXPECT_EQ(cluster->ring_epoch(), 1u);
  EXPECT_EQ(cluster->coordinator_shard(), 1u);
  EXPECT_EQ(cluster->live_members(), (std::vector<size_t>{1, 2}));
  for (const auto& [key, value] : expect) {
    auto got = cluster->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status();
    EXPECT_EQ(*got, value) << key;
  }
  for (const fs::path& dir : dirs) fs::remove_all(dir);
}

/// The byte budget bounds how long one batch holds the transaction lock: a
/// batch of large artifacts ships a truncated prefix and goes around again
/// instead of stalling the control plane for the whole payload.
TEST(ElasticClusterTest, BatchByteBudgetBoundsEachBatchPayload) {
  auto cluster = MakeCluster(2);
  std::map<std::string, std::string> expect;
  for (const std::string& key : ObjectKeys(24)) {
    expect[key] = key + std::string(64 * 1024, 'x');
    ASSERT_TRUE(cluster->Put(key, expect[key]).ok());
  }
  ShardedStorageEngine::MigrationOptions opts;
  opts.batch_keys = 32;           // nominally "everything in one batch"...
  opts.batch_bytes = 64 * 1024;   // ...but the budget caps each at ~1 key
  auto added = cluster->AddShard(
      MakeLoopbackShard(std::make_unique<ForkBaseEngine>()), opts);
  ASSERT_TRUE(added.ok()) << added;
  auto stats = cluster->migration_stats();
  ASSERT_GT(stats.keys_migrated, 1u);
  // Every 64 KiB payload blows the budget on its own, so no batch can have
  // carried more than one key: at least one batch per migrated key.
  EXPECT_GE(stats.batches, stats.keys_migrated);
  for (const auto& [key, value] : expect) {
    auto got = cluster->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

// ------------------------------------------- merge during the rebalance ---

struct MergeFingerprint {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  std::vector<std::string> winner_chain;
  std::vector<std::string> artifact_hashes;

  bool operator==(const MergeFingerprint& other) const {
    return executions == other.executions &&
           best_score == other.best_score &&
           best_index == other.best_index &&
           winner_chain == other.winner_chain &&
           artifact_hashes == other.artifact_hashes;
  }
};

/// Runs the fig9 merge on a fresh `shards`-wide loopback deployment.
/// `mid_merge` (optional) runs on a side thread once the merge has started;
/// the returned deployment keeps the engine alive for inspection.
MergeFingerprint RunMergeWithRebalance(
    size_t shards, const std::function<void(ShardedStorageEngine*)>& mid_merge =
                       nullptr) {
  sim::DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  auto deployment = sim::MakeDeployment("readmission", 0.06, config);
  MLCASK_CHECK_OK(deployment.status());
  auto d = *std::move(deployment);
  MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(d.get()).status());
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.shards = shards;

  std::thread side;
  if (mid_merge != nullptr) {
    ShardedStorageEngine* sharded = d->sharded_engine();
    MLCASK_CHECK_MSG(sharded != nullptr, "deployment engine is not sharded");
    side = std::thread([&, sharded] {
      // Let the merge get underway first, so the topology change genuinely
      // overlaps candidate execution instead of finishing before it starts.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      mid_merge(sharded);
    });
  }
  auto report = op.Merge("master", "dev", options);
  if (side.joinable()) side.join();
  MLCASK_CHECK_OK(report.status());

  MergeFingerprint fp;
  fp.executions = report->component_executions;
  fp.best_score = report->best_score;
  fp.best_index = report->best_index;
  const merge::CandidateChain& winner =
      report->outcomes[static_cast<size_t>(report->best_index)].chain;
  for (const pipeline::ComponentVersionSpec* spec : winner) {
    fp.winner_chain.push_back(spec->Key());
  }
  auto head = d->repo->Head("master");
  MLCASK_CHECK_OK(head.status());
  for (const version::ComponentRecord& rec : (*head)->snapshot.components) {
    fp.artifact_hashes.push_back(rec.output_id.ToHex());
    EXPECT_TRUE(d->engine->HasVersion(rec.output_id));
  }
  return fp;
}

/// The tentpole acceptance: a merge that STARTS before the topology change
/// completes produces the bit-identical winner, execution count and
/// persisted artifact hashes as a fixed-topology run.
TEST(MergeDuringRebalanceTest, AddShardMidMergeIsBitIdentical) {
  MergeFingerprint reference = RunMergeWithRebalance(4);
  Status rebalance = Status::Ok();
  MergeFingerprint live =
      RunMergeWithRebalance(4, [&](ShardedStorageEngine* engine) {
        rebalance = engine->AddShard(
            MakeLoopbackShard(std::make_unique<ForkBaseEngine>()));
      });
  ASSERT_TRUE(rebalance.ok()) << rebalance;
  EXPECT_TRUE(live == reference);
}

TEST(MergeDuringRebalanceTest, RemoveShardMidMergeIsBitIdentical) {
  MergeFingerprint reference = RunMergeWithRebalance(4);
  Status rebalance = Status::Ok();
  MergeFingerprint live =
      RunMergeWithRebalance(4, [&](ShardedStorageEngine* engine) {
        // Retire the original coordinator while candidates execute.
        rebalance = engine->RemoveShard(0);
      });
  ASSERT_TRUE(rebalance.ok()) << rebalance;
  EXPECT_TRUE(live == reference);
}

// ------------------------------------- real processes: kill -9 + resume ---

LocalServerCluster::Options DurableServerOptions() {
  LocalServerCluster::Options options;
  options.server_binary = MLCASK_SERVER_BIN;
  options.durable = true;
  return options;
}

/// The crash drill the durable cursor exists for: pause a migration
/// mid-flight over REAL durable server processes, kill -9 every shard
/// (machine crash), restart them, build a FRESH router with no memory of
/// the migration — ResumeMigration must find the durable plan + cursor and
/// finish the job with zero lost keys.
TEST(ElasticClusterProcessTest, KillNineMidMigrationResumesWithoutLoss) {
  LocalServerCluster servers;
  auto started = servers.Start(2, DurableServerOptions());
  ASSERT_TRUE(started.ok()) << started;

  std::map<std::string, std::string> expect;
  {
    auto cluster = ConnectCluster(servers.endpoints());
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    for (const std::string& key : ObjectKeys(24)) {
      expect[key] = "durable payload " + key;
      ASSERT_TRUE((*cluster)->Put(key, expect[key]).ok()) << key;
    }
    ASSERT_TRUE((*cluster)->Put("pipeline/demo/commits", "commit-json").ok());
    expect["pipeline/demo/commits"] = "commit-json";

    // Scale out by one real process and migrate only ONE batch before
    // pausing: the durable plan + cursor are now on the shards, the
    // migration is provably incomplete.
    auto endpoint = servers.AddShard();
    ASSERT_TRUE(endpoint.ok()) << endpoint.status();
    auto transport = SocketTransport::Connect(*endpoint);
    ASSERT_TRUE(transport.ok()) << transport.status();
    ShardedStorageEngine::MigrationOptions opts;
    opts.batch_keys = 3;
    opts.max_batches = 1;
    auto added = (*cluster)->AddShard(
        std::make_unique<RemoteStorageEngine>(*std::move(transport)), opts);
    ASSERT_TRUE(added.ok()) << added;
    ASSERT_TRUE((*cluster)->migration_in_progress());
    auto stats = (*cluster)->migration_stats();
    ASSERT_EQ(stats.batches, 1u);
    ASSERT_GT(stats.keys_migrated, 0u);
    ASSERT_LT(stats.keys_migrated, expect.size());
  }  // the router dies with its in-memory rings and cursor

  // Machine crash: kill -9 every shard, no flush, no goodbye.
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(servers.KillShard(s).ok()) << s;
  }
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(servers.RestartShard(s).ok()) << s;
  }

  // A fresh router has no idea a migration was running...
  auto cluster = ConnectCluster(servers.endpoints());
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  ASSERT_FALSE((*cluster)->migration_in_progress());
  // ...until it scans for the durable plan and resumes from the cursor.
  ShardedStorageEngine::MigrationOptions opts;
  opts.batch_keys = 3;
  auto resumed = (*cluster)->ResumeMigration(opts);
  ASSERT_TRUE(resumed.ok()) << resumed;
  EXPECT_FALSE((*cluster)->migration_in_progress());
  auto stats = (*cluster)->migration_stats();
  EXPECT_EQ(stats.resumes, 1u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ((*cluster)->ring_epoch(), 1u);

  // ZERO lost keys: every acknowledged write reads back bit-for-bit.
  for (const auto& [key, payload] : expect) {
    auto got = (*cluster)->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status();
    EXPECT_EQ(*got, payload) << key;
  }
  // The new shard ended up owning its share.
  size_t on_new_shard = 0;
  for (const auto& [key, id] : (*cluster)->shard(2)->ListAllVersions()) {
    if (key.rfind("artifact/", 0) == 0) ++on_new_shard;
  }
  EXPECT_GT(on_new_shard, 0u);

  auto stopped = servers.Stop();
  EXPECT_TRUE(stopped.ok()) << stopped;
}

// ------------------------------------------- process-launcher satellites ---

TEST(ServerClusterTest, AddAndDrainShardProcesses) {
  LocalServerCluster servers;
  LocalServerCluster::Options options;
  options.server_binary = MLCASK_SERVER_BIN;
  auto started = servers.Start(2, options);
  ASSERT_TRUE(started.ok()) << started;
  ASSERT_EQ(servers.endpoints().size(), 2u);

  auto endpoint = servers.AddShard();
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();
  ASSERT_EQ(servers.endpoints().size(), 3u);
  // The new process answers real requests.
  auto transport = SocketTransport::Connect(*endpoint);
  ASSERT_TRUE(transport.ok()) << transport.status();
  RemoteStorageEngine proxy(*std::move(transport));
  ASSERT_TRUE(proxy.Put("artifact/x", "on the new shard").ok());
  auto got = proxy.Get("artifact/x");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "on the new shard");

  const std::string socket = endpoint->substr(5);  // strip "unix:"
  auto drained = servers.DrainShard(2);
  EXPECT_TRUE(drained.ok()) << drained;
  EXPECT_FALSE(fs::exists(socket));  // slot can never be dialed again
  // Draining twice is an error, not a crash.
  EXPECT_FALSE(servers.DrainShard(2).ok());
  auto stopped = servers.Stop();
  EXPECT_TRUE(stopped.ok()) << stopped;
}

/// Satellite regression: Stop() used to pair per-file unlinks with a bare
/// ::rmdir, which fails SILENTLY on a non-empty directory — so any file the
/// launcher did not expect (a crashed child's core file, a half-written
/// artifact) leaked the mkdtemp root under /tmp forever.
TEST(ServerClusterTest, StopRemovesTheTempRootEvenWithCrashArtifacts) {
  LocalServerCluster servers;
  LocalServerCluster::Options options;
  options.server_binary = MLCASK_SERVER_BIN;
  auto started = servers.Start(1, options);
  ASSERT_TRUE(started.ok()) << started;
  ASSERT_EQ(servers.endpoints().size(), 1u);
  // endpoints()[0] = "unix:<root>/shard0.sock"
  const fs::path socket = servers.endpoints()[0].substr(5);
  const fs::path root = socket.parent_path();
  ASSERT_TRUE(fs::is_directory(root));
  // Plant a file the unlink list does not know about (the failing-before
  // case: with ::rmdir the root silently survived Stop()).
  {
    std::ofstream artifact(root / "core.12345");
    artifact << "crash artifact";
  }
  auto stopped = servers.Stop();
  EXPECT_TRUE(stopped.ok()) << stopped;
  EXPECT_FALSE(fs::exists(root)) << root;
}

}  // namespace
}  // namespace mlcask::storage
