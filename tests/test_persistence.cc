#include "storage/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/rng.h"

namespace mlcask::storage {
namespace {

namespace fs = std::filesystem;

std::string RandomBytes(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextU32() & 0xff);
  return out;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mlcask_persist_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  ForkBaseEngine engine;
  std::string blob_a = RandomBytes(120000, 1);
  std::string blob_b = blob_a;
  blob_b.insert(500, "edited");
  auto p1 = engine.Put("lib/feature_extract", blob_a);
  auto p2 = engine.Put("lib/feature_extract", blob_b);
  auto p3 = engine.Put("artifact/out", "small output");
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());

  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  auto loaded = LoadEngine(dir());
  ASSERT_TRUE(loaded.ok());

  // Versions, contents, and latest-version semantics survive.
  EXPECT_EQ((*loaded)->Versions("lib/feature_extract").size(), 2u);
  EXPECT_EQ(*(*loaded)->GetVersion(p1->id), blob_a);
  EXPECT_EQ(*(*loaded)->GetVersion(p2->id), blob_b);
  EXPECT_EQ(*(*loaded)->Get("lib/feature_extract"), blob_b);
  EXPECT_EQ(*(*loaded)->Get("artifact/out"), "small output");

  // De-duplication state (physical bytes, distinct chunks) survives.
  EXPECT_EQ((*loaded)->stats().physical_bytes, engine.stats().physical_bytes);
  EXPECT_EQ((*loaded)->stats().logical_bytes, engine.stats().logical_bytes);
  EXPECT_EQ((*loaded)->chunk_stats().distinct_chunks,
            engine.chunk_stats().distinct_chunks);
}

TEST_F(PersistenceTest, LoadedEngineKeepsDeduplicating) {
  ForkBaseEngine engine;
  std::string data = RandomBytes(80000, 2);
  ASSERT_TRUE(engine.Put("k", data).ok());
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  auto loaded = LoadEngine(dir());
  ASSERT_TRUE(loaded.ok());
  // Re-putting the same content into the loaded engine is fully dedup'd —
  // the chunk index survived, not just the bytes.
  auto again = (*loaded)->Put("k2", data);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->new_physical_bytes, 0u);
}

TEST_F(PersistenceTest, IncrementalSaveOnlyAddsNewChunks) {
  ForkBaseEngine engine;
  ASSERT_TRUE(engine.Put("k", RandomBytes(100000, 3)).ok());
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  size_t files_before = 0;
  for (auto& p : fs::recursive_directory_iterator(dir() + "/chunks")) {
    if (p.is_regular_file()) ++files_before;
  }
  // Save again without changes: chunk files are content-addressed, so the
  // second save writes no new chunk files.
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  size_t files_after = 0;
  for (auto& p : fs::recursive_directory_iterator(dir() + "/chunks")) {
    if (p.is_regular_file()) ++files_after;
  }
  EXPECT_EQ(files_after, files_before);

  // A new object adds only its chunks.
  ASSERT_TRUE(engine.Put("k2", RandomBytes(50000, 4)).ok());
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  size_t files_final = 0;
  for (auto& p : fs::recursive_directory_iterator(dir() + "/chunks")) {
    if (p.is_regular_file()) ++files_final;
  }
  EXPECT_GT(files_final, files_after);
}

TEST_F(PersistenceTest, DetectsChunkCorruption) {
  ForkBaseEngine engine;
  ASSERT_TRUE(engine.Put("k", RandomBytes(60000, 5)).ok());
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  // Flip a byte in some chunk file.
  for (auto& p : fs::recursive_directory_iterator(dir() + "/chunks")) {
    if (p.is_regular_file()) {
      std::fstream f(p.path(), std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(10);
      char c;
      f.seekg(10);
      f.get(c);
      f.seekp(10);
      f.put(static_cast<char>(c ^ 0x5a));
      break;
    }
  }
  auto loaded = LoadEngine(dir());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, DetectsMissingChunkFile) {
  ForkBaseEngine engine;
  ASSERT_TRUE(engine.Put("k", RandomBytes(60000, 6)).ok());
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  for (auto& p : fs::recursive_directory_iterator(dir() + "/chunks")) {
    if (p.is_regular_file()) {
      fs::remove(p.path());
      break;
    }
  }
  EXPECT_FALSE(LoadEngine(dir()).ok());
}

TEST_F(PersistenceTest, LoadFromMissingDirFails) {
  EXPECT_TRUE(LoadEngine(dir() + "/nowhere").status().IsNotFound());
}

TEST_F(PersistenceTest, RejectsGarbageManifest) {
  fs::create_directories(dir());
  std::ofstream(dir() + "/manifest.json") << "{not json";
  EXPECT_FALSE(LoadEngine(dir()).ok());
  std::ofstream(dir() + "/manifest.json", std::ios::trunc) << "{\"format\":9}";
  auto loaded = LoadEngine(dir());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistenceTest, DeleteAfterReloadStillWorks) {
  ForkBaseEngine engine;
  auto keep = engine.Put("a", RandomBytes(40000, 7));
  auto drop = engine.Put("b", RandomBytes(40000, 8));
  ASSERT_TRUE(keep.ok() && drop.ok());
  ASSERT_TRUE(SaveEngine(engine, dir()).ok());
  auto loaded = LoadEngine(dir());
  ASSERT_TRUE(loaded.ok());
  auto freed = (*loaded)->DeleteVersion(drop->id);
  ASSERT_TRUE(freed.ok());
  EXPECT_GT(*freed, 0u);
  EXPECT_TRUE((*loaded)->GetVersion(keep->id).ok());
  EXPECT_FALSE((*loaded)->HasVersion(drop->id));
}

}  // namespace
}  // namespace mlcask::storage
