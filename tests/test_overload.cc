// Overload-protection stack: deadline codec + accounting-proven budget
// shrink across fan-out hops, bounded admission queues with typed shedding,
// expired-deadline drops at dequeue, and the redial retry budget.
//
// The deadline-shrink proof here is ACCOUNTING, not timing: every 2PC phase
// charges the ambient budget at least 1ms, so the per-hop stamps a
// coordinator leaves in its transports' hop_budgets_ms ledger must strictly
// decrease even on a machine where the whole transaction runs in
// microseconds — no sleeps, no flaky clock assertions.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/deadline.h"
#include "storage/fault_injector.h"
#include "storage/forkbase_engine.h"
#include "storage/remote_engine.h"
#include "storage/sharded_engine.h"
#include "storage/socket_transport.h"
#include "storage/transport.h"
#include "storage/wire_codec.h"

namespace mlcask::storage {
namespace {

std::string TempSock(const char* tag) {
  return "/tmp/mlcask-overload-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

// --- budget accounting ------------------------------------------------------

TEST(DeadlineBudgetTest, ChargeShrinksBudgetWithoutWallClock) {
  DeadlineBudget budget(100);
  EXPECT_EQ(budget.total_ms(), 100u);
  const uint64_t r0 = budget.remaining_ms();
  EXPECT_LE(r0, 100u);
  EXPECT_GT(r0, 50u);  // fresh budget, negligible real elapsed
  budget.Charge(10);
  const uint64_t r1 = budget.remaining_ms();
  EXPECT_LT(r1, r0);  // strictly smaller at zero wall time
  budget.Charge(200);
  EXPECT_EQ(budget.remaining_ms(), 0u);
  EXPECT_TRUE(budget.expired());
}

TEST(DeadlineBudgetTest, ScopeIsAmbientNestedAndCheckable) {
  EXPECT_EQ(DeadlineScope::CurrentRemainingMs(), 0u);  // no ambient scope
  DeadlineBudget outer(500);
  DeadlineScope outer_scope(&outer);
  EXPECT_GT(DeadlineScope::CurrentRemainingMs(), 400u);
  {
    DeadlineBudget inner(50);
    DeadlineScope inner_scope(&inner);
    EXPECT_LE(DeadlineScope::CurrentRemainingMs(), 50u);
  }
  // Inner scope popped: the outer budget is ambient again.
  EXPECT_GT(DeadlineScope::CurrentRemainingMs(), 400u);
  EXPECT_TRUE(DeadlineScope::CheckCurrent("test").ok());
  outer.Charge(600);
  EXPECT_TRUE(DeadlineScope::CheckCurrent("test").IsDeadlineExceeded());
}

// --- wire codec -------------------------------------------------------------

TEST(DeadlineCodecTest, StampRoundTripsAndAbsenceIsBitIdenticalOldWire) {
  // No ambient scope: the encoding must carry no deadline tag — these are
  // the exact bytes the previous wire revision produced, so an old peer
  // sees nothing new.
  const std::string unstamped = wire::EncodePutRequest("k", "v", "tok");
  EXPECT_EQ(wire::ExtractDeadline(unstamped), 0u);

  std::string stamped;
  {
    DeadlineBudget budget(750);
    DeadlineScope scope(&budget);
    stamped = wire::EncodePutRequest("k", "v", "tok");
  }
  EXPECT_NE(stamped, unstamped);
  const uint64_t extracted = wire::ExtractDeadline(stamped);
  EXPECT_GT(extracted, 0u);
  EXPECT_LE(extracted, 750u);
  auto decoded = wire::DecodeRequest(stamped);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->deadline_ms, extracted);
  EXPECT_EQ(decoded->key, "k");
  EXPECT_EQ(decoded->body, "v");
  EXPECT_EQ(decoded->replay_token, "tok");

  // A SPENT scope stamps nothing: bit-identical to the stampless wire, so
  // budget exhaustion can never produce a novel encoding either.
  {
    DeadlineBudget spent(0);
    DeadlineScope scope(&spent);
    EXPECT_EQ(wire::EncodePutRequest("k", "v", "tok"), unstamped);
  }
}

TEST(DeadlineCodecTest, EveryRequestEncoderStampsTheAmbientBudget) {
  DeadlineBudget budget(900);
  DeadlineScope scope(&budget);
  const Hash256 id = Sha256::Digest("x");
  EXPECT_GT(wire::ExtractDeadline(wire::EncodePutRequest("k", "v")), 0u);
  EXPECT_GT(wire::ExtractDeadline(wire::EncodePutManyRequest(
                {{"k", "v"}})),
            0u);
  EXPECT_GT(wire::ExtractDeadline(
                wire::EncodeKeyRequest(wire::Method::kGet, "k")),
            0u);
  EXPECT_GT(wire::ExtractDeadline(
                wire::EncodeIdRequest(wire::Method::kGetVersion, id)),
            0u);
  EXPECT_GT(wire::ExtractDeadline(wire::EncodeReadCostRequest(64)), 0u);
  EXPECT_GT(wire::ExtractDeadline(wire::EncodeMigrateBatchRequest({})), 0u);
}

TEST(DeadlineCodecTest, PeeksJsonFallbackDeadline) {
  EXPECT_EQ(PeekRequestDeadlineMs("{\"method\":\"get\",\"key\":\"k\"}"), 0u);
  EXPECT_EQ(PeekRequestDeadlineMs(
                "{\"method\":\"get\",\"deadline_ms\": 123,\"key\":\"k\"}"),
            123u);
  EXPECT_EQ(PeekRequestDeadlineMs(""), 0u);
  EXPECT_EQ(PeekRequestDeadlineMs("not json at all"), 0u);
}

// --- budget shrink across hops ---------------------------------------------

TEST(DeadlineShrinkTest, ReplicatedPutLeavesStrictlyDecreasingHopBudgets) {
  auto cluster = MakeLoopbackCluster(
      3, [] { return std::make_unique<ForkBaseEngine>(); });
  DeadlineBudget budget(1000);
  {
    DeadlineScope scope(&budget);
    ASSERT_TRUE(cluster->Put("pipeline/overload/commit", "snapshot").ok());
  }
  // Every shard saw stamped calls; per-hop (per-phase) budgets strictly
  // decrease. Calls within one phase share a stamp, so adjacent duplicates
  // collapse before the monotonicity check.
  size_t shards_with_three_hops = 0;
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    auto* remote = dynamic_cast<RemoteStorageEngine*>(cluster->shard(s));
    ASSERT_NE(remote, nullptr);
    const TransportStats stats = remote->transport()->stats();
    ASSERT_GT(stats.deadline_stamped_calls, 0u) << "shard " << s;
    EXPECT_EQ(stats.deadline_stamped_calls, stats.hop_budgets_ms.size());
    std::vector<uint64_t> hops;
    for (uint64_t stamp : stats.hop_budgets_ms) {
      if (hops.empty() || stamp != hops.back()) hops.push_back(stamp);
    }
    ASSERT_GE(hops.size(), 2u) << "shard " << s;
    for (size_t i = 1; i < hops.size(); ++i) {
      EXPECT_LT(hops[i], hops[i - 1])
          << "shard " << s << " hop " << i << " did not shrink";
    }
    if (hops.size() >= 3) ++shards_with_three_hops;
  }
  // The 2PC coordinator path (prepare → decision → apply) gives at least
  // one transport three distinct shrinking budgets: the 3-hop proof.
  EXPECT_GE(shards_with_three_hops, 1u);
}

TEST(DeadlineShrinkTest, SpentBudgetFailsReplicatedPutFastWithNoResidue) {
  auto cluster = MakeLoopbackCluster(
      2, [] { return std::make_unique<ForkBaseEngine>(); });
  DeadlineBudget budget(1);
  budget.Charge(10);  // spent before the call
  DeadlineScope scope(&budget);
  const Status status =
      cluster->Put("pipeline/overload/late", "snapshot").status();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsDeadlineExceeded());
  // Fail-fast means fail-CLEAN: nothing staged, nothing to recover.
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    for (const auto& [key, id] : cluster->shard(s)->ListAllVersions()) {
      (void)id;
      EXPECT_NE(key.rfind("__2pc__/", 0), 0u) << key;
    }
  }
}

// --- admission control ------------------------------------------------------

TEST(AdmissionTest, ServerShedsBeyondQueueCapWithTypedResourceExhausted) {
  const std::string path = TempSock("shed");
  SocketTransportServer::Options options;
  options.worker_threads = 1;
  options.max_queued_jobs = 1;
  auto server = SocketTransportServer::Bind("unix:" + path, options);
  ASSERT_TRUE(server.ok());
  std::atomic<int> handled{0};
  ASSERT_TRUE((*server)
                  ->Serve([&](std::string_view) {
                    handled.fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                    return std::string("pong");
                  })
                  .ok());
  auto transport = SocketTransport::Connect("unix:" + path);
  ASSERT_TRUE(transport.ok());
  const std::string request = wire::EncodePlainRequest(wire::Method::kName);
  std::vector<TransportFuture> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back((*transport)->AsyncCall(request));
  }
  size_t ok = 0, shed = 0;
  for (TransportFuture& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++ok;
    } else if (result.status().IsResourceExhausted()) {
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);    // the server kept serving
  EXPECT_GT(shed, 0u);  // and shed the overflow, typed
  EXPECT_EQ(ok + shed, 16u);
  EXPECT_EQ((*server)->shed_jobs(), shed);
  // The admission cap IS the bound: the queue never grew past it.
  EXPECT_LE((*server)->peak_queued_jobs(), 1u);
  EXPECT_EQ(static_cast<size_t>(handled.load()), ok);
  (*server)->Shutdown();
  ::unlink(path.c_str());
}

TEST(AdmissionTest, ExpiredDeadlineJobsAreDroppedAtDequeueUnexecuted) {
  const std::string path = TempSock("expired");
  SocketTransportServer::Options options;
  options.worker_threads = 1;
  auto server = SocketTransportServer::Bind("unix:" + path, options);
  ASSERT_TRUE(server.ok());
  std::atomic<int> handled{0};
  ASSERT_TRUE((*server)
                  ->Serve([&](std::string_view) {
                    handled.fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(300));
                    return std::string("pong");
                  })
                  .ok());
  auto transport = SocketTransport::Connect("unix:" + path);
  ASSERT_TRUE(transport.ok());
  // First request: no deadline, occupies the single worker for 300ms.
  auto slow =
      (*transport)->AsyncCall(wire::EncodePlainRequest(wire::Method::kName));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Second request: stamped with a 20ms budget, queued behind the slow one.
  // By dequeue time its deadline is long spent — it must be dropped with a
  // typed DeadlineExceeded, and the handler must NEVER see it.
  std::string stamped;
  {
    DeadlineBudget budget(20);
    DeadlineScope scope(&budget);
    stamped = wire::EncodeKeyRequest(wire::Method::kGet, "k");
  }
  auto doomed = (*transport)->AsyncCall(stamped);
  auto first = slow.get();
  ASSERT_TRUE(first.ok());
  auto second = doomed.get();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsDeadlineExceeded());
  EXPECT_EQ((*server)->expired_jobs(), 1u);
  EXPECT_EQ(handled.load(), 1);  // the expired job never executed
  (*server)->Shutdown();
  ::unlink(path.c_str());
}

// --- retry budget + jittered redial ----------------------------------------

TEST(RetryBudgetTest, ReplayBudgetExhaustionFailsTypedResourceExhausted) {
  // A killer peer: accepts every connection and slams it shut without ever
  // answering. Redial always succeeds, the REPLAY always dies — the
  // pathological flap where unbounded replay would retry-storm forever.
  // (A client-side injector can't build this: replays deliberately carry
  // no injected faults.) With a budget of one replay the call must fail
  // typed ResourceExhausted, promptly.
  const std::string path = TempSock("budget");
  ::unlink(path.c_str());
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(
      ::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 8), 0);
  std::thread killer([&] {
    while (true) {
      int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) break;  // listener closed: test over
      ::close(fd);
    }
  });

  SocketTransport::Options options;
  options.max_call_replays = 1;
  options.redial_jitter_seed = 42;
  options.redial_initial_backoff_ms = 1;
  options.redial_budget_ms = 5000;
  options.call_timeout_ms = 10000;
  auto transport = SocketTransport::Connect("unix:" + path, options);
  ASSERT_TRUE(transport.ok());
  auto result =
      (*transport)->Call(wire::EncodePlainRequest(wire::Method::kName));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();

  (*transport).reset();  // stop redialing before the listener goes away
  ::shutdown(listener, SHUT_RDWR);  // wakes the blocked accept
  ::close(listener);
  killer.join();
  ::unlink(path.c_str());
}

TEST(RetryBudgetTest, SeededJitterRedialFailsTypedWithinBudget) {
  const std::string path = TempSock("jitter");
  auto server = SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(
      (*server)
          ->Serve([](std::string_view) { return std::string("pong"); })
          .ok());
  SocketTransport::Options options;
  options.redial_jitter_seed = 7;  // pinned: deterministic backoff draws
  options.redial_budget_ms = 200;
  options.redial_initial_backoff_ms = 16;
  options.call_timeout_ms = 10000;
  auto transport = SocketTransport::Connect("unix:" + path, options);
  ASSERT_TRUE(transport.ok());
  (*server)->Shutdown();  // the peer dies; redial can never succeed
  ::unlink(path.c_str());
  const auto start = std::chrono::steady_clock::now();
  auto result =
      (*transport)->Call(wire::EncodePlainRequest(wire::Method::kName));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_FALSE(result.ok());
  // Full jitter keeps each sleep under min(500ms, initial << N) and the
  // whole episode inside redial_budget_ms — typed failure, promptly.
  EXPECT_LT(elapsed, 3000);
}

}  // namespace
}  // namespace mlcask::storage
