#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include "common/logging.h"

#include "pipeline/component.h"

namespace mlcask::pipeline {
namespace {

ComponentVersionSpec Spec(const std::string& name, ComponentKind kind,
                          uint64_t in_schema, uint64_t out_schema) {
  ComponentVersionSpec s;
  s.name = name;
  s.kind = kind;
  s.input_schema = in_schema;
  s.output_schema = out_schema;
  s.impl = "impl_" + name;
  return s;
}

std::vector<ComponentVersionSpec> ReadmissionChainSpecs() {
  return {Spec("dataset", ComponentKind::kDataset, 0, 1),
          Spec("cleanse", ComponentKind::kPreprocessor, 1, 2),
          Spec("extract", ComponentKind::kPreprocessor, 2, 3),
          Spec("cnn", ComponentKind::kModel, 3, 4)};
}

TEST(ComponentSpecTest, MetafileRoundTrip) {
  ComponentVersionSpec s = Spec("cnn", ComponentKind::kModel, 3, 4);
  s.version = *version::SemanticVersion::Parse("dev@1.2");
  s.params.Set("epochs", Json::Int(20));
  s.cost_per_krow_s = 52.5;
  auto parsed = ComponentVersionSpec::FromJson(*Json::Parse(s.ToJson().Dump()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, s);
}

TEST(ComponentSpecTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(ComponentVersionSpec::FromJson(*Json::Parse("{}")).ok());
  EXPECT_FALSE(ComponentVersionSpec::FromJson(
                   *Json::Parse(R"({"name":"x","version":"0.0"})"))
                   .ok());  // missing impl/kind
}

TEST(ComponentSpecTest, CompatibilityIsSchemaEquality) {
  ComponentVersionSpec a = Spec("a", ComponentKind::kPreprocessor, 1, 2);
  ComponentVersionSpec b = Spec("b", ComponentKind::kModel, 2, 3);
  ComponentVersionSpec c = Spec("c", ComponentKind::kModel, 9, 10);
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));
}

TEST(ComponentSpecTest, KindNamesRoundTrip) {
  for (ComponentKind k : {ComponentKind::kDataset, ComponentKind::kPreprocessor,
                          ComponentKind::kModel}) {
    auto parsed = ParseComponentKind(ComponentKindName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ParseComponentKind("nonsense").ok());
}

TEST(PipelineTest, ChainBuildsLinearDag) {
  auto p = Pipeline::Chain("readmission", ReadmissionChainSpecs());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 4u);
  EXPECT_TRUE(p->IsChain());
  ASSERT_TRUE(p->Validate().ok());
  EXPECT_EQ(p->Predecessors("cleanse"), (std::vector<std::string>{"dataset"}));
  EXPECT_EQ(p->Successors("cleanse"), (std::vector<std::string>{"extract"}));
  EXPECT_TRUE(p->Predecessors("dataset").empty());
  EXPECT_TRUE(p->Successors("cnn").empty());
}

TEST(PipelineTest, TopologicalOrderFollowsChain) {
  auto p = Pipeline::Chain("x", ReadmissionChainSpecs());
  ASSERT_TRUE(p.ok());
  auto order = p->TopologicalOrder();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 4u);
  EXPECT_EQ((*order)[0]->name, "dataset");
  EXPECT_EQ((*order)[3]->name, "cnn");
}

TEST(PipelineTest, DetectsCycle) {
  Pipeline p("cyclic");
  ASSERT_TRUE(p.AddComponent(Spec("a", ComponentKind::kDataset, 0, 1)).ok());
  ASSERT_TRUE(p.AddComponent(Spec("b", ComponentKind::kPreprocessor, 1, 2)).ok());
  ASSERT_TRUE(p.Connect("a", "b").ok());
  ASSERT_TRUE(p.Connect("b", "a").ok());
  EXPECT_FALSE(p.TopologicalOrder().ok());
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PipelineTest, ValidateRequiresDatasetSource) {
  Pipeline p("bad");
  ASSERT_TRUE(
      p.AddComponent(Spec("pre", ComponentKind::kPreprocessor, 1, 2)).ok());
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PipelineTest, ValidateRejectsDatasetWithPredecessor) {
  Pipeline p("bad");
  ASSERT_TRUE(p.AddComponent(Spec("a", ComponentKind::kDataset, 0, 1)).ok());
  ASSERT_TRUE(p.AddComponent(Spec("b", ComponentKind::kDataset, 0, 1)).ok());
  ASSERT_TRUE(p.Connect("a", "b").ok());
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PipelineTest, DuplicateComponentAndEdgeRejected) {
  Pipeline p("dup");
  ASSERT_TRUE(p.AddComponent(Spec("a", ComponentKind::kDataset, 0, 1)).ok());
  EXPECT_EQ(p.AddComponent(Spec("a", ComponentKind::kDataset, 0, 1)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(p.AddComponent(Spec("b", ComponentKind::kModel, 1, 2)).ok());
  ASSERT_TRUE(p.Connect("a", "b").ok());
  EXPECT_EQ(p.Connect("a", "b").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(p.Connect("a", "zz").IsNotFound());
  EXPECT_FALSE(p.Connect("a", "a").ok());
}

TEST(PipelineTest, CheckCompatibilityFindsBrokenEdge) {
  auto specs = ReadmissionChainSpecs();
  specs[2].output_schema = 99;  // extract now emits a schema cnn cannot read
  auto p = Pipeline::Chain("broken", specs);
  ASSERT_TRUE(p.ok());
  Status s = p->CheckCompatibility();
  EXPECT_TRUE(s.IsIncompatible());
  EXPECT_NE(s.message().find("cnn"), std::string::npos);
}

TEST(PipelineTest, IsChainFalseForFanOut) {
  Pipeline p("fan");
  ASSERT_TRUE(p.AddComponent(Spec("a", ComponentKind::kDataset, 0, 1)).ok());
  ASSERT_TRUE(p.AddComponent(Spec("b", ComponentKind::kModel, 1, 2)).ok());
  ASSERT_TRUE(p.AddComponent(Spec("c", ComponentKind::kModel, 1, 2)).ok());
  ASSERT_TRUE(p.Connect("a", "b").ok());
  ASSERT_TRUE(p.Connect("a", "c").ok());
  EXPECT_FALSE(p.IsChain());
  EXPECT_TRUE(p.Validate().ok());  // still a valid DAG
}

TEST(PipelineTest, MetafileRoundTrip) {
  auto p = Pipeline::Chain("readmission", ReadmissionChainSpecs());
  ASSERT_TRUE(p.ok());
  auto parsed = Pipeline::FromJson(*Json::Parse(p->ToJson().Dump()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name(), "readmission");
  EXPECT_EQ(parsed->size(), 4u);
  EXPECT_TRUE(parsed->IsChain());
  EXPECT_EQ(parsed->components()[2].name, p->components()[2].name);
}

TEST(PipelineTest, ToSnapshotKeepsOrder) {
  auto p = Pipeline::Chain("x", ReadmissionChainSpecs());
  ASSERT_TRUE(p.ok());
  version::PipelineSnapshot snap = p->ToSnapshot();
  ASSERT_EQ(snap.components.size(), 4u);
  EXPECT_EQ(snap.components[0].name, "dataset");
  EXPECT_EQ(snap.components[3].name, "cnn");
  EXPECT_FALSE(snap.has_score());
}

}  // namespace
}  // namespace mlcask::pipeline
