#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlcask::data {
namespace {

TEST(ReadmissionGenTest, ShapeAndSchema) {
  auto t = GenerateReadmissionData(500, 7);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 500u);
  EXPECT_TRUE(t->HasColumn("age"));
  EXPECT_TRUE(t->HasColumn("lab_7"));
  EXPECT_FALSE(t->HasColumn("lab_8"));
  EXPECT_TRUE(t->HasColumn("diag_code"));
  EXPECT_TRUE(t->HasColumn("readmit_30d"));
}

TEST(ReadmissionGenTest, SchemaVersionAddsColumns) {
  auto v0 = GenerateReadmissionData(100, 7, /*schema_version=*/0);
  auto v1 = GenerateReadmissionData(100, 7, /*schema_version=*/1);
  ASSERT_TRUE(v0.ok() && v1.ok());
  EXPECT_FALSE(v0->HasColumn("lab_9"));
  EXPECT_TRUE(v1->HasColumn("lab_9"));
  EXPECT_NE(v0->schema().ShortId(), v1->schema().ShortId());
}

TEST(ReadmissionGenTest, Deterministic) {
  auto a = GenerateReadmissionData(200, 11);
  auto b = GenerateReadmissionData(200, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  // Compare serialized bytes: the tables contain NaN (missing labs), and
  // NaN != NaN would defeat a value comparison, but the bit patterns are
  // deterministic.
  EXPECT_EQ(a->Serialize(), b->Serialize());
  auto c = GenerateReadmissionData(200, 12);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->Serialize(), c->Serialize());
}

TEST(ReadmissionGenTest, HasMissingValues) {
  auto t = GenerateReadmissionData(1000, 3, 0, /*missing_rate=*/0.1);
  ASSERT_TRUE(t.ok());
  const Column* lab = *t->GetColumn("lab_0");
  size_t nan_count = 0;
  for (double v : lab->doubles) {
    if (std::isnan(v)) ++nan_count;
  }
  EXPECT_GT(nan_count, 50u);
  EXPECT_LT(nan_count, 200u);
  const Column* diag = *t->GetColumn("diag_code");
  size_t blank = 0;
  for (const auto& s : diag->strings) {
    if (s.empty()) ++blank;
  }
  EXPECT_GT(blank, 50u);
}

TEST(ReadmissionGenTest, BothLabelsPresent) {
  auto t = GenerateReadmissionData(500, 5);
  ASSERT_TRUE(t.ok());
  const Column* y = *t->GetColumn("readmit_30d");
  int64_t pos = 0;
  for (int64_t v : y->ints) pos += v;
  EXPECT_GT(pos, 50);
  EXPECT_LT(pos, 450);
}

TEST(ReadmissionGenTest, RejectsZeroRows) {
  EXPECT_FALSE(GenerateReadmissionData(0, 1).ok());
}

TEST(DpmGenTest, LongitudinalStructure) {
  auto t = GenerateDpmData(20, 12, 9);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 240u);
  const Column* pid = *t->GetColumn("patient_id");
  const Column* visit = *t->GetColumn("visit");
  // Rows are grouped per patient with visit counters resetting.
  EXPECT_EQ(pid->ints[0], 0);
  EXPECT_EQ(visit->ints[0], 0);
  EXPECT_EQ(visit->ints[11], 11);
  EXPECT_EQ(pid->ints[12], 1);
  EXPECT_EQ(visit->ints[12], 0);
}

TEST(DpmGenTest, RejectsDegenerate) {
  EXPECT_FALSE(GenerateDpmData(0, 5, 1).ok());
  EXPECT_FALSE(GenerateDpmData(5, 1, 1).ok());
}

TEST(ReviewGenTest, TokensWithinBounds) {
  auto t = GenerateReviews(100, 13, 10, 20);
  ASSERT_TRUE(t.ok());
  const Column* reviews = *t->GetColumn("review");
  for (const std::string& r : reviews->strings) {
    size_t tokens = 1;
    for (char c : r) {
      if (c == ' ') ++tokens;
    }
    EXPECT_GE(tokens, 10u);
    EXPECT_LE(tokens, 20u);
  }
}

TEST(ReviewGenTest, SentimentWordsCorrelateWithLabel) {
  auto t = GenerateReviews(400, 17);
  ASSERT_TRUE(t.ok());
  const Column* reviews = *t->GetColumn("review");
  const Column* labels = *t->GetColumn("sentiment");
  int pos_has_wonderful = 0, neg_has_wonderful = 0;
  int pos_count = 0, neg_count = 0;
  for (size_t i = 0; i < reviews->strings.size(); ++i) {
    bool has = reviews->strings[i].find("wonderful") != std::string::npos ||
               reviews->strings[i].find("excellent") != std::string::npos;
    if (labels->ints[i] == 1) {
      ++pos_count;
      if (has) ++pos_has_wonderful;
    } else {
      ++neg_count;
      if (has) ++neg_has_wonderful;
    }
  }
  ASSERT_GT(pos_count, 0);
  ASSERT_GT(neg_count, 0);
  double p_rate = static_cast<double>(pos_has_wonderful) / pos_count;
  double n_rate = static_cast<double>(neg_has_wonderful) / neg_count;
  EXPECT_GT(p_rate, n_rate + 0.1);
}

TEST(DigitGenTest, PixelColumnsAndLabels) {
  auto t = GenerateDigits(50, 16, 19);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 16u * 16u + 2u);
  EXPECT_EQ(t->meta().at("shape"), "16x16");
  const Column* digit = *t->GetColumn("digit");
  const Column* bin = *t->GetColumn("is_ge5");
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_GE(digit->ints[i], 0);
    EXPECT_LE(digit->ints[i], 9);
    EXPECT_EQ(bin->ints[i], digit->ints[i] >= 5 ? 1 : 0);
  }
}

TEST(DigitGenTest, PixelsInUnitRangeAndInked) {
  auto t = GenerateDigits(20, 16, 21);
  ASSERT_TRUE(t.ok());
  double total_ink = 0;
  for (size_t k = 0; k < 256; ++k) {
    const Column* px = *t->GetColumn("px" + std::to_string(k));
    for (double v : px->doubles) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      total_ink += v;
    }
  }
  // Strokes must actually be drawn (well above pure noise).
  EXPECT_GT(total_ink / 20.0, 20.0);
}

TEST(DigitGenTest, RejectsTinyImages) {
  EXPECT_FALSE(GenerateDigits(10, 4, 1).ok());
}

}  // namespace
}  // namespace mlcask::data
