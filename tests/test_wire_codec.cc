// The binary wire codec (wire version 2): golden encoded-byte vectors that
// freeze the layout, zero-copy guarantees (decoded payload views point INTO
// the message buffer), request/response round trips for every RPC type,
// chunk-stream reassembly with manifest verification, the receive-side
// chunk cache's dedup/eviction accounting, and codec negotiation (a binary
// proxy dropping to JSON against an old peer).

#include "storage/wire_codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "storage/forkbase_engine.h"
#include "storage/remote_engine.h"
#include "storage/transport.h"

namespace mlcask::storage {
namespace {

Hash256 FilledId(uint8_t byte) {
  Hash256 id;
  id.bytes.fill(byte);
  return id;
}

// --------------------------------------------------------------- varint ---

TEST(WireCodecTest, VarintRoundTripsBoundaries) {
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  16383, 16384,     (1ull << 32) - 1,
                             1ull << 32, ~0ull};
  for (uint64_t v : values) {
    std::string encoded;
    wire::PutVarint(&encoded, v);
    std::string_view in(encoded);
    uint64_t decoded = 0;
    ASSERT_TRUE(wire::GetVarint(&in, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
  // Truncated continuation byte fails cleanly.
  std::string_view truncated("\x80", 1);
  uint64_t unused = 0;
  EXPECT_FALSE(wire::GetVarint(&truncated, &unused));
}

// --------------------------------------------------------------- golden ---
// These vectors freeze the on-wire layout: a refactor that changes any byte
// here is a wire-format break and must bump kWireVersionBinary instead.

TEST(WireCodecTest, GoldenPutRequest) {
  const std::string encoded = wire::EncodePutRequest("k", "v");
  // magic, opcode kPut, meta_len 3, field key (tag1|bytes)=0x05, len 1,
  // 'k', then the body verbatim.
  const std::string expected = std::string("\xBC\x01\x03\x05\x01", 5) + "kv";
  EXPECT_EQ(encoded, expected);
}

TEST(WireCodecTest, GoldenIdRequest) {
  const std::string encoded =
      wire::EncodeIdRequest(wire::Method::kGetVersion, FilledId(0xAB));
  ASSERT_EQ(encoded.size(), 3u + 1 + 32);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), 0xBC);  // magic
  EXPECT_EQ(encoded[1], 0x04);                        // opcode kGetVersion
  EXPECT_EQ(encoded[2], 0x21);  // meta_len 33: field key + 32 raw bytes
  EXPECT_EQ(encoded[3], 0x0A);  // field key (tag2 | hash kind)
  for (size_t i = 4; i < encoded.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(encoded[i]), 0xAB);
  }
}

TEST(WireCodecTest, GoldenReadCostRequest) {
  // varint 300 = 0xAC 0x02; field key (tag3 | varint kind) = 0x0C.
  EXPECT_EQ(wire::EncodeReadCostRequest(300),
            std::string("\xBC\x0B\x03\x0C\xAC\x02", 6));
}

TEST(WireCodecTest, GoldenHasAndDataResponses) {
  EXPECT_EQ(wire::EncodeHasResponse(true),
            std::string("\xBC\x00\x02\x04\x01", 5));
  EXPECT_EQ(wire::EncodeDataResponse("hello"),
            std::string("\xBC\x00\x00", 3) + "hello");
}

// ------------------------------------------------------------ zero copy ---

TEST(WireCodecTest, DecodedRequestBodyIsAViewIntoTheMessage) {
  const std::string payload(100 * 1024, 'x');
  const std::string message = wire::EncodePutRequest("model/w", payload);
  auto request = wire::DecodeRequest(message);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, wire::Method::kPut);
  EXPECT_EQ(request->key, "model/w");
  EXPECT_EQ(request->body, payload);
  // THE zero-copy property: the body view aliases the message buffer (its
  // tail, verbatim) — no intermediate copy, no hex, no re-encode.
  EXPECT_EQ(request->body.data(),
            message.data() + message.size() - payload.size());
}

TEST(WireCodecTest, DecodedDataResponseIsAViewIntoTheMessage) {
  const std::string value(64 * 1024, 'y');
  const std::string message = wire::EncodeDataResponse(value);
  auto data = wire::DecodeDataResponse(message);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, value);
  EXPECT_EQ(data->data(), message.data() + message.size() - value.size());
}

// ---------------------------------------------------- codec round trips ---

TEST(WireCodecTest, RequestRoundTripsEveryMethod) {
  // Decoded requests are VIEWS into the message, so each encoded message
  // lives in a named local for the duration of its assertions.
  const std::string key_message =
      wire::EncodeKeyRequest(wire::Method::kVersions, "alpha");
  auto key_request = wire::DecodeRequest(key_message);
  ASSERT_TRUE(key_request.ok());
  EXPECT_EQ(key_request->method, wire::Method::kVersions);
  EXPECT_EQ(key_request->key, "alpha");

  const std::string id_message =
      wire::EncodeIdRequest(wire::Method::kHasVersion, FilledId(0x5A));
  auto id_request = wire::DecodeRequest(id_message);
  ASSERT_TRUE(id_request.ok());
  EXPECT_EQ(id_request->method, wire::Method::kHasVersion);
  EXPECT_EQ(id_request->id.bytes, FilledId(0x5A).bytes);

  const std::string plain_message =
      wire::EncodePlainRequest(wire::Method::kStats);
  auto plain = wire::DecodeRequest(plain_message);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->method, wire::Method::kStats);

  const std::string cost_message = wire::EncodeReadCostRequest(1u << 20);
  auto cost = wire::DecodeRequest(cost_message);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->method, wire::Method::kReadCost);
  EXPECT_EQ(cost->bytes, 1u << 20);

  std::vector<PutRequest> batch = {{"a", "data-a"}, {"b", std::string(1000, 'b')}};
  const std::string many_message = wire::EncodePutManyRequest(batch);
  auto many = wire::DecodeRequest(many_message);
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(many->method, wire::Method::kPutMany);
  ASSERT_EQ(many->batch.size(), 2u);
  EXPECT_EQ(many->batch[0].first, "a");
  EXPECT_EQ(many->batch[0].second, "data-a");
  EXPECT_EQ(many->batch[1].first, "b");
  EXPECT_EQ(many->batch[1].second, std::string(1000, 'b'));
}

TEST(WireCodecTest, ResponseRoundTripsEveryShape) {
  PutResult result;
  result.id = FilledId(0x11);
  result.logical_bytes = 12345;
  result.new_physical_bytes = 678;
  result.storage_time_s = 0.25;
  result.deduplicated = true;
  auto put = wire::DecodePutResponse(wire::EncodePutResponse(result));
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->id.bytes, result.id.bytes);
  EXPECT_EQ(put->logical_bytes, 12345u);
  EXPECT_EQ(put->new_physical_bytes, 678u);
  EXPECT_DOUBLE_EQ(put->storage_time_s, 0.25);
  EXPECT_TRUE(put->deduplicated);

  std::vector<PutResult> results = {result, result};
  results[1].deduplicated = false;
  auto many =
      wire::DecodePutManyResponse(wire::EncodePutManyResponse(results), 2);
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->size(), 2u);
  EXPECT_TRUE((*many)[0].deduplicated);
  EXPECT_FALSE((*many)[1].deduplicated);
  // Count mismatch is corruption, not a silent short vector.
  EXPECT_FALSE(
      wire::DecodePutManyResponse(wire::EncodePutManyResponse(results), 3)
          .ok());

  auto has = wire::DecodeHasResponse(wire::EncodeHasResponse(false));
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);

  auto freed = wire::DecodeFreedResponse(wire::EncodeFreedResponse(4096));
  ASSERT_TRUE(freed.ok());
  EXPECT_EQ(*freed, 4096u);

  std::vector<Hash256> ids = {FilledId(1), FilledId(2), FilledId(3)};
  auto versions =
      wire::DecodeVersionsResponse(wire::EncodeVersionsResponse(ids));
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 3u);
  EXPECT_EQ((*versions)[2].bytes, FilledId(3).bytes);

  std::vector<std::pair<std::string, Hash256>> entries = {
      {"k1", FilledId(7)}, {"k2", FilledId(8)}};
  auto decoded_entries =
      wire::DecodeEntriesResponse(wire::EncodeEntriesResponse(entries));
  ASSERT_TRUE(decoded_entries.ok());
  ASSERT_EQ(decoded_entries->size(), 2u);
  EXPECT_EQ((*decoded_entries)[1].first, "k2");
  EXPECT_EQ((*decoded_entries)[1].second.bytes, FilledId(8).bytes);

  EngineStats stats;
  stats.logical_bytes = 10;
  stats.physical_bytes = 20;
  stats.storage_time_s = 1.5;
  stats.puts = 3;
  stats.gets = 4;
  auto decoded_stats =
      wire::DecodeStatsResponse(wire::EncodeStatsResponse(stats));
  ASSERT_TRUE(decoded_stats.ok());
  EXPECT_EQ(decoded_stats->logical_bytes, 10u);
  EXPECT_EQ(decoded_stats->physical_bytes, 20u);
  EXPECT_DOUBLE_EQ(decoded_stats->storage_time_s, 1.5);
  EXPECT_EQ(decoded_stats->puts, 3u);
  EXPECT_EQ(decoded_stats->gets, 4u);

  auto cost = wire::DecodeCostResponse(wire::EncodeCostResponse(0.125));
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.125);

  // Errors round-trip the exact remote Status.
  std::string_view rest;
  Status decoded = wire::DecodeResponseStatus(
      wire::EncodeErrorResponse(Status::NotFound("no version abc")), &rest);
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "no version abc");
}

TEST(WireCodecTest, MalformedBinaryRequestsProduceErrorsNotCrashes) {
  ForkBaseEngine engine;
  const std::string garbage = std::string("\xBC\x63", 2) + "!!!!";
  const std::string response = wire::DispatchBinary(&engine, garbage);
  std::string_view rest;
  Status status = wire::DecodeResponseStatus(response, &rest);
  EXPECT_FALSE(status.ok());

  // Truncated meta section.
  const std::string truncated("\xBC\x01\x7F\x05", 4);
  Status truncated_status =
      wire::DecodeResponseStatus(wire::DispatchBinary(&engine, truncated),
                                 &rest);
  EXPECT_FALSE(truncated_status.ok());
}

TEST(WireCodecTest, PutManyHostileCountIsRejectedNotReserved) {
  // A put_many whose count varint says 2^64-1 entries but whose body holds
  // none. The count must be rejected against the body size BEFORE reserve()
  // touches it — a thrown length_error would escape the dispatch path and
  // kill the server instead of producing an error response.
  std::string meta;
  wire::PutVarint(&meta, (4u << 2) | 0);  // kTagCount, varint kind
  wire::PutVarint(&meta, ~0ull);
  std::string message;
  message.push_back(static_cast<char>(wire::kBinaryMagic));
  message.push_back(static_cast<char>(wire::Method::kPutMany));
  wire::PutVarint(&message, meta.size());
  message.append(meta);  // empty body follows

  auto decoded = wire::DecodeRequest(message);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // The full server path answers with a binary error, it does not crash.
  ForkBaseEngine engine;
  std::string_view rest;
  Status status = wire::DecodeResponseStatus(
      wire::DispatchBinary(&engine, message), &rest);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, EntriesResponseHugeKeyLenIsCorruptionNotOverflow) {
  // key_len near 2^64 makes `key_len + 32` wrap to a small number; the
  // bounds check must not use that sum or the decoder reads far out of the
  // buffer. A hostile ok-response: empty meta, body = huge key_len varint
  // plus a few real bytes.
  std::string message;
  message.push_back(static_cast<char>(wire::kBinaryMagic));
  message.push_back(0);          // status ok
  wire::PutVarint(&message, 0);  // empty meta
  wire::PutVarint(&message, ~0ull - 16);  // key_len: wraps if 32 is added
  message.append(40, 'x');

  auto decoded = wire::DecodeEntriesResponse(message);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------------- chunk streaming ---

TEST(WireCodecTest, StreamAssemblerReassemblesAndVerifies) {
  std::string value(3 * 1024 * 1024, '\0');
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<char>((i * 2654435761u) >> 13);
  }
  const auto cuts = wire::WireChunker().Split(value);
  ASSERT_GT(cuts.size(), 1u);

  wire::StreamAssembler assembler(value.size() + 1024);
  Sha256 manifest;
  for (const auto& [offset, length] : cuts) {
    std::string_view chunk(value.data() + offset, length);
    const Hash256 address = wire::WireChunkAddress(chunk);
    manifest.Update(address.bytes.data(), address.bytes.size());
    ASSERT_TRUE(assembler.OnChunk(42, chunk).ok());
  }
  EXPECT_EQ(assembler.active_streams(), 1u);
  auto assembled = assembler.OnEnd(
      42, wire::EncodeChunkEnd(value.size(), cuts.size(), manifest.Finish()));
  ASSERT_TRUE(assembled.ok());
  EXPECT_EQ(*assembled, value);
  EXPECT_EQ(assembler.active_streams(), 0u);
}

TEST(WireCodecTest, StreamAssemblerRejectsManifestMismatch) {
  wire::StreamAssembler assembler(1 << 20);
  ASSERT_TRUE(assembler.OnChunk(7, "chunk-one").ok());
  auto bad = assembler.OnEnd(
      7, wire::EncodeChunkEnd(9, 1, FilledId(0xEE)));  // wrong manifest
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(assembler.active_streams(), 0u);  // stream is gone either way
}

TEST(WireCodecTest, StreamAssemblerRejectsEndWithoutStreamAndOverflow) {
  wire::StreamAssembler assembler(16);
  auto orphan =
      assembler.OnEnd(1, wire::EncodeChunkEnd(0, 0, FilledId(0)));
  ASSERT_FALSE(orphan.ok());
  EXPECT_EQ(orphan.status().code(), StatusCode::kCorruption);

  // A stream exceeding the cap dies at the offending chunk.
  ASSERT_TRUE(assembler.OnChunk(2, "0123456789").ok());
  Status overflow = assembler.OnChunk(2, "0123456789");
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.code(), StatusCode::kCorruption);
}

TEST(WireCodecTest, ChunkCacheDedupesAndEvicts) {
  wire::WireChunkCache cache(64);  // tiny: retains a handful of chunks
  const Hash256 a1 = cache.Add("chunk-aaaa");
  const Hash256 a2 = cache.Add("chunk-aaaa");  // identical: dedup hit
  EXPECT_EQ(a1.bytes, a2.bytes);
  ChunkStoreStats stats = cache.stats();
  EXPECT_GE(stats.dedup_hits, 1u);
  EXPECT_LE(stats.physical_bytes, 64u + 10u);

  // Push enough distinct chunks through to force eviction; the cache must
  // stay bounded and keep answering.
  for (int i = 0; i < 100; ++i) {
    cache.Add("filler-chunk-" + std::to_string(i) + std::string(16, 'z'));
  }
  EXPECT_LE(cache.stats().physical_bytes, 256u);
}

TEST(WireCodecTest, ChunkCacheEntryCapBoundsRetainedRefsUnderDedup) {
  // 32 KiB cap -> at most two retained references (32 KiB / 16 KiB floor).
  // Heavy dedup keeps physical bytes flat, so the bytes cap never fires; the
  // reference-count cap must, or retained_ grows for the server's lifetime.
  wire::WireChunkCache cache(32u << 10);
  cache.Add(std::string(100, 'a'));
  const std::string b(100, 'b');
  for (int i = 0; i < 1000; ++i) cache.Add(b);
  const ChunkStoreStats stats = cache.stats();
  EXPECT_GE(stats.dedup_hits, 999u);
  // The entry cap evicted chunk a's only reference long ago: the store holds
  // just b now, at one copy.
  EXPECT_EQ(stats.distinct_chunks, 1u);
  EXPECT_LE(stats.physical_bytes, 100u);
}

// ----------------------------------------------- end-to-end over loopback ---

std::unique_ptr<RemoteStorageEngine> LoopbackRemote(
    StorageEngineService* service, WireCodec codec) {
  return std::make_unique<RemoteStorageEngine>(
      std::make_unique<LoopbackTransport>(
          [service](std::string_view request) {
            return service->Handle(request);
          }),
      codec);
}

TEST(WireCodecTest, BinaryAndJsonProxiesAgreeWithTheDirectEngine) {
  // Three engines, identical op sequence: direct, via binary codec, via
  // JSON codec. Content addressing makes equal inputs produce equal ids,
  // so any divergence is a codec bug.
  ForkBaseEngine direct;
  StorageEngineService binary_service(std::make_unique<ForkBaseEngine>());
  StorageEngineService json_service(std::make_unique<ForkBaseEngine>());
  auto binary = LoopbackRemote(&binary_service, WireCodec::kBinary);
  auto json = LoopbackRemote(&json_service, WireCodec::kJson);
  EXPECT_EQ(binary->codec(), WireCodec::kBinary);
  EXPECT_EQ(json->codec(), WireCodec::kJson);
  EXPECT_EQ(binary->Name(), "remote(forkbase)");
  EXPECT_EQ(json->Name(), "remote(forkbase)");

  const std::string blob(100 * 1024, '\x7F');
  auto dp = direct.Put("w", blob);
  auto bp = binary->Put("w", blob);
  auto jp = json->Put("w", blob);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(jp.ok());
  EXPECT_EQ(bp->id.ToHex(), dp->id.ToHex());
  EXPECT_EQ(jp->id.ToHex(), dp->id.ToHex());
  EXPECT_EQ(bp->logical_bytes, dp->logical_bytes);
  EXPECT_EQ(bp->new_physical_bytes, dp->new_physical_bytes);

  std::vector<PutRequest> batch = {{"w", blob + "2"}, {"x", "tiny"}};
  auto db = direct.PutMany(batch);
  auto bb = binary->PutMany(batch);
  auto jb = json->PutMany(batch);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(bb.ok());
  ASSERT_TRUE(jb.ok());
  for (size_t i = 0; i < db->size(); ++i) {
    EXPECT_EQ((*bb)[i].id.ToHex(), (*db)[i].id.ToHex());
    EXPECT_EQ((*jb)[i].id.ToHex(), (*db)[i].id.ToHex());
  }

  auto bg = binary->Get("w");
  ASSERT_TRUE(bg.ok());
  EXPECT_EQ(*bg, blob + "2");
  auto bv = binary->GetVersion(bp->id);
  ASSERT_TRUE(bv.ok());
  EXPECT_EQ(*bv, blob);

  EXPECT_TRUE(binary->HasVersion(bp->id));
  EXPECT_FALSE(binary->HasVersion(FilledId(0xFE)));
  EXPECT_EQ(binary->Versions("w").size(), direct.Versions("w").size());
  EXPECT_EQ(binary->ListAllVersions().size(),
            direct.ListAllVersions().size());
  EXPECT_EQ(binary->stats().puts, direct.stats().puts);
  EXPECT_EQ(binary->stats().logical_bytes, direct.stats().logical_bytes);
  EXPECT_DOUBLE_EQ(binary->ReadCost(1 << 20), direct.ReadCost(1 << 20));

  auto bd = binary->DeleteVersion((*bb)[1].id);
  auto dd = direct.DeleteVersion((*db)[1].id);
  ASSERT_TRUE(bd.ok());
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ(*bd, *dd);

  // Remote status round trip: NotFound comes back typed, not stringly.
  auto missing = binary->GetVersion(FilledId(0xFD));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(WireCodecTest, AutoCodecNegotiatesDownAgainstAJsonOnlyPeer) {
  // Emulates an old (pre-binary) service: binary requests bounce with a
  // JSON error document, JSON requests work. kAuto must settle on JSON and
  // then behave identically to a forced-JSON proxy.
  StorageEngineService service(std::make_unique<ForkBaseEngine>());
  auto old_peer = [&service](std::string_view request) -> std::string {
    if (wire::IsBinaryMessage(request)) {
      return "{\"ok\": false, \"code\": 12, \"message\": \"unparseable\"}";
    }
    return service.Handle(request);
  };
  RemoteStorageEngine remote(std::make_unique<LoopbackTransport>(old_peer),
                             WireCodec::kAuto);
  EXPECT_EQ(remote.codec(), WireCodec::kJson);
  EXPECT_EQ(remote.Name(), "remote(forkbase)");
  auto put = remote.Put("k", "value");
  ASSERT_TRUE(put.ok());
  auto get = remote.Get("k");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "value");
}

TEST(WireCodecTest, AutoCodecStaysBinaryAgainstACurrentPeer) {
  StorageEngineService service(std::make_unique<ForkBaseEngine>());
  auto remote = LoopbackRemote(&service, WireCodec::kAuto);
  EXPECT_EQ(remote->codec(), WireCodec::kBinary);
  EXPECT_EQ(remote->Name(), "remote(forkbase)");
}

}  // namespace
}  // namespace mlcask::storage
