// ThreadSanitizer-style stress tests for LibraryRegistry: dynamic library
// registration racing concurrent executor-side lookups must be safe, the
// pointer Get() hands out must stay valid while later registrations land,
// and a duplicate-name race must admit exactly one winner.

#include "pipeline/library_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mlcask::pipeline {
namespace {

/// A trivial library body whose identity is observable from the outside.
LibraryFn MakeFn(double tag) {
  return [tag](const ExecInput&) -> StatusOr<ExecOutput> {
    ExecOutput out;
    out.score = tag;
    out.metric = "tag";
    return out;
  };
}

TEST(RegistryStressTest, RegistrationRacesLookupsSafely) {
  LibraryRegistry registry;
  // Executors resolve these pre-registered impls the whole time.
  constexpr int kStable = 8;
  for (int i = 0; i < kStable; ++i) {
    ASSERT_TRUE(registry.Register("stable_" + std::to_string(i),
                                  MakeFn(i)).ok());
  }

  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kPerWriter = 120;
  std::atomic<bool> stop{false};
  std::atomic<int> lookup_failures{0};
  std::atomic<int> call_failures{0};

  std::vector<std::thread> threads;
  // Writers: stream in new libraries, all names disjoint.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        std::string name =
            "dyn_" + std::to_string(w) + "_" + std::to_string(i);
        if (!registry.Register(name, MakeFn(w * 1000 + i)).ok()) {
          call_failures.fetch_add(1);
        }
      }
    });
  }
  // Readers: hammer the executor-side surface (Get + call, Has, List, size)
  // while the map grows underneath them.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      ExecInput input;
      size_t last_size = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string name = "stable_" + std::to_string(r % kStable);
        auto fn = registry.Get(name);
        if (!fn.ok()) {
          lookup_failures.fetch_add(1);
          continue;
        }
        auto out = (**fn)(input);
        if (!out.ok() || out->score != static_cast<double>(r % kStable)) {
          call_failures.fetch_add(1);
        }
        if (!registry.Has(name)) lookup_failures.fetch_add(1);
        size_t size = registry.size();
        if (size < last_size) call_failures.fetch_add(1);  // never shrinks
        last_size = size;
        if (registry.List().size() != size && registry.List().size() < size) {
          call_failures.fetch_add(1);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(lookup_failures.load(), 0);
  EXPECT_EQ(call_failures.load(), 0);
  EXPECT_EQ(registry.size(),
            static_cast<size_t>(kStable + kWriters * kPerWriter));
  // Every dynamically registered library is resolvable afterwards.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; i += 17) {
      EXPECT_TRUE(
          registry.Has("dyn_" + std::to_string(w) + "_" + std::to_string(i)));
    }
  }
}

TEST(RegistryStressTest, DuplicateNameRaceAdmitsExactlyOneWinner) {
  for (int round = 0; round < 20; ++round) {
    LibraryRegistry registry;
    constexpr int kThreads = 4;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        if (registry.Register("contested", MakeFn(t)).ok()) {
          winners.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(registry.size(), 1u);
  }
}

TEST(RegistryStressTest, HandedOutPointerSurvivesLaterRegistrations) {
  LibraryRegistry registry;
  ASSERT_TRUE(registry.Register("first", MakeFn(42)).ok());
  auto fn = registry.Get("first");
  ASSERT_TRUE(fn.ok());
  const LibraryFn* pointer = *fn;

  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(registry.Register("later_" + std::to_string(i),
                                    MakeFn(i)).ok());
    }
  });
  ExecInput input;
  for (int i = 0; i < 500; ++i) {
    auto out = (*pointer)(input);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(out->score, 42.0);
  }
  writer.join();
  // Still the same mapping after the churn.
  auto again = registry.Get("first");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, pointer);
}

}  // namespace
}  // namespace mlcask::pipeline
