// Streamed prefix handoff (virtual-time pipelined chunk streaming): a
// candidate that reuses an artifact another worker finishes LATER on its
// own timeline charges overlap-adjusted wait (start at the producer's first
// chunk boundary, finish floored at the producer's finish plus one consumer
// chunk) instead of the producer's full finish time. The model must
// STRICTLY TIGHTEN makespans on the paper's merge scenarios — never
// inflate them — while leaving executions, scores, and the winner
// bit-identical; the opt-out flag restores the legacy charging for A/B.

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"

namespace mlcask {
namespace {

TEST(StreamSpanTest, PipelineAlgebra) {
  // Producer spans [10, 18] in 4 chunks (p = 2s/chunk).
  StreamSpan span{10.0, 18.0, 4};
  ASSERT_TRUE(span.streamable());
  EXPECT_DOUBLE_EQ(span.FirstChunkReadyS(), 12.0);
  // Slow consumer (3s/chunk, 12s total): tail floor 18 + 3 = 21, but its
  // compute bound (12 + 12 = 24) dominates — still < legacy 18 + 12 = 30.
  EXPECT_DOUBLE_EQ(span.ConsumerTailFloorS(12.0), 21.0);
  // Fast consumer (1s/chunk, 4s total): producer-bound — the tail floor
  // 18 + 1 = 19 exceeds its compute bound 12 + 4 = 16; legacy would be 22.
  EXPECT_DOUBLE_EQ(span.ConsumerTailFloorS(4.0), 19.0);

  // Degenerate spans carry no overlap.
  EXPECT_FALSE((StreamSpan{10.0, 18.0, 1}).streamable());
  EXPECT_FALSE((StreamSpan{18.0, 18.0, 4}).streamable());
}

enum class Scenario { kFig9, kFig11 };

struct MergeSummary {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  double makespan_s = 0;
};

/// One merge on a fresh deployment with an INLINE core (1 real thread):
/// virtual claim order is then fully deterministic at any virtual width,
/// so streamed-vs-legacy makespans compare exactly, not within jitter.
///
/// Workload matters here: streamed handoff overlaps a consumer with the
/// tail of an EXPENSIVE in-drain shared prefix. On `dpm` the schema-bumped
/// preprocessor (hmm_processing) costs ~3x the model, so cross-branch
/// candidates genuinely wait on sibling timelines; on `readmission` the
/// model dominates and the shared fresh prefixes are cheap, so streaming
/// must change (almost) nothing — both shapes are asserted below.
MergeSummary RunMerge(const std::string& workload, Scenario scenario,
                      size_t virtual_workers, bool streamed) {
  auto deployment = sim::MakeDeployment(workload, 0.06,
                                        /*folder_storage=*/false,
                                        /*num_workers=*/1);
  MLCASK_CHECK_OK(deployment.status());
  auto d = *std::move(deployment);
  if (scenario == Scenario::kFig9) {
    MLCASK_CHECK_OK(
        sim::BuildTwoBranchScenario(d.get(), /*extra_model_versions=*/4)
            .status());
  } else {
    MLCASK_CHECK_OK(sim::BuildDistributedMergeScenario(
                        d.get(), /*extra_extractor_versions=*/2,
                        /*extra_model_versions=*/2)
                        .status());
  }
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.num_workers = virtual_workers;
  options.core = d->core.get();
  options.streamed_handoff = streamed;
  auto report = op.Merge("master", "dev", options);
  MLCASK_CHECK_OK(report.status());
  MergeSummary s;
  s.executions = report->component_executions;
  s.best_score = report->best_score;
  s.best_index = report->best_index;
  s.makespan_s = report->makespan_s;
  return s;
}

class StreamedHandoffScenarioTest
    : public ::testing::TestWithParam<Scenario> {};

TEST_P(StreamedHandoffScenarioTest, StrictlyTightensParallelMakespan) {
  const Scenario scenario = GetParam();

  // Serial drain: one worker, one timeline — every reuse happens at a
  // clock already past the producer's finish, so streaming must be a
  // charging no-op (bit-identical makespan).
  MergeSummary serial_legacy =
      RunMerge("dpm", scenario, 1, /*streamed=*/false);
  MergeSummary serial_streamed =
      RunMerge("dpm", scenario, 1, /*streamed=*/true);
  EXPECT_EQ(serial_streamed.makespan_s, serial_legacy.makespan_s);
  EXPECT_EQ(serial_streamed.executions, serial_legacy.executions);
  EXPECT_EQ(serial_streamed.best_score, serial_legacy.best_score);

  // Parallel drain: candidates on fresh slots wait on the expensive
  // hmm_processing prefixes sibling timelines are still producing —
  // exactly the waits streaming overlaps.
  MergeSummary legacy = RunMerge("dpm", scenario, 4, /*streamed=*/false);
  MergeSummary streamed = RunMerge("dpm", scenario, 4, /*streamed=*/true);

  // The result is charging-invariant...
  EXPECT_EQ(streamed.executions, legacy.executions);
  EXPECT_EQ(streamed.best_index, legacy.best_index);
  EXPECT_EQ(streamed.best_score, legacy.best_score);

  // ...and the makespan strictly tightens, never inflates (measured:
  // ~13-19% on these configurations).
  EXPECT_LT(streamed.makespan_s, legacy.makespan_s);
  // Sanity floor: overlap can shave waits, not conjure negative time.
  EXPECT_GT(streamed.makespan_s, 0.0);
}

TEST_P(StreamedHandoffScenarioTest, NeverInflatesModelHeavyWorkloads) {
  // On the model-heavy readmission profile the fresh shared prefixes are
  // cheap, so streaming has (nearly) nothing to overlap — the guarantee
  // that matters is monotonicity: streamed charging never exceeds legacy.
  const Scenario scenario = GetParam();
  MergeSummary legacy =
      RunMerge("readmission", scenario, 4, /*streamed=*/false);
  MergeSummary streamed =
      RunMerge("readmission", scenario, 4, /*streamed=*/true);
  EXPECT_LE(streamed.makespan_s, legacy.makespan_s);
  EXPECT_EQ(streamed.executions, legacy.executions);
  EXPECT_EQ(streamed.best_index, legacy.best_index);
  EXPECT_EQ(streamed.best_score, legacy.best_score);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, StreamedHandoffScenarioTest,
                         ::testing::Values(Scenario::kFig9,
                                           Scenario::kFig11));

}  // namespace
}  // namespace mlcask
