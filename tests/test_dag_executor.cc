// Tests for general DAG execution (Definition 1 beyond chains): a diamond
// pipeline where two feature branches are joined before the model.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "pipeline/executor.h"
#include "sim/libraries.h"
#include "sim/workloads.h"
#include "storage/forkbase_engine.h"

namespace mlcask::pipeline {
namespace {

ComponentVersionSpec Spec(const std::string& name, ComponentKind kind,
                          uint64_t in_schema, uint64_t out_schema,
                          const std::string& impl, double cost = 1.0) {
  ComponentVersionSpec s;
  s.name = name;
  s.kind = kind;
  s.input_schema = in_schema;
  s.output_schema = out_schema;
  s.impl = impl;
  s.cost_per_krow_s = cost;
  return s;
}

class DagExecutorTest : public ::testing::Test {
 protected:
  DagExecutorTest() : executor_(&registry_, &engine_, &clock_) {
    MLCASK_CHECK_OK(sim::RegisterWorkloadLibraries(&registry_));
  }

  /// Diamond: readmission data fans out to path_a (feature extraction) and
  /// path_b (zero-impute cleansing), whose outputs a join concatenates
  /// before the model.
  Pipeline MakeDiamond() {
    Pipeline p("diamond");
    auto ds = Spec("dataset", ComponentKind::kDataset, 0, 1,
                   "gen_readmission", 1.0);
    ds.params.Set("rows", Json::Int(300));
    MLCASK_CHECK_OK(p.AddComponent(ds));
    auto a = Spec("path_a", ComponentKind::kPreprocessor, 1, 2,
                  "extract_ehr_features", 5.0);
    MLCASK_CHECK_OK(p.AddComponent(a));
    auto b = Spec("path_b", ComponentKind::kPreprocessor, 1, 2,
                  "cleanse_impute", 3.0);
    b.params.Set("strategy", Json::Str("zero"));
    MLCASK_CHECK_OK(p.AddComponent(b));
    auto join =
        Spec("join", ComponentKind::kPreprocessor, 2, 3, "concat_features", 1.0);
    MLCASK_CHECK_OK(p.AddComponent(join));
    auto model = Spec("model", ComponentKind::kModel, 3, 4, "train_logreg", 10.0);
    MLCASK_CHECK_OK(p.AddComponent(model));
    MLCASK_CHECK_OK(p.Connect("dataset", "path_a"));
    MLCASK_CHECK_OK(p.Connect("dataset", "path_b"));
    MLCASK_CHECK_OK(p.Connect("path_a", "join"));
    MLCASK_CHECK_OK(p.Connect("path_b", "join"));
    MLCASK_CHECK_OK(p.Connect("join", "model"));
    return p;
  }

  LibraryRegistry registry_;
  storage::ForkBaseEngine engine_;
  SimClock clock_;
  Executor executor_;
};

TEST_F(DagExecutorTest, DiamondValidatesButIsNotChain) {
  Pipeline p = MakeDiamond();
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_FALSE(p.IsChain());
  EXPECT_EQ(p.Predecessors("join").size(), 2u);
}

TEST_F(DagExecutorTest, ChainRunRejectsDag) {
  EXPECT_EQ(executor_.Run(MakeDiamond(), {}).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(DagExecutorTest, RunDagExecutesDiamondAndScores) {
  auto result = executor_.RunDag(MakeDiamond(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->compatibility_failure);
  ASSERT_EQ(result->components.size(), 5u);
  ASSERT_TRUE(result->has_score());
  EXPECT_GT(result->score, 0.5);
  EXPECT_EQ(executor_.executions(), 5u);
}

TEST_F(DagExecutorTest, RunDagAlsoHandlesChains) {
  auto w = sim::MakeWorkload("readmission", 0.05);
  ASSERT_TRUE(w.ok());
  auto chain_result = executor_.RunDag(w->initial, {});
  ASSERT_TRUE(chain_result.ok());
  EXPECT_TRUE(chain_result->has_score());
}

TEST_F(DagExecutorTest, DagCacheReusesWholePipeline) {
  ASSERT_TRUE(executor_.RunDag(MakeDiamond(), {}).ok());
  auto second = executor_.RunDag(MakeDiamond(), {});
  ASSERT_TRUE(second.ok());
  for (const auto& c : second->components) {
    EXPECT_TRUE(c.reused) << c.name;
  }
  EXPECT_EQ(executor_.executions(), 5u);
  EXPECT_DOUBLE_EQ(second->time.Total(), 0.0);
}

TEST_F(DagExecutorTest, BranchChangeOnlyRerunsAffectedSubgraph) {
  ASSERT_TRUE(executor_.RunDag(MakeDiamond(), {}).ok());
  // Update only path_b; path_a and the dataset must stay cached, while the
  // join and model (downstream of the change) re-run.
  Pipeline p = MakeDiamond();
  auto specs = p.components();
  Pipeline updated("diamond");
  for (auto spec : specs) {
    if (spec.name == "path_b") {
      spec.version = spec.version.BumpIncrement();
      spec.params.Set("variant", Json::Int(1));
    }
    MLCASK_CHECK_OK(updated.AddComponent(spec));
  }
  MLCASK_CHECK_OK(updated.Connect("dataset", "path_a"));
  MLCASK_CHECK_OK(updated.Connect("dataset", "path_b"));
  MLCASK_CHECK_OK(updated.Connect("path_a", "join"));
  MLCASK_CHECK_OK(updated.Connect("path_b", "join"));
  MLCASK_CHECK_OK(updated.Connect("join", "model"));

  auto result = executor_.RunDag(updated, {});
  ASSERT_TRUE(result.ok());
  for (const auto& c : result->components) {
    if (c.name == "dataset" || c.name == "path_a") {
      EXPECT_TRUE(c.reused) << c.name;
    } else {
      EXPECT_TRUE(c.executed) << c.name;
    }
  }
  EXPECT_EQ(executor_.executions(), 5u + 3u);
}

TEST_F(DagExecutorTest, JoinConcatenatesFeatureColumns) {
  Pipeline p = MakeDiamond();
  ExecutorOptions opts;
  opts.store_outputs = true;
  auto result = executor_.RunDag(p, opts);
  ASSERT_TRUE(result.ok());
  // Fetch the join output and verify it has columns from both branches.
  const version::ComponentRecord* join_rec = result->snapshot.Find("join");
  ASSERT_NE(join_rec, nullptr);
  ASSERT_TRUE(join_rec->has_output());
  auto bytes = engine_.GetVersion(join_rec->output_id);
  ASSERT_TRUE(bytes.ok());
  auto table = data::Table::Deserialize(*bytes);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->HasColumn("f0"));    // from extract (path_a)
  EXPECT_TRUE(table->HasColumn("age"));   // from cleanse (path_b)
  EXPECT_TRUE(table->HasColumn("label"));
}

TEST_F(DagExecutorTest, RuntimeIncompatibilityDetectedAtJoin) {
  Pipeline p("broken");
  auto ds = Spec("dataset", ComponentKind::kDataset, 0, 1, "gen_readmission");
  ds.params.Set("rows", Json::Int(100));
  MLCASK_CHECK_OK(p.AddComponent(ds));
  auto a = Spec("path_a", ComponentKind::kPreprocessor, 1, 2,
                "cleanse_impute");
  MLCASK_CHECK_OK(p.AddComponent(a));
  // join declares input schema 9, matching neither branch.
  auto join = Spec("join", ComponentKind::kPreprocessor, 9, 3,
                   "concat_features");
  MLCASK_CHECK_OK(p.AddComponent(join));
  MLCASK_CHECK_OK(p.Connect("dataset", "path_a"));
  MLCASK_CHECK_OK(p.Connect("path_a", "join"));

  ExecutorOptions opts;
  opts.precheck_compatibility = false;
  auto result = executor_.RunDag(p, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->compatibility_failure);
  EXPECT_EQ(result->failed_component, "join");

  // With the precheck the run is refused before any execution.
  executor_.ClearCache();
  uint64_t execs_before = executor_.executions();
  auto prechecked = executor_.RunDag(p, {});
  ASSERT_TRUE(prechecked.ok());
  EXPECT_TRUE(prechecked->compatibility_failure);
  EXPECT_EQ(executor_.executions(), execs_before);
}

TEST_F(DagExecutorTest, RunDagNeverConstructsPerCallPools) {
  // The pool-lifetime regression the shared-core refactor exists for:
  // repeated RunDag calls must not construct ExecutionCores per call. The
  // fallback path builds exactly one lazy pool per executor; the shared
  // path builds none at all.
  Pipeline p = MakeDiamond();
  const uint64_t before = ExecutionCore::instances_created();
  for (int i = 0; i < 5; ++i) {
    ExecutorOptions opts;
    opts.num_workers = 2;
    auto result = executor_.RunDag(p, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->compatibility_failure);
  }
  EXPECT_EQ(ExecutionCore::instances_created() - before, 1u)
      << "fallback pool must be built lazily, once";

  ExecutionCore shared(2);
  const uint64_t with_shared = ExecutionCore::instances_created();
  for (int i = 0; i < 5; ++i) {
    ExecutorOptions opts;
    opts.num_workers = 2;
    opts.core = &shared;
    auto result = executor_.RunDag(p, opts);
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(ExecutionCore::instances_created() - with_shared, 0u)
      << "a shared pool must be reused, not copied per call";
  EXPECT_EQ(shared.stats().batches_run, 5u);
}

TEST_F(DagExecutorTest, ConcatRequiresLabel) {
  // A join whose inputs carry no label is a hard library error.
  data::Table no_label;
  MLCASK_CHECK_OK(no_label.AddDoubleColumn("x", {1.0, 2.0}));
  ExecInput in;
  in.inputs = {&no_label};
  in.input = &no_label;
  Json params = Json::Object();
  in.params = &params;
  auto fn = registry_.Get("concat_features");
  ASSERT_TRUE(fn.ok());
  EXPECT_TRUE((**fn)(in).status().IsInvalidArgument());
}

}  // namespace
}  // namespace mlcask::pipeline
