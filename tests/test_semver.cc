#include "version/semver.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mlcask::version {
namespace {

TEST(SemverTest, InitialIsZeroZero) {
  SemanticVersion v = SemanticVersion::Initial();
  EXPECT_EQ(v.branch, "master");
  EXPECT_EQ(v.schema, 0u);
  EXPECT_EQ(v.increment, 0u);
  EXPECT_EQ(v.ToString(), "0.0");
}

TEST(SemverTest, MasterSimplification) {
  SemanticVersion v{"master", 1, 2};
  EXPECT_EQ(v.ToString(), "1.2");
  EXPECT_EQ(v.ToString(/*simplify_master=*/false), "master@1.2");
  SemanticVersion dev{"dev", 0, 3};
  EXPECT_EQ(dev.ToString(), "dev@0.3");
}

TEST(SemverTest, ParseWithBranch) {
  auto v = SemanticVersion::Parse("Jane-dev@2.5");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->branch, "Jane-dev");
  EXPECT_EQ(v->schema, 2u);
  EXPECT_EQ(v->increment, 5u);
}

TEST(SemverTest, ParseBareImpliesMaster) {
  auto v = SemanticVersion::Parse("0.1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->branch, "master");
  EXPECT_EQ(v->schema, 0u);
  EXPECT_EQ(v->increment, 1u);
}

TEST(SemverTest, RoundTrip) {
  for (const char* s : {"0.0", "3.17", "dev@1.0", "Frank-dev@0.2"}) {
    auto v = SemanticVersion::Parse(s);
    ASSERT_TRUE(v.ok()) << s;
    EXPECT_EQ(v->ToString(), s);
  }
}

TEST(SemverTest, ParseRejectsMalformed) {
  EXPECT_FALSE(SemanticVersion::Parse("").ok());
  EXPECT_FALSE(SemanticVersion::Parse("1").ok());
  EXPECT_FALSE(SemanticVersion::Parse("a.b").ok());
  EXPECT_FALSE(SemanticVersion::Parse("@1.0").ok());
  EXPECT_FALSE(SemanticVersion::Parse("dev@").ok());
  EXPECT_FALSE(SemanticVersion::Parse("dev@1").ok());
  EXPECT_FALSE(SemanticVersion::Parse("1.2.3").ok());
  EXPECT_FALSE(SemanticVersion::Parse("-1.0").ok());
}

TEST(SemverTest, BumpIncrementKeepsSchema) {
  SemanticVersion v{"master", 1, 4};
  SemanticVersion b = v.BumpIncrement();
  EXPECT_EQ(b.ToString(), "1.5");
  EXPECT_EQ(v.ToString(), "1.4");  // original untouched
}

TEST(SemverTest, BumpSchemaResetsIncrement) {
  // Paper Sec. IV-B: subsequent commits only affect the increment domain if
  // schema is not changed; a schema change starts a new major line.
  SemanticVersion v{"master", 0, 7};
  SemanticVersion b = v.BumpSchema();
  EXPECT_EQ(b.schema, 1u);
  EXPECT_EQ(b.increment, 0u);
  EXPECT_EQ(b.ToString(), "1.0");
}

TEST(SemverTest, OnBranchRehomes) {
  SemanticVersion v{"master", 1, 1};
  SemanticVersion d = v.OnBranch("dev");
  EXPECT_EQ(d.ToString(), "dev@1.1");
  EXPECT_EQ(d.schema, v.schema);
}

TEST(SemverTest, OrderingBySchemaThenIncrement) {
  SemanticVersion a{"master", 0, 1};
  SemanticVersion b{"master", 0, 2};
  SemanticVersion c{"master", 1, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(c < a);
}

TEST(SemverTest, EqualityIncludesBranch) {
  SemanticVersion a{"master", 0, 1};
  SemanticVersion b{"dev", 0, 1};
  EXPECT_NE(a, b);
  EXPECT_EQ(a, (SemanticVersion{"master", 0, 1}));
}

TEST(SemverTest, StreamOutput) {
  std::ostringstream oss;
  oss << SemanticVersion{"dev", 1, 0};
  EXPECT_EQ(oss.str(), "dev@1.0");
}

}  // namespace
}  // namespace mlcask::version
