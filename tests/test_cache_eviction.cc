// Tests for the artifact cache's byte-bounded LRU eviction: leased slots
// and pinned entries are untouchable, eviction order is LRU with Find
// refreshing recency, and a byte cap on a full merge trades recomputation
// for residency without ever changing the merge result.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <list>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "merge/merge_op.h"
#include "pipeline/artifact_cache.h"
#include "sim/scenario.h"

namespace mlcask::pipeline {
namespace {

/// Key pinned to one shard (shard index = bytes[0] % 16) so LRU order is
/// strict within the test's working set.
Hash256 ShardKey(uint8_t shard, uint8_t id) {
  Hash256 key;
  key.bytes[0] = shard;
  key.bytes[1] = id;
  return key;
}

/// An entry whose payload is `rows` doubles — sized so a handful of entries
/// exceed a small cap.
ArtifactEntry MakeEntry(double score, size_t rows = 64) {
  ArtifactEntry entry;
  std::vector<double> values(rows, score);
  MLCASK_CHECK_OK(entry.table.AddDoubleColumn("v", std::move(values)));
  entry.score = score;
  return entry;
}

uint64_t OneEntryBytes() {
  static const uint64_t bytes = ArtifactCache::EntryBytes(MakeEntry(0));
  return bytes;
}

TEST(CacheEvictionTest, UnboundedCacheNeverEvicts) {
  ArtifactCache cache;  // default options: no cap
  for (uint8_t i = 0; i < 32; ++i) {
    cache.Insert(ShardKey(i % 16, i), MakeEntry(i));
  }
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheEvictionTest, EvictsLeastRecentlyUsedWhenOverCap) {
  ArtifactCache::Options options;
  options.max_bytes = 3 * OneEntryBytes() + OneEntryBytes() / 2;
  ArtifactCache cache(options);
  for (uint8_t i = 0; i < 6; ++i) {
    cache.Insert(ShardKey(3, i), MakeEntry(i));
    EXPECT_LE(cache.stats().bytes, options.max_bytes) << "after insert " << +i;
  }
  // Only the three most recent survive.
  EXPECT_EQ(cache.Find(ShardKey(3, 0)), nullptr);
  EXPECT_EQ(cache.Find(ShardKey(3, 1)), nullptr);
  EXPECT_EQ(cache.Find(ShardKey(3, 2)), nullptr);
  EXPECT_NE(cache.Find(ShardKey(3, 3)), nullptr);
  EXPECT_NE(cache.Find(ShardKey(3, 4)), nullptr);
  EXPECT_NE(cache.Find(ShardKey(3, 5)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_LE(cache.stats().peak_bytes, options.max_bytes);
}

TEST(CacheEvictionTest, FindRefreshesRecency) {
  ArtifactCache::Options options;
  options.max_bytes = 2 * OneEntryBytes() + OneEntryBytes() / 2;
  ArtifactCache cache(options);
  cache.Insert(ShardKey(5, 0), MakeEntry(0));
  cache.Insert(ShardKey(5, 1), MakeEntry(1));
  // Touch 0 so 1 becomes the LRU victim of the next insert.
  EXPECT_NE(cache.Find(ShardKey(5, 0)), nullptr);
  cache.Insert(ShardKey(5, 2), MakeEntry(2));
  EXPECT_NE(cache.Find(ShardKey(5, 0)), nullptr);
  EXPECT_EQ(cache.Find(ShardKey(5, 1)), nullptr);
  EXPECT_NE(cache.Find(ShardKey(5, 2)), nullptr);
}

TEST(CacheEvictionTest, PinnedEntriesAreNeverEvicted) {
  ArtifactCache::Options options;
  options.max_bytes = 2 * OneEntryBytes();
  ArtifactCache cache(options);
  // Hold an EntryPtr to the oldest entry: the LRU policy must skip it even
  // though it is the nominal victim, and the held pointer stays valid.
  ArtifactCache::EntryPtr pinned = cache.Insert(ShardKey(7, 0), MakeEntry(42));
  for (uint8_t i = 1; i < 8; ++i) {
    cache.Insert(ShardKey(7, i), MakeEntry(i));
  }
  ArtifactCache::EntryPtr found = cache.Find(ShardKey(7, 0));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), pinned.get());
  EXPECT_DOUBLE_EQ(pinned->score, 42.0);
  // Once unpinned it becomes evictable again.
  found.reset();
  pinned.reset();
  for (uint8_t i = 8; i < 12; ++i) {
    cache.Insert(ShardKey(7, i), MakeEntry(i));
  }
  EXPECT_EQ(cache.Find(ShardKey(7, 0)), nullptr);
}

TEST(CacheEvictionTest, LeasedSlotsSurviveEvictionSweeps) {
  ArtifactCache::Options options;
  options.max_bytes = 2 * OneEntryBytes();
  ArtifactCache cache(options);
  ArtifactCache::Acquired acquired = cache.Acquire(ShardKey(9, 0));
  ASSERT_NE(acquired.lease, nullptr);
  // Sweeps triggered by these inserts must not disturb the pending slot.
  for (uint8_t i = 1; i < 10; ++i) {
    cache.Insert(ShardKey(9, i), MakeEntry(i));
  }
  // The lease still publishes, and a waiter sees the published entry.
  ArtifactCache::EntryPtr published =
      cache.Fulfill(acquired.lease.get(), MakeEntry(0.25));
  ArtifactCache::EntryPtr found = cache.Find(ShardKey(9, 0));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), published.get());
}

TEST(CacheEvictionTest, OversizedEntryIsStillAdmitted) {
  ArtifactCache::Options options;
  options.max_bytes = OneEntryBytes() / 2;  // smaller than any entry
  ArtifactCache cache(options);
  cache.Insert(ShardKey(11, 0), MakeEntry(1.0));
  // Correctness first: the publish succeeds (high-water-mark semantics)
  // even though the cap can never be met.
  EXPECT_NE(cache.Find(ShardKey(11, 0)), nullptr);
  EXPECT_GT(cache.stats().bytes, options.max_bytes);
}

TEST(CacheEvictionTest, ClearResetsByteAccounting) {
  ArtifactCache::Options options;
  options.max_bytes = 64 * OneEntryBytes();
  ArtifactCache cache(options);
  for (uint8_t i = 0; i < 8; ++i) {
    cache.Insert(ShardKey(i, i), MakeEntry(i));
  }
  EXPECT_GT(cache.stats().bytes, 0u);
  cache.Clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

/// GATING regression for the global recency epoch. The byte cap used to be
/// enforced by a per-shard LRU swept round-robin from shard 0, which this
/// recorded trace measured at ~5.3x the recomputations of an ideal global
/// LRU on an adversarial layout (hot keys concentrated on the low shards
/// the sweep drained first, cold keys on high shards). Eviction now picks
/// the globally-oldest unpinned entry via the cross-shard recency heap, so
/// the same trace must stay within 1.5x of the oracle — a regression back
/// to any shard-local eviction order fails here. The trace replays through
/// (a) the real capped cache, counting recomputations (granted leases), and
/// (b) an ideal global-LRU oracle of the same capacity, counting misses.
TEST(CacheEvictionTest, GlobalEpochEvictionTracksGlobalLruOracle) {
  constexpr size_t kHot = 16;    // 4 keys on each of shards 0..3
  constexpr size_t kCold = 16;   // 2 keys on each of shards 8..15
  constexpr size_t kCapacityEntries = 24;
  constexpr int kRounds = 30;

  std::vector<Hash256> hot, cold;
  for (size_t i = 0; i < kHot; ++i) {
    hot.push_back(ShardKey(static_cast<uint8_t>(i % 4),
                           static_cast<uint8_t>(i)));
  }
  for (size_t j = 0; j < kCold; ++j) {
    cold.push_back(ShardKey(static_cast<uint8_t>(8 + j % 8),
                            static_cast<uint8_t>(64 + j)));
  }
  // The trace: every round touches the whole hot set, then one cold key.
  // A capacity of 24 fits the 16 hot keys plus churn; a global LRU keeps
  // the hot set resident for the entire trace.
  std::vector<Hash256> trace;
  for (int r = 0; r < kRounds; ++r) {
    for (const Hash256& key : hot) trace.push_back(key);
    trace.push_back(cold[static_cast<size_t>(r) % kCold]);
  }

  // (a) The real cache.
  ArtifactCache::Options options;
  options.max_bytes =
      kCapacityEntries * OneEntryBytes() + OneEntryBytes() / 2;
  ArtifactCache cache(options);
  uint64_t recomputations = 0;
  for (const Hash256& key : trace) {
    ArtifactCache::Acquired acquired = cache.Acquire(key);
    if (acquired.lease != nullptr) {
      ++recomputations;
      cache.Fulfill(acquired.lease.get(), MakeEntry(1.0));
    }
  }

  // (b) The ideal global-LRU oracle at the same entry capacity.
  uint64_t oracle_misses = 0;
  std::list<Hash256> lru;  // least recent first
  std::unordered_map<Hash256, std::list<Hash256>::iterator, Hash256Hasher>
      resident;
  for (const Hash256& key : trace) {
    auto it = resident.find(key);
    if (it != resident.end()) {
      lru.erase(it->second);
    } else {
      ++oracle_misses;
      if (resident.size() == kCapacityEntries) {
        resident.erase(lru.front());
        lru.pop_front();
      }
    }
    lru.push_back(key);
    resident[key] = std::prev(lru.end());
  }

  const double ratio = static_cast<double>(recomputations) /
                       static_cast<double>(oracle_misses);
  std::printf("[trace] sharded-LRU recomputations=%llu, global-LRU oracle "
              "misses=%llu, ratio=%.2fx over %zu accesses\n",
              static_cast<unsigned long long>(recomputations),
              static_cast<unsigned long long>(oracle_misses), ratio,
              trace.size());
  ::testing::Test::RecordProperty("sharded_recomputations",
                                  static_cast<int>(recomputations));
  ::testing::Test::RecordProperty("global_lru_oracle_misses",
                                  static_cast<int>(oracle_misses));

  // Every key misses at least once, under either policy, and the real
  // cache can at best match the ideal oracle.
  EXPECT_GE(oracle_misses, kHot + kCold);
  EXPECT_GE(recomputations, oracle_misses);
  // The gate: global-epoch eviction must track the global-LRU oracle on
  // the layout that defeated the per-shard sweep (~5.3x). The measured
  // ratio is 1.0x; 1.5x leaves headroom for policy tweaks (batching,
  // approximate heaps) without readmitting shard-local eviction order.
  EXPECT_LE(static_cast<double>(recomputations),
            1.5 * static_cast<double>(oracle_misses));
}

TEST(CacheEvictionTest, ConcurrentChurnRecomputesNotCorrupts) {
  // Threads churn a keyspace several times larger than the cap through the
  // Acquire/Fulfill protocol. Entries are evicted and recomputed
  // constantly; every observed entry must carry its key's canonical value
  // and every held EntryPtr must stay readable.
  ArtifactCache::Options options;
  options.max_bytes = 6 * OneEntryBytes();
  ArtifactCache cache(options);
  constexpr int kKeys = 24;
  constexpr int kIters = 300;
  std::atomic<bool> corrupt{false};
  std::atomic<uint64_t> computes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int id = (i * 7 + t * 3) % kKeys;
        const double canonical = id * 0.5;
        ArtifactCache::Acquired acquired =
            cache.Acquire(ShardKey(static_cast<uint8_t>(id % 16),
                                   static_cast<uint8_t>(id)));
        if (acquired.lease != nullptr) {
          computes.fetch_add(1);
          cache.Fulfill(acquired.lease.get(), MakeEntry(canonical));
        } else if (acquired.entry->score != canonical) {
          corrupt = true;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(corrupt.load());
  // Churn forces recomputation: more computes than distinct keys.
  EXPECT_GT(computes.load(), static_cast<uint64_t>(kKeys));
  EXPECT_GT(cache.stats().evictions, 0u);
}

}  // namespace
}  // namespace mlcask::pipeline

namespace mlcask::merge {
namespace {

struct MergeResultSummary {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  uint64_t peak_bytes = 0;
  uint64_t evictions = 0;
  uint64_t largest_entry_bytes = 0;
  size_t components = 0;
  size_t materialized_outputs = 0;  ///< Merge-commit components with output.
};

MergeResultSummary RunScenarioMerge(size_t workers, uint64_t cache_max_bytes) {
  // Real pool threads = workers, so the parallel cases genuinely race the
  // cache's publish/evict paths instead of running inline.
  auto deployment = sim::MakeDeployment("readmission", 0.1,
                                        /*folder_storage=*/false, workers);
  MLCASK_CHECK_OK(deployment.status());
  auto d = *std::move(deployment);
  MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(d.get()).status());
  MergeOperation op(d->repo.get(), d->libraries.get(), d->registry.get(),
                    d->engine.get(), d->clock.get());
  MergeOptions options;
  options.num_workers = workers;
  options.core = d->core.get();
  options.cache_max_bytes = cache_max_bytes;
  auto report = op.Merge("master", "dev", options);
  MLCASK_CHECK_OK(report.status());
  MergeResultSummary summary;
  summary.executions = report->component_executions;
  summary.best_score = report->best_score;
  summary.best_index = report->best_index;
  summary.peak_bytes = report->cache_stats.peak_bytes;
  summary.evictions = report->cache_stats.evictions;
  summary.largest_entry_bytes = report->cache_stats.largest_entry_bytes;
  auto head = d->repo->Head("master");
  MLCASK_CHECK_OK(head.status());
  for (const version::ComponentRecord& rec : (*head)->snapshot.components) {
    summary.components += 1;
    if (!rec.output_id.IsZero()) summary.materialized_outputs += 1;
  }
  return summary;
}

TEST(MergeCacheCapTest, GenerousCapKeepsExecutionsIdentical) {
  MergeResultSummary uncapped = RunScenarioMerge(1, 0);
  // A cap above the working set must be invisible: same executions, same
  // winner, nothing evicted — serial and parallel alike.
  const uint64_t generous = uncapped.peak_bytes * 2;
  for (size_t workers : {size_t{1}, size_t{4}}) {
    MergeResultSummary capped = RunScenarioMerge(workers, generous);
    EXPECT_EQ(capped.executions, uncapped.executions) << "workers=" << workers;
    EXPECT_EQ(capped.best_score, uncapped.best_score) << "workers=" << workers;
    EXPECT_EQ(capped.best_index, uncapped.best_index) << "workers=" << workers;
    EXPECT_EQ(capped.evictions, 0u) << "workers=" << workers;
  }
}

TEST(MergeCacheCapTest, TightCapRecomputesSameWinner) {
  MergeResultSummary uncapped = RunScenarioMerge(1, 0);
  const uint64_t tight = uncapped.peak_bytes / 2;
  for (size_t workers : {size_t{1}, size_t{4}}) {
    MergeResultSummary capped = RunScenarioMerge(workers, tight);
    // Bounded residency: the transiently pinned working set (never
    // evictable — a resume checkpoint plus current input per running
    // candidate, serial included) may sit on top of the cap.
    const uint64_t pin_slack = 2 * workers * capped.largest_entry_bytes;
    EXPECT_LE(capped.peak_bytes, tight + pin_slack) << "workers=" << workers;
    EXPECT_GT(capped.evictions, 0u) << "workers=" << workers;
    // ...paid for with recomputation, never with a different result.
    EXPECT_GE(capped.executions, uncapped.executions) << "workers=" << workers;
    EXPECT_EQ(capped.best_score, uncapped.best_score) << "workers=" << workers;
    EXPECT_EQ(capped.best_index, uncapped.best_index) << "workers=" << workers;
    // The merge commit must persist COMPLETE: evicted winner prefixes are
    // recomputed for materialization, not silently dropped.
    EXPECT_GT(capped.components, 0u);
    EXPECT_EQ(capped.materialized_outputs, capped.components)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace mlcask::merge
