// Chaos harness: seeded fault injection against loopback and real
// multi-process clusters, asserting the self-healing invariant — every
// drill ends in a TYPED status or a fully recovered cluster with the
// correct data, never a hang and never a wrong answer. Covers the
// FaultSpec grammar, disk-full 2PC aborts, the router's durable-intent
// recovery (roll-forward, fencing, idempotent replay), the shard health
// view, transparent redial with the server-side replay ledger, bounded
// Deferred::Get under redial, crash decoding in LocalServerCluster::Stop,
// kill -9 + restart recovery on durable shards, and a seeded fault sweep
// over real 4-shard merges checked bit-identical against the fault-free
// fingerprint.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/sha256.h"
#include "common/strings.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "storage/fault_injector.h"
#include "storage/forkbase_engine.h"
#include "storage/remote_engine.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"
#include "storage/socket_transport.h"
#include "storage/wire_codec.h"

#ifndef MLCASK_SERVER_BIN
#define MLCASK_SERVER_BIN ""
#endif

namespace mlcask::storage {
namespace {

// Mirrors the router's internal staging/intent encoding (sharded_engine.cc)
// so the white-box drills can plant the exact on-disk state a crashed
// coordinator leaves behind.
constexpr char kStagingPrefix[] = "__2pc__/";
constexpr char kIntentHeader[] = "__2pc-intent__\x1f";

std::string StagingKey(uint64_t txn, size_t shard, size_t write) {
  return StrFormat("%stxn%llu/s%zu/w%zu", kStagingPrefix,
                   static_cast<unsigned long long>(txn), shard, write);
}

std::string DecisionKey(uint64_t txn) {
  return StrFormat("%stxn%llu/decision", kStagingPrefix,
                   static_cast<unsigned long long>(txn));
}

std::string Intent(const std::string& key, const std::string& data) {
  return std::string(kIntentHeader) + key + '\x1f' + data;
}

size_t CountStagedKeys(const ShardedStorageEngine& cluster) {
  size_t staged = 0;
  for (size_t s = 0; s < cluster.num_shards(); ++s) {
    for (const auto& [key, id] : cluster.shard(s)->ListAllVersions()) {
      (void)id;
      if (key.rfind(kStagingPrefix, 0) == 0) ++staged;
    }
  }
  return staged;
}

/// A loopback cluster whose every backend is a FaultyEngine, with the
/// decorator handles exposed so tests can flip shards dead/alive.
std::unique_ptr<ShardedStorageEngine> MakeFaultyCluster(
    size_t shards, std::vector<FaultyEngine*>* handles,
    const FaultSpec& spec = FaultSpec()) {
  handles->clear();
  auto injector = std::make_shared<FaultInjector>(spec);
  return MakeLoopbackCluster(shards, [&]() {
    auto engine = std::make_unique<FaultyEngine>(
        std::make_unique<ForkBaseEngine>(), injector);
    handles->push_back(engine.get());
    return engine;
  });
}

/// A key the cluster routes to shard `target` (object namespace, so it is
/// NOT replicated).
std::string KeyOnShard(const ShardedStorageEngine& cluster, size_t target,
                       const std::string& hint) {
  for (int i = 0; i < 4096; ++i) {
    std::string key = "artifact/" + hint + std::to_string(i);
    if (cluster.ShardForKey(key) == target) return key;
  }
  ADD_FAILURE() << "no key found routing to shard " << target;
  return "artifact/unroutable";
}

LocalServerCluster::Options ServerOptions() {
  LocalServerCluster::Options options;
  options.server_binary = MLCASK_SERVER_BIN;
  return options;
}

// ---------------------------------------------------------------------------
// FaultSpec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, ParseToStringRoundTrip) {
  auto spec = FaultSpec::Parse(
      "seed=7,drop=0.25,dropafter=0.5,garble=0.125,delay_ms=20:0.5,"
      "drip_ms_per_kib=3,diskfull=0.0625,kill_after=9");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->drop, 0.25);
  EXPECT_DOUBLE_EQ(spec->drop_after, 0.5);
  EXPECT_DOUBLE_EQ(spec->garble, 0.125);
  EXPECT_EQ(spec->delay_ms, 20u);
  EXPECT_DOUBLE_EQ(spec->delay_prob, 0.5);
  EXPECT_EQ(spec->drip_ms_per_kib, 3u);
  EXPECT_DOUBLE_EQ(spec->disk_full, 0.0625);
  EXPECT_EQ(spec->kill_after, 9u);
  EXPECT_TRUE(spec->any());

  // The normalized string reproduces the schedule exactly.
  auto reparsed = FaultSpec::Parse(spec->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->ToString(), spec->ToString());
}

TEST(FaultSpecTest, RejectsUnknownKeysAndBadValues) {
  EXPECT_FALSE(FaultSpec::Parse("explode=1").ok());
  EXPECT_FALSE(FaultSpec::Parse("drop=maybe").ok());
  EXPECT_FALSE(FaultSpec::Parse("drop=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("delay_ms=10").ok());  // missing :prob
  auto empty = FaultSpec::Parse("");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_FALSE(empty->any());
}

// ---------------------------------------------------------------------------
// Disk-full: a typed 2PC abort, never partial state
// ---------------------------------------------------------------------------

TEST(ChaosTest, DiskFullShardAbortsReplicatedPutWithNoStagedResidue) {
  // Shard 2's engine fails every mutation "disk full"; the other shards are
  // healthy, so their prepares land and must be rolled back by the abort.
  size_t built = 0;
  std::vector<FaultyEngine*> handles;
  auto full_injector = std::make_shared<FaultInjector>(
      *FaultSpec::Parse("seed=3,diskfull=1"));
  auto none_injector = std::make_shared<FaultInjector>(FaultSpec());
  auto cluster = MakeLoopbackCluster(3, [&]() {
    auto engine = std::make_unique<FaultyEngine>(
        std::make_unique<ForkBaseEngine>(),
        built == 2 ? full_injector : none_injector);
    handles.push_back(engine.get());
    ++built;
    return engine;
  });

  auto put = cluster->Put("pipeline/chaos/commits", "commit-json");
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.status().code(), StatusCode::kUnavailable) << put.status();
  EXPECT_NE(put.status().ToString().find("disk full"), std::string::npos)
      << put.status();

  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.aborts, 1u);
  EXPECT_EQ(tp.commits, 0u);
  // The healthy shards' staged intents were cleaned up; the key never
  // surfaced anywhere.
  EXPECT_EQ(CountStagedKeys(*cluster), 0u);
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    EXPECT_TRUE(cluster->shard(s)->Versions("pipeline/chaos/commits").empty())
        << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Durable 2PC recovery: roll-forward, fencing, idempotent replay
// ---------------------------------------------------------------------------

TEST(ChaosTest, RecoverRollsForwardTransactionWithDurableDecision) {
  std::vector<FaultyEngine*> handles;
  auto cluster = MakeFaultyCluster(3, &handles);

  // Plant exactly what a coordinator that died between writing its commit
  // decision and applying phase 2 leaves behind: one staged intent per
  // shard, plus the decision marker on shard 0.
  std::vector<std::string> keys, payloads;
  for (size_t s = 0; s < 3; ++s) {
    keys.push_back(KeyOnShard(*cluster, s, "rollfwd"));
    payloads.push_back("payload-" + std::to_string(s));
    auto staged = cluster->shard(s)->Put(StagingKey(77, s, s),
                                         Intent(keys[s], payloads[s]));
    ASSERT_TRUE(staged.ok()) << staged.status();
  }
  auto decision = cluster->shard(0)->Put(DecisionKey(77),
                                         std::string(kIntentHeader) + "commit");
  ASSERT_TRUE(decision.ok()) << decision.status();

  auto recovered = cluster->RecoverTwoPhase();
  ASSERT_TRUE(recovered.ok()) << recovered;

  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.recovered_transactions, 1u);
  EXPECT_EQ(tp.fenced_transactions, 0u);
  EXPECT_EQ(tp.replayed_writes, 3u);
  // Every intended write landed, readable through the router, and no
  // staging state survived.
  for (size_t s = 0; s < 3; ++s) {
    auto got = cluster->Get(keys[s]);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, payloads[s]);
  }
  EXPECT_EQ(CountStagedKeys(*cluster), 0u);
}

TEST(ChaosTest, RecoverFencesTransactionWithoutDecision) {
  std::vector<FaultyEngine*> handles;
  auto cluster = MakeFaultyCluster(3, &handles);

  // A coordinator that died BEFORE the decision point: staged intents, no
  // decision marker. Recovery must destroy the intents (fencing the zombie
  // coordinator) and never surface the key.
  std::vector<std::string> keys;
  for (size_t s = 0; s < 3; ++s) {
    keys.push_back(KeyOnShard(*cluster, s, "fence"));
    auto staged = cluster->shard(s)->Put(StagingKey(9, s, s),
                                         Intent(keys[s], "never-lands"));
    ASSERT_TRUE(staged.ok()) << staged.status();
  }

  auto recovered = cluster->RecoverTwoPhase();
  ASSERT_TRUE(recovered.ok()) << recovered;

  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.recovered_transactions, 0u);
  EXPECT_EQ(tp.fenced_transactions, 1u);
  EXPECT_EQ(tp.replayed_writes, 0u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(cluster->shard(s)->Versions(keys[s]).empty()) << "shard " << s;
  }
  EXPECT_EQ(CountStagedKeys(*cluster), 0u);
}

TEST(ChaosTest, RecoverReplayIsIdempotentOnAlreadyAppliedWrites) {
  std::vector<FaultyEngine*> handles;
  auto cluster = MakeFaultyCluster(2, &handles);

  // A coordinator that died between applying the write and cleaning up the
  // staging records: the target key already holds the intent's payload.
  // Replay must recognize it by payload identity and not write a duplicate
  // version.
  const std::string key = KeyOnShard(*cluster, 1, "idem");
  ASSERT_TRUE(cluster->Put(key, "applied-once").ok());
  ASSERT_TRUE(cluster->shard(1)
                  ->Put(StagingKey(4, 1, 0), Intent(key, "applied-once"))
                  .ok());
  ASSERT_TRUE(cluster->shard(0)
                  ->Put(DecisionKey(4), std::string(kIntentHeader) + "commit")
                  .ok());

  auto recovered = cluster->RecoverTwoPhase();
  ASSERT_TRUE(recovered.ok()) << recovered;

  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.recovered_transactions, 1u);
  EXPECT_EQ(tp.replayed_writes, 0u);  // recognized, not re-applied
  EXPECT_EQ(cluster->shard(1)->Versions(key).size(), 1u);
  EXPECT_EQ(CountStagedKeys(*cluster), 0u);
}

TEST(ChaosTest, RecoverOnCleanClusterIsANoOp) {
  std::vector<FaultyEngine*> handles;
  auto cluster = MakeFaultyCluster(2, &handles);
  ASSERT_TRUE(cluster->Put("artifact/clean", "data").ok());
  ASSERT_TRUE(cluster->Put("pipeline/clean/commits", "json").ok());

  auto recovered = cluster->RecoverTwoPhase();
  ASSERT_TRUE(recovered.ok()) << recovered;
  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.recovered_transactions, 0u);
  EXPECT_EQ(tp.fenced_transactions, 0u);
  EXPECT_EQ(CountStagedKeys(*cluster), 0u);
}

// ---------------------------------------------------------------------------
// Shard health view: skip known-dead shards with typed errors, no hangs
// ---------------------------------------------------------------------------

TEST(ChaosTest, HealthViewMarksShardDownAndFastFailsFanouts) {
  std::vector<FaultyEngine*> handles;
  auto cluster = MakeFaultyCluster(3, &handles);
  const size_t down = 1;

  // Seed one object so DeleteVersion later has a real id to refuse.
  auto seeded = cluster->Put(KeyOnShard(*cluster, 0, "seed"), "seed-data");
  ASSERT_TRUE(seeded.ok()) << seeded.status();

  handles[down]->set_unavailable(true);
  // Three consecutive failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    auto put = cluster->Put(KeyOnShard(*cluster, down, "hit"), "x");
    EXPECT_FALSE(put.ok());
    EXPECT_EQ(put.status().code(), StatusCode::kUnavailable);
  }
  auto health = cluster->shard_health();
  ASSERT_EQ(health.state.size(), 3u);
  EXPECT_EQ(health.state[down], ShardedStorageEngine::ShardHealth::kDown);
  EXPECT_GE(health.consecutive_failures[down], 3u);
  EXPECT_EQ(health.state[0], ShardedStorageEngine::ShardHealth::kUp);

  // Broadcast version lookup: the down shard is skipped, the miss is a
  // typed Unavailable NAMING the unreachable shard — not NotFound, because
  // the answer is not trustworthy while a shard is dark.
  auto lookup = cluster->GetVersion(Sha256::Digest("no-such-version"));
  ASSERT_FALSE(lookup.ok());
  EXPECT_EQ(lookup.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(lookup.status().ToString().find("down"), std::string::npos)
      << lookup.status();

  // Replicated 2PC: aborted BEFORE staging anything, with a typed status.
  auto replicated = cluster->Put("pipeline/health/commits", "json");
  ASSERT_FALSE(replicated.ok());
  EXPECT_EQ(replicated.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(CountStagedKeys(*cluster), 0u);

  // DeleteVersion refuses to report success while a possible replica holder
  // is unreachable.
  auto del = cluster->DeleteVersion(seeded->id);
  ASSERT_FALSE(del.ok());
  EXPECT_EQ(del.status().code(), StatusCode::kUnavailable);

  // Recovery: heal the engine, tell the router, full service resumes.
  handles[down]->set_unavailable(false);
  cluster->MarkShardRecovered(down);
  health = cluster->shard_health();
  EXPECT_EQ(health.state[down], ShardedStorageEngine::ShardHealth::kUp);
  EXPECT_TRUE(cluster->Put(KeyOnShard(*cluster, down, "back"), "y").ok());
  EXPECT_TRUE(cluster->Put("pipeline/health/commits", "json").ok());
}

/// Half-open gate accounting. A freshly-down shard gets ONE immediate probe
/// (the first fan-out after the transition — an outage shorter than the
/// fan-out cadence heals in a single request), then the breaker closes and
/// only every 8th fan-out probes it. The old behavior skipped immediately
/// and made a blip pay the full 8-fan-out penalty.
TEST(ChaosTest, FreshlyDownShardGetsOneImmediateProbe) {
  std::vector<FaultyEngine*> handles;
  auto cluster = MakeFaultyCluster(3, &handles);
  const size_t down = 1;
  handles[down]->set_unavailable(true);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(cluster->Put(KeyOnShard(*cluster, down, "hit"), "x").ok());
  }
  ASSERT_EQ(cluster->shard_health().state[down],
            ShardedStorageEngine::ShardHealth::kDown);
  const uint64_t before = cluster->broadcast_stats().per_shard_probes[down];

  // Fan-out #1 after the down transition: one immediate probe.
  (void)cluster->GetVersion(Sha256::Digest("probe-1"));
  EXPECT_EQ(cluster->broadcast_stats().per_shard_probes[down], before + 1);
  // Fan-outs #2..#7: the breaker is closed, the shard is skipped.
  for (int i = 2; i <= 7; ++i) {
    (void)cluster->GetVersion(Sha256::Digest("probe-" + std::to_string(i)));
    EXPECT_EQ(cluster->broadcast_stats().per_shard_probes[down], before + 1)
        << "fan-out " << i << " should have skipped the down shard";
  }
  // Fan-out #8: the half-open retry goes through.
  (void)cluster->GetVersion(Sha256::Digest("probe-8"));
  EXPECT_EQ(cluster->broadcast_stats().per_shard_probes[down], before + 2);

  // Once a half-open probe SUCCEEDS, the breaker resets without operator
  // action (within one more 8-fan-out window).
  handles[down]->set_unavailable(false);
  for (int i = 0; i < 8; ++i) {
    (void)cluster->GetVersion(
        Sha256::Digest("probe-heal-" + std::to_string(i)));
  }
  EXPECT_EQ(cluster->shard_health().state[down],
            ShardedStorageEngine::ShardHealth::kUp);
}

// ---------------------------------------------------------------------------
// Transparent redial + idempotent replay over real sockets
// ---------------------------------------------------------------------------

TEST(ChaosTest, RedialReplaysLostResponsesExactlyOnce) {
  const std::string path =
      "/tmp/mlcask_chaos_replay_" + std::to_string(::getpid()) + ".sock";
  ForkBaseEngine backend;
  StorageEngineService service(&backend);
  auto server = SocketTransportServer::Bind("unix:" + path,
                                            SocketTransportServer::Options());
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)
                  ->Serve([&service](std::string_view request) {
                    return service.Handle(request);
                  })
                  .ok());

  {
    // Every ORIGINAL send reaches the server and then loses its connection
    // (drop-after-send) — the worst case for at-most-once semantics. The
    // transport must redial and replay; the server's ledger must recognize
    // every replayed mutation and answer from the recorded response.
    SocketTransport::Options options;
    options.injector = std::make_shared<FaultInjector>(
        *FaultSpec::Parse("seed=11,dropafter=1"));
    auto transport = SocketTransport::Connect("unix:" + path, options);
    ASSERT_TRUE(transport.ok()) << transport.status();
    SocketTransport* raw = transport->get();
    RemoteStorageEngine engine(*std::move(transport));

    for (int i = 0; i < 6; ++i) {
      auto put =
          engine.Put("artifact/replay" + std::to_string(i), "payload");
      ASSERT_TRUE(put.ok()) << "put " << i << ": " << put.status();
    }
    // Exactly once: the backend engine executed each mutation a single
    // time, despite every connection having been killed under it. (Whether
    // a given duplicate was absorbed by the replay ledger or never
    // retransmitted is a timing race; the engine-level count is the
    // invariant either way, and Versions stays de-dup-proofed at 1.)
    EXPECT_EQ(backend.stats().puts, 6u);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(backend.Versions("artifact/replay" + std::to_string(i)).size(),
                1u)
          << "key " << i;
    }
    EXPECT_GE(raw->redials(), 6u);
  }
  (*server)->Shutdown();
  ::unlink(path.c_str());
}

TEST(ChaosTest, ReplayLedgerAnswersDuplicateTokensWithoutReExecuting) {
  // The ledger in isolation, deterministically: two bit-identical requests
  // with the same replay token (what a redialing client retransmits) must
  // execute ONCE and answer the duplicate from the recorded response.
  ForkBaseEngine backend;
  StorageEngineService service(&backend);
  const std::string request =
      "{\"method\":\"put\",\"key\":\"artifact/ledger\","
      "\"data\":\"7061796c6f6164\",\"replay_token\":\"sess.1\"}";

  const std::string first = service.Handle(request);
  const std::string second = service.Handle(request);
  EXPECT_EQ(first, second);  // byte-identical recorded response
  EXPECT_EQ(backend.stats().puts, 1u);
  EXPECT_EQ(backend.Versions("artifact/ledger").size(), 1u);
  EXPECT_EQ(service.replay_hits(), 1u);

  // A DIFFERENT token is a genuinely new mutation, not a replay.
  const std::string third = service.Handle(
      "{\"method\":\"put\",\"key\":\"artifact/ledger\","
      "\"data\":\"7061796c6f6164\",\"replay_token\":\"sess.2\"}");
  EXPECT_EQ(backend.stats().puts, 2u);
  EXPECT_EQ(service.replay_hits(), 1u);
}

TEST(ChaosTest, ShedRequestReleasesReplayLedgerClaim) {
  // Overload regression: a replayable request whose token was CLAIMED by
  // the ledger and which is then shed with kResourceExhausted must release
  // the claim. If the shed answer were recorded, every retry of the token
  // would be answered "overloaded" forever; if the claim were merely
  // abandoned, the client's retransmit would wedge behind the ledger
  // condvar waiting for a response that will never be recorded.
  auto inner = std::make_unique<ForkBaseEngine>();
  ForkBaseEngine* backend = inner.get();
  auto faulty = std::make_unique<FaultyEngine>(std::move(inner), nullptr);
  FaultyEngine* engine = faulty.get();
  StorageEngineService service(std::move(faulty));

  const std::string request =
      wire::EncodePutRequest("artifact/shed", "payload", "sess.shed");

  engine->set_shed(true);
  const std::string shed_response = service.Handle(request);
  std::string_view rest;
  const Status shed_status = wire::DecodeResponseStatus(shed_response, &rest);
  ASSERT_FALSE(shed_status.ok());
  EXPECT_TRUE(shed_status.IsResourceExhausted()) << shed_status;
  EXPECT_EQ(backend->stats().puts, 0u);

  // The retry (bit-identical retransmit, same token) must re-execute and
  // succeed promptly — not block, not replay the shed answer.
  engine->set_shed(false);
  const std::string retry_response = service.Handle(request);
  EXPECT_TRUE(wire::DecodeResponseStatus(retry_response, &rest).ok());
  EXPECT_EQ(backend->stats().puts, 1u);
  EXPECT_EQ(backend->Versions("artifact/shed").size(), 1u);
  EXPECT_EQ(service.replay_hits(), 0u);  // the shed answer was never recorded

  // And the token behaves as a NORMAL replay token from here on.
  const std::string duplicate = service.Handle(request);
  EXPECT_EQ(duplicate, retry_response);
  EXPECT_EQ(backend->stats().puts, 1u);
  EXPECT_EQ(service.replay_hits(), 1u);

  // The JSON fallback path sheds and releases identically.
  engine->set_shed(true);
  const std::string json_request =
      "{\"method\":\"put\",\"key\":\"artifact/shed-json\","
      "\"data\":\"7061796c6f6164\",\"replay_token\":\"sess.shed2\"}";
  const std::string json_shed = service.Handle(json_request);
  EXPECT_NE(json_shed.find("\"ok\":false"), std::string::npos) << json_shed;
  EXPECT_NE(json_shed.find("\"code\":12"), std::string::npos) << json_shed;
  engine->set_shed(false);
  const std::string json_retry = service.Handle(json_request);
  EXPECT_NE(json_retry.find("\"ok\":true"), std::string::npos) << json_retry;
  EXPECT_EQ(backend->stats().puts, 2u);
  EXPECT_EQ(service.replay_hits(), 1u);
}

TEST(ChaosTest, DeferredGetUnderDeadPeerResolvesWithinCallTimeout) {
  // A peer that accepts and swallows bytes but never responds: the worst
  // kind of partial failure. Deferred::Get must resolve with a typed status
  // within call_timeout_ms — never block past it.
  const std::string path =
      "/tmp/mlcask_chaos_mute_" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  std::atomic<bool> stop{false};
  std::thread mute([&] {
    std::vector<int> fds;
    while (!stop.load()) {
      int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) break;
      fds.push_back(fd);
      // Drain in the background so the client's writes never block either.
      std::thread([fd] {
        char buf[4096];
        while (::read(fd, buf, sizeof(buf)) > 0) {
        }
      }).detach();
    }
    for (int fd : fds) ::close(fd);
  });

  {
    SocketTransport::Options options;
    options.call_timeout_ms = 400;
    options.redial_budget_ms = 200;
    auto transport = SocketTransport::Connect("unix:" + path, options);
    ASSERT_TRUE(transport.ok()) << transport.status();
    RemoteStorageEngine engine(*std::move(transport));

    const auto start = std::chrono::steady_clock::now();
    auto deferred = engine.AsyncPut("artifact/mute", "data");
    auto result = deferred.Get();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.status().code() == StatusCode::kDeadlineExceeded ||
                result.status().code() == StatusCode::kUnavailable)
        << result.status();
    // Bounded: call_timeout_ms plus generous scheduling slack, far below
    // anything resembling a hang.
    EXPECT_LT(elapsed, 5000) << "Deferred::Get blocked past its deadline";
  }
  stop.store(true);
  ::shutdown(listener, SHUT_RDWR);
  ::close(listener);
  mute.join();
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// LocalServerCluster: crash forensics and durable kill -9 recovery
// ---------------------------------------------------------------------------

TEST(ChaosTest, StopReportsCleanShutdownAsOk) {
  LocalServerCluster servers;
  ASSERT_TRUE(servers.Start(2, ServerOptions()).ok());
  auto verdict = servers.Stop();
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(ChaosTest, StopDecodesACrashedShardWithSignalAndLogTail) {
  // kill_after=1: the server SIGKILLs itself on its first data job. That is
  // a real crash (not a deliberate KillShard), so Stop() must report it,
  // decoded from the wait status.
  LocalServerCluster servers;
  auto options = ServerOptions();
  options.fault_spec = "seed=5,kill_after=1";
  ASSERT_TRUE(servers.Start(1, options).ok());

  SocketTransport::Options transport_options;
  transport_options.call_timeout_ms = 2000;
  transport_options.redial_budget_ms = 100;  // the server is not coming back
  auto cluster = ConnectCluster(servers.endpoints(),
                                ShardedStorageEngine::Options(),
                                transport_options);
  if (cluster.ok()) {
    // The first request (possibly the connection hello) killed the server;
    // whichever call observes it must fail typed, not hang.
    auto put = (*cluster)->Put("artifact/boom", "x");
    EXPECT_FALSE(put.ok());
  }

  auto verdict = servers.Stop();
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.ToString().find("killed by signal 9"), std::string::npos)
      << verdict;
}

TEST(ChaosTest, DurableShardSurvivesKillDashNineAndRouterRecovers2pc) {
  LocalServerCluster servers;
  auto options = ServerOptions();
  options.durable = true;
  ASSERT_TRUE(servers.Start(2, options).ok());

  std::string key0;  // object key owned by shard 0, written pre-crash
  {
    auto cluster = ConnectCluster(servers.endpoints());
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    key0 = KeyOnShard(**cluster, 0, "durable");
    ASSERT_TRUE((*cluster)->Put(key0, "survives-kill").ok());

    // Plant a committed-but-unapplied transaction (intents everywhere,
    // decision on shard 0) THROUGH the sockets, onto the durable engines —
    // the exact debris of a coordinator that died after its decision.
    for (size_t s = 0; s < 2; ++s) {
      ASSERT_TRUE((*cluster)
                      ->shard(s)
                      ->Put(StagingKey(42, s, 0),
                            Intent("pipeline/recovered/commits", "the-commit"))
                      .ok());
    }
    ASSERT_TRUE((*cluster)
                    ->shard(0)
                    ->Put(DecisionKey(42),
                          std::string(kIntentHeader) + "commit")
                    .ok());
  }  // old router gone: the coordinator is dead

  // kill -9 both shards (no flush, no goodbye), then restart them on their
  // data dirs.
  for (size_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(servers.KillShard(s).ok());
  }
  for (size_t s = 0; s < 2; ++s) {
    auto restarted = servers.RestartShard(s);
    ASSERT_TRUE(restarted.ok()) << restarted;
  }

  auto cluster = ConnectCluster(servers.endpoints());
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  // Durability: the acknowledged pre-crash write is still there.
  auto got = (*cluster)->Get(key0);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, "survives-kill");

  // The new router scans the debris and rolls the decided transaction
  // forward on every shard.
  auto recovered = (*cluster)->RecoverTwoPhase();
  ASSERT_TRUE(recovered.ok()) << recovered;
  auto tp = (*cluster)->two_phase_stats();
  EXPECT_EQ(tp.recovered_transactions, 1u);
  EXPECT_EQ(tp.fenced_transactions, 0u);
  for (size_t s = 0; s < 2; ++s) {
    auto commit = (*cluster)->shard(s)->Get("pipeline/recovered/commits");
    ASSERT_TRUE(commit.ok()) << "shard " << s << ": " << commit.status();
    EXPECT_EQ(*commit, "the-commit");
  }
  EXPECT_EQ(CountStagedKeys(**cluster), 0u)
      << "no INDETERMINATE __2pc__ intents may survive recovery";

  // The healed cluster takes new replicated commits.
  ASSERT_TRUE((*cluster)->Put("pipeline/post/commits", "fresh").ok());
  auto verdict = servers.Stop();
  EXPECT_TRUE(verdict.ok()) << verdict;  // the kills were deliberate
}

}  // namespace
}  // namespace mlcask::storage

// ---------------------------------------------------------------------------
// The seeded fault sweep: real 4-shard merges under injection must produce
// the bit-identical winner — or nothing, but never a wrong winner and never
// a hang. (Separate namespace: reuses the merge fingerprint idiom.)
// ---------------------------------------------------------------------------

namespace mlcask::merge {
namespace {

struct MergeFingerprint {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  std::vector<std::string> winner_chain;
  std::vector<std::string> artifact_hashes;

  bool operator==(const MergeFingerprint& other) const {
    return executions == other.executions && best_score == other.best_score &&
           best_index == other.best_index &&
           winner_chain == other.winner_chain &&
           artifact_hashes == other.artifact_hashes;
  }
};

MergeFingerprint RunMerge(size_t shards,
                          const std::vector<std::string>& endpoints,
                          const std::string& client_fault_spec = "") {
  sim::DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  config.storage_endpoints = endpoints;
  config.client_fault_spec = client_fault_spec;
  auto deployment = sim::MakeDeployment("readmission", 0.06, config);
  MLCASK_CHECK_OK(deployment.status());
  auto d = *std::move(deployment);
  MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(d.get()).status());
  MergeOperation op(d->repo.get(), d->libraries.get(), d->registry.get(),
                    d->engine.get(), d->clock.get());
  MergeOptions options;
  options.shards = shards;
  auto report = op.Merge("master", "dev", options);
  MLCASK_CHECK_OK(report.status());

  MergeFingerprint fp;
  fp.executions = report->component_executions;
  fp.best_score = report->best_score;
  fp.best_index = report->best_index;
  const CandidateChain& winner =
      report->outcomes[static_cast<size_t>(report->best_index)].chain;
  for (const pipeline::ComponentVersionSpec* spec : winner) {
    fp.winner_chain.push_back(spec->Key());
  }
  auto head = d->repo->Head("master");
  MLCASK_CHECK_OK(head.status());
  for (const version::ComponentRecord& rec : (*head)->snapshot.components) {
    fp.artifact_hashes.push_back(rec.output_id.ToHex());
  }
  return fp;
}

TEST(ChaosMergeTest, SeededFaultScheduleProducesBitIdenticalWinner) {
  const MergeFingerprint reference = RunMerge(1, {});
  for (uint64_t seed : {7ull, 23ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    storage::LocalServerCluster servers;
    auto options = storage::ServerOptions();
    // Server side: seeded job delays reorder completions across shards.
    options.fault_spec =
        "seed=" + std::to_string(seed) + ",delay_ms=2:0.05";
    ASSERT_TRUE(servers.Start(4, options).ok());
    // Client side: seeded connection kills before AND after send — every
    // loss path heals through redial + idempotent replay.
    const std::string client_spec = "seed=" + std::to_string(seed + 1) +
                                    ",drop=0.01,dropafter=0.01";
    MergeFingerprint fp = RunMerge(4, servers.endpoints(), client_spec);
    EXPECT_TRUE(fp == reference)
        << "merge under faults diverged: executions " << fp.executions
        << " vs " << reference.executions << ", best_index " << fp.best_index
        << " vs " << reference.best_index;
    auto verdict = servers.Stop();
    EXPECT_TRUE(verdict.ok()) << verdict;
  }
}

}  // namespace
}  // namespace mlcask::merge
