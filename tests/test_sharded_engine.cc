// The distributed storage + merge stack: ShardedStorageEngine routing,
// replicated namespaces, two-phase commit (including the abort path), the
// RemoteStorageEngine wire protocol — and the headline equivalence harness:
// a sharded merge drain (MergeOptions::shards ∈ {1,2,4,8}) must produce the
// identical winner, execution count, and persisted artifact hashes as the
// single-node path on the fig9 and fig11 scenarios, with and without
// mid-merge shard-cache eviction.

#include "storage/sharded_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "storage/forkbase_engine.h"
#include "storage/local_dir_engine.h"
#include "storage/remote_engine.h"
#include "storage/transport.h"

namespace mlcask::storage {
namespace {

std::unique_ptr<ShardedStorageEngine> MakeCluster(size_t shards) {
  return MakeLoopbackCluster(
      shards, [] { return std::make_unique<ForkBaseEngine>(); });
}

TEST(ShardedEngineTest, RoutesAndRoundTripsAcrossShards) {
  auto cluster = MakeCluster(4);
  std::vector<PutResult> puts;
  for (int i = 0; i < 32; ++i) {
    auto put = cluster->Put("artifact/obj" + std::to_string(i),
                            "payload-" + std::to_string(i));
    ASSERT_TRUE(put.ok());
    puts.push_back(*put);
  }
  for (int i = 0; i < 32; ++i) {
    auto got = cluster->Get("artifact/obj" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "payload-" + std::to_string(i));
    auto by_id = cluster->GetVersion(puts[static_cast<size_t>(i)].id);
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ(*by_id, "payload-" + std::to_string(i));
    EXPECT_TRUE(cluster->HasVersion(puts[static_cast<size_t>(i)].id));
  }
  // Consistent hashing actually spreads the keys: no shard is empty and no
  // shard holds everything.
  size_t occupied = 0;
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    size_t keys = cluster->shard(s)->ListAllVersions().size();
    EXPECT_LT(keys, 32u);
    if (keys > 0) ++occupied;
  }
  EXPECT_GT(occupied, 1u);
  // The logical view is exactly one entry per put.
  EXPECT_EQ(cluster->ListAllVersions().size(), 32u);
}

TEST(ShardedEngineTest, ReplicatedNamespaceReachesEveryShard) {
  auto cluster = MakeCluster(3);
  ASSERT_TRUE(cluster->IsReplicated("pipeline/demo/commits"));
  ASSERT_FALSE(cluster->IsReplicated("artifact/demo/x"));
  auto put = cluster->Put("pipeline/demo/commits", "commit-json");
  ASSERT_TRUE(put.ok());
  // Every shard can answer the branch-table/commit-log read locally.
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    auto got = cluster->shard(s)->Get("pipeline/demo/commits");
    ASSERT_TRUE(got.ok()) << "shard " << s;
    EXPECT_EQ(*got, "commit-json");
  }
  // Replication ran as a two-phase transaction...
  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.transactions, 1u);
  EXPECT_EQ(tp.commits, 1u);
  EXPECT_EQ(tp.aborts, 0u);
  EXPECT_EQ(tp.prepared_writes, 3u);
  // ...and the logical view still shows ONE copy, with staging records gone.
  auto all = cluster->ListAllVersions();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].first, "pipeline/demo/commits");
  // Deleting drops every replica.
  ASSERT_TRUE(cluster->DeleteVersion(put->id).ok());
  for (size_t s = 0; s < cluster->num_shards(); ++s) {
    EXPECT_FALSE(cluster->shard(s)->HasVersion(put->id));
  }
}

TEST(ShardedEngineTest, PutManyCommitsAtomicallyInOrder) {
  auto cluster = MakeCluster(4);
  std::vector<PutRequest> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({"artifact/w/c" + std::to_string(i),
                     "winner-output-" + std::to_string(i)});
  }
  auto results = cluster->PutMany(batch);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), batch.size());
  // Results come back in batch order and every key is readable.
  for (size_t i = 0; i < batch.size(); ++i) {
    auto got = cluster->GetVersion((*results)[i].id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, batch[i].data);
  }
  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.transactions, 1u);
  EXPECT_EQ(tp.commits, 1u);
  EXPECT_EQ(tp.prepared_writes, batch.size());
  // No staging residue in the logical view.
  EXPECT_EQ(cluster->ListAllVersions().size(), batch.size());
}

TEST(ShardedEngineTest, TwoPhaseRoundTripLedgerObservesOverlappedFanout) {
  auto cluster = MakeCluster(4);
  // One replicated put: 4 participants, one prepare batch + one apply each.
  ASSERT_TRUE(cluster->Put("pipeline/demo/commits", "commit-json").ok());
  auto tp = cluster->two_phase_stats();
  EXPECT_EQ(tp.prepare_round_trips, 4u);
  EXPECT_EQ(tp.apply_round_trips, 4u);
  // The accounting-not-timing witness: all four participants' round trips
  // were in flight before the first was collected. The old serial
  // issue-one-wait-one loop can never push this above 1.
  EXPECT_EQ(tp.max_inflight_round_trips, 4u);
  // The durable commit decision adds one round trip, always on shard 0.
  EXPECT_EQ(tp.decision_round_trips, 1u);
  ASSERT_EQ(tp.per_shard_round_trips.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(tp.per_shard_round_trips[s], s == 0 ? 3u : 2u) << "shard " << s;
  }

  // A routed (non-replicated) multi-write batch: participants vary, but
  // per-shard counts must sum to prepare batches + apply writes.
  std::vector<PutRequest> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({"artifact/rt/c" + std::to_string(i), "x"});
  }
  ASSERT_TRUE(cluster->PutMany(batch).ok());
  tp = cluster->two_phase_stats();
  uint64_t per_shard_total = 0;
  for (uint64_t n : tp.per_shard_round_trips) per_shard_total += n;
  EXPECT_EQ(per_shard_total, tp.prepare_round_trips + tp.apply_round_trips +
                                 tp.decision_round_trips);
  EXPECT_EQ(tp.transactions, 2u);
}

TEST(ShardedEngineTest, BroadcastLedgerCountsIndexMissProbes) {
  auto cluster = MakeCluster(3);
  // Write BEHIND the router (directly to a shard) so the router index has
  // never seen the version id: lookups must fall back to a broadcast.
  auto put = cluster->shard(1)->Put("artifact/hidden", "behind-the-router");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(cluster->broadcast_stats().broadcasts, 0u);

  EXPECT_TRUE(cluster->HasVersion(put->id));
  auto bc = cluster->broadcast_stats();
  EXPECT_EQ(bc.broadcasts, 1u);
  EXPECT_EQ(bc.probe_round_trips, 3u);
  EXPECT_EQ(bc.max_inflight_probes, 3u);  // overlapped, not serial
  ASSERT_EQ(bc.per_shard_probes.size(), 3u);
  for (size_t s = 0; s < 3; ++s) EXPECT_EQ(bc.per_shard_probes[s], 1u);

  auto data = cluster->GetVersion(put->id);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "behind-the-router");
  bc = cluster->broadcast_stats();
  EXPECT_EQ(bc.broadcasts, 2u);
  EXPECT_EQ(bc.probe_round_trips, 6u);

  // An INDEXED lookup never broadcasts: the ledger stands still.
  auto indexed = cluster->Put("artifact/indexed", "routed");
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(cluster->HasVersion(indexed->id));
  EXPECT_EQ(cluster->broadcast_stats().broadcasts, 2u);
}

/// Wraps an engine and fails every Put once armed — the "participant vote
/// no" of the 2PC tests.
template <typename Inner>
class FailingEngineT : public StorageEngine {
 public:
  StatusOr<PutResult> Put(const std::string& key,
                          std::string_view data) override {
    const bool staging = key.rfind("__2pc__/", 0) == 0;
    if (fail_puts) return Status::Internal("injected shard failure");
    if (fail_apply_puts && !staging) {
      // Votes yes in phase 1 (staging writes succeed), breaks in phase 2.
      return Status::Internal("injected apply failure");
    }
    return inner.Put(key, data);
  }
  StatusOr<std::string> Get(const std::string& key) override {
    return inner.Get(key);
  }
  StatusOr<std::string> GetVersion(const Hash256& id) override {
    return inner.GetVersion(id);
  }
  bool HasVersion(const Hash256& id) const override {
    return inner.HasVersion(id);
  }
  std::vector<Hash256> Versions(const std::string& key) const override {
    return inner.Versions(key);
  }
  std::vector<std::pair<std::string, Hash256>> ListAllVersions()
      const override {
    return inner.ListAllVersions();
  }
  StatusOr<uint64_t> DeleteVersion(const Hash256& id) override {
    return inner.DeleteVersion(id);
  }
  EngineStats stats() const override { return inner.stats(); }
  std::string Name() const override { return "failing"; }
  double ReadCost(uint64_t bytes) const override {
    return inner.ReadCost(bytes);
  }

  bool fail_puts = false;
  bool fail_apply_puts = false;
  Inner inner;
};

using FailingEngine = FailingEngineT<LocalDirEngine>;

TEST(ShardedEngineTest, PrepareFailureAbortsWithoutPartialState) {
  std::vector<std::unique_ptr<StorageEngine>> shards;
  shards.push_back(std::make_unique<LocalDirEngine>());
  auto failing = std::make_unique<FailingEngine>();
  FailingEngine* failing_ptr = failing.get();
  shards.push_back(std::move(failing));
  ShardedStorageEngine cluster(std::move(shards));

  failing_ptr->fail_puts = true;
  // A replicated write must reach both shards, so shard 1's "no" vote
  // aborts the transaction before ANY real key surfaces.
  auto put = cluster.Put("pipeline/demo/commits", "doomed");
  ASSERT_FALSE(put.ok());
  EXPECT_TRUE(cluster.Get("pipeline/demo/commits").status().IsNotFound());
  auto tp = cluster.two_phase_stats();
  EXPECT_EQ(tp.aborts, 1u);
  EXPECT_EQ(tp.commits, 0u);
  // Shard 0's staged intent was rolled back: nothing is left anywhere.
  EXPECT_TRUE(cluster.shard(0)->ListAllVersions().empty());
  EXPECT_TRUE(cluster.shard(1)->ListAllVersions().empty());

  // Once the participant heals, the same transaction goes through.
  failing_ptr->fail_puts = false;
  ASSERT_TRUE(cluster.Put("pipeline/demo/commits", "healed").ok());
  EXPECT_EQ(*cluster.Get("pipeline/demo/commits"), "healed");
  EXPECT_EQ(cluster.two_phase_stats().commits, 1u);
}

TEST(ShardedEngineTest, ApplyFailureRollsBackAppliedWrites) {
  std::vector<std::unique_ptr<StorageEngine>> shards;
  shards.push_back(std::make_unique<LocalDirEngine>());
  auto failing = std::make_unique<FailingEngine>();
  FailingEngine* failing_ptr = failing.get();
  shards.push_back(std::move(failing));
  ShardedStorageEngine cluster(std::move(shards));

  // Shard 1 votes yes in phase 1 but breaks in phase 2: shard 0's already
  // applied write must be rolled back — no partial merge winner surfaces.
  failing_ptr->fail_apply_puts = true;
  auto put = cluster.Put("pipeline/demo/commits", "half-committed?");
  ASSERT_FALSE(put.ok());
  EXPECT_TRUE(cluster.Get("pipeline/demo/commits").status().IsNotFound());
  EXPECT_TRUE(cluster.shard(0)->ListAllVersions().empty());
  EXPECT_TRUE(cluster.shard(1)->ListAllVersions().empty());
  // Stats stay coherent: every transaction is either a commit or an abort.
  auto tp = cluster.two_phase_stats();
  EXPECT_EQ(tp.transactions, tp.commits + tp.aborts);
  EXPECT_EQ(tp.aborts, 1u);
}

TEST(ShardedEngineTest, RollbackRemovesFullyDeduplicatedApplies) {
  // Regression: on a de-duplicating engine an apply whose bytes pre-exist
  // reports deduplicated=true, but it still created a FRESH version id
  // (ids hash key + ordinal) — rollback must delete it like any other
  // applied write, or the aborted transaction's key stays readable.
  std::vector<std::unique_ptr<StorageEngine>> shards;
  auto healthy = std::make_unique<FailingEngineT<ForkBaseEngine>>();
  auto failing = std::make_unique<FailingEngineT<ForkBaseEngine>>();
  FailingEngineT<ForkBaseEngine>* healthy_ptr = healthy.get();
  FailingEngineT<ForkBaseEngine>* failing_ptr = failing.get();
  shards.push_back(std::move(healthy));
  shards.push_back(std::move(failing));
  ShardedStorageEngine cluster(std::move(shards));

  // Pre-seed the exact payload chunks on both shards under another key, so
  // the later transactional apply fully de-duplicates.
  const std::string payload(4096, 'd');
  ASSERT_TRUE(healthy_ptr->inner.Put("seed", payload).ok());
  ASSERT_TRUE(failing_ptr->inner.Put("seed", payload).ok());

  failing_ptr->fail_apply_puts = true;
  auto put = cluster.Put("pipeline/demo/commits", payload);
  ASSERT_FALSE(put.ok());
  // The aborted write is gone from the healthy shard despite having been a
  // zero-new-bytes apply; the seed object is untouched.
  EXPECT_TRUE(cluster.Get("pipeline/demo/commits").status().IsNotFound());
  EXPECT_TRUE(healthy_ptr->inner.Versions("pipeline/demo/commits").empty());
  EXPECT_EQ(*healthy_ptr->inner.Get("seed"), payload);
  EXPECT_EQ(cluster.two_phase_stats().aborts, 1u);
}

TEST(RemoteEngineTest, WireProtocolMatchesDirectEngine) {
  // The same operations through the serialization boundary and directly
  // against a twin engine must agree bit-for-bit.
  auto service = std::make_shared<StorageEngineService>(
      std::make_unique<ForkBaseEngine>());
  RemoteStorageEngine remote(std::make_unique<LoopbackTransport>(
      [service](std::string_view request) { return service->Handle(request); }));
  ForkBaseEngine direct;

  // Explicit length keeps the embedded NUL and high bytes — exactly what
  // the hex codec must carry intact across the wire.
  const std::string binary_tail("binary\x00\x01\xff tail", 16);
  ASSERT_EQ(binary_tail.size(), 16u);
  const std::string payload = std::string(2048, '\x7f') + binary_tail;
  auto rp = remote.Put("k", payload);
  auto dp = direct.Put("k", payload);
  ASSERT_TRUE(rp.ok() && dp.ok());
  EXPECT_EQ(rp->id, dp->id);
  EXPECT_EQ(rp->logical_bytes, dp->logical_bytes);
  EXPECT_EQ(rp->new_physical_bytes, dp->new_physical_bytes);
  EXPECT_DOUBLE_EQ(rp->storage_time_s, dp->storage_time_s);

  EXPECT_EQ(*remote.Get("k"), *direct.Get("k"));
  EXPECT_EQ(*remote.GetVersion(rp->id), *direct.GetVersion(dp->id));
  EXPECT_TRUE(remote.HasVersion(rp->id));
  EXPECT_EQ(remote.Versions("k"), direct.Versions("k"));
  EXPECT_EQ(remote.stats().logical_bytes, direct.stats().logical_bytes);
  EXPECT_DOUBLE_EQ(remote.ReadCost(1 << 20), direct.ReadCost(1 << 20));
  EXPECT_EQ(remote.Name(), "remote(forkbase)");

  // Errors round-trip as the original status category.
  Hash256 unknown;
  unknown.bytes[0] = 0xab;
  EXPECT_TRUE(remote.GetVersion(unknown).status().IsNotFound());
  EXPECT_FALSE(remote.HasVersion(unknown));

  // Every one of those calls crossed the wire.
  TransportStats ts = remote.transport()->stats();
  EXPECT_GT(ts.calls, 8u);
  EXPECT_GT(ts.request_bytes, payload.size());  // hex-encoded payload went over
  EXPECT_GT(ts.response_bytes, 0u);
}

}  // namespace
}  // namespace mlcask::storage

namespace mlcask::merge {
namespace {

using sim::BuildDistributedMergeScenario;
using sim::BuildTwoBranchScenario;
using sim::Deployment;
using sim::DeploymentConfig;
using sim::MakeDeployment;

/// Which scenario the equivalence matrix runs on.
enum class Scenario { kFig9, kFig11 };

struct MergeFingerprint {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  size_t candidates = 0;
  double makespan_s = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_peak_bytes = 0;  ///< Summed across shard caches.
  /// Version/impl identity of the winning chain.
  std::vector<std::string> winner_chain;
  /// Persisted artifact content hashes of the merge commit, in order.
  std::vector<std::string> artifact_hashes;
};

MergeFingerprint RunMerge(Scenario scenario, size_t shards,
                          uint64_t cache_max_bytes,
                          bool concurrent_shard_drains = true) {
  DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;  // real distributed storage when sharded
  auto deployment = MakeDeployment("readmission", 0.06, config);
  MLCASK_CHECK_OK(deployment.status());
  auto d = *std::move(deployment);
  if (scenario == Scenario::kFig9) {
    MLCASK_CHECK_OK(BuildTwoBranchScenario(d.get()).status());
  } else {
    MLCASK_CHECK_OK(BuildDistributedMergeScenario(
                        d.get(), /*extra_extractor_versions=*/2,
                        /*extra_model_versions=*/2)
                        .status());
  }
  MergeOperation op(d->repo.get(), d->libraries.get(), d->registry.get(),
                    d->engine.get(), d->clock.get());
  MergeOptions options;
  options.shards = shards;
  options.cache_max_bytes = cache_max_bytes;
  options.concurrent_shard_drains = concurrent_shard_drains;
  auto report = op.Merge("master", "dev", options);
  MLCASK_CHECK_OK(report.status());

  MergeFingerprint fp;
  fp.executions = report->component_executions;
  fp.best_score = report->best_score;
  fp.best_index = report->best_index;
  fp.candidates = report->candidates_considered;
  fp.makespan_s = report->makespan_s;
  fp.cache_evictions = report->cache_stats.evictions;
  fp.cache_peak_bytes = report->cache_stats.peak_bytes;
  const CandidateChain& winner =
      report->outcomes[static_cast<size_t>(report->best_index)].chain;
  for (const pipeline::ComponentVersionSpec* spec : winner) {
    fp.winner_chain.push_back(spec->Key());
  }
  auto head = d->repo->Head("master");
  MLCASK_CHECK_OK(head.status());
  for (const version::ComponentRecord& rec : (*head)->snapshot.components) {
    fp.artifact_hashes.push_back(rec.output_id.ToHex());
    // The winner's artifacts are really persisted in the (sharded) engine.
    EXPECT_TRUE(d->engine->HasVersion(rec.output_id));
  }
  return fp;
}

class ShardedMergeEquivalenceTest
    : public ::testing::TestWithParam<size_t> {};

/// The acceptance matrix: winner, executions, and persisted artifact hashes
/// bit-identical to single-node at 1/2/4/8 shards, on both scenarios.
TEST_P(ShardedMergeEquivalenceTest, MatchesSingleNodeOnBothScenarios) {
  const size_t shards = GetParam();
  for (Scenario scenario : {Scenario::kFig9, Scenario::kFig11}) {
    SCOPED_TRACE(scenario == Scenario::kFig9 ? "fig9" : "fig11");
    MergeFingerprint reference = RunMerge(scenario, 1, /*cache=*/0);
    MergeFingerprint sharded = RunMerge(scenario, shards, /*cache=*/0);
    EXPECT_EQ(sharded.executions, reference.executions);
    EXPECT_EQ(sharded.best_index, reference.best_index);
    EXPECT_EQ(sharded.best_score, reference.best_score);  // exact, not near
    EXPECT_EQ(sharded.candidates, reference.candidates);
    EXPECT_EQ(sharded.winner_chain, reference.winner_chain);
    EXPECT_EQ(sharded.artifact_hashes, reference.artifact_hashes);
    if (shards > 1) {
      // Sharding must never make the virtual drain slower.
      EXPECT_LE(sharded.makespan_s, reference.makespan_s + 1e-9);
    }
  }
}

/// REAL-time parallelism must be invisible in the results: dispatching the
/// per-shard drains onto concurrently running per-shard ExecutionCores
/// (real OS threads) produces the identical winner, execution count,
/// persisted artifact hashes — and, with one virtual worker per shard,
/// even the identical virtual makespan — as the sequential real-time
/// dispatch, at every shard count and on both scenarios.
TEST_P(ShardedMergeEquivalenceTest, ConcurrentDrainsMatchSequentialDrains) {
  const size_t shards = GetParam();
  for (Scenario scenario : {Scenario::kFig9, Scenario::kFig11}) {
    SCOPED_TRACE(scenario == Scenario::kFig9 ? "fig9" : "fig11");
    MergeFingerprint sequential =
        RunMerge(scenario, shards, /*cache=*/0,
                 /*concurrent_shard_drains=*/false);
    MergeFingerprint concurrent =
        RunMerge(scenario, shards, /*cache=*/0,
                 /*concurrent_shard_drains=*/true);
    EXPECT_EQ(concurrent.executions, sequential.executions);
    EXPECT_EQ(concurrent.best_index, sequential.best_index);
    EXPECT_EQ(concurrent.best_score, sequential.best_score);
    EXPECT_EQ(concurrent.candidates, sequential.candidates);
    EXPECT_EQ(concurrent.winner_chain, sequential.winner_chain);
    EXPECT_EQ(concurrent.artifact_hashes, sequential.artifact_hashes);
    // One virtual worker per shard keeps each shard's timeline serial and
    // deterministic, so the virtual makespan is bit-identical too — real
    // dispatch order must never leak into virtual time.
    EXPECT_EQ(concurrent.makespan_s, sequential.makespan_s);
  }
}

/// Mid-merge shard-cache eviction: capping each shard's trial cache forces
/// evictions during the drain; the merge result must be unchanged and the
/// recomputation cost bounded to extra executions.
TEST_P(ShardedMergeEquivalenceTest, ShardCacheEvictionKeepsResultIdentical) {
  const size_t shards = GetParam();
  MergeFingerprint uncapped = RunMerge(Scenario::kFig11, shards, /*cache=*/0);
  // Half of one shard's uncapped working set (the report sums per-shard
  // peaks): tight enough to evict mid-drain, far above a single entry.
  const uint64_t cap = uncapped.cache_peak_bytes / (2 * shards);
  MergeFingerprint capped = RunMerge(Scenario::kFig11, shards, cap);
  EXPECT_GT(capped.cache_evictions, 0u) << "cap did not bite";
  EXPECT_EQ(capped.best_index, uncapped.best_index);
  EXPECT_EQ(capped.best_score, uncapped.best_score);
  EXPECT_EQ(capped.winner_chain, uncapped.winner_chain);
  EXPECT_EQ(capped.artifact_hashes, uncapped.artifact_hashes);
  EXPECT_GE(capped.executions, uncapped.executions);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedMergeEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ShardedMergeTest, FourShardsSpeedUpTheFig11Drain) {
  MergeFingerprint one = RunMerge(Scenario::kFig11, 1, 0);
  MergeFingerprint four = RunMerge(Scenario::kFig11, 4, 0);
  // The bench gates >= 2x; the test keeps a safety margin against workload
  // tweaks while still proving real parallelism.
  EXPECT_GT(one.makespan_s / four.makespan_s, 1.5);
}

}  // namespace
}  // namespace mlcask::merge
