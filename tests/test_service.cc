// The merge-service front end: codec round trips, the
// initial→starting→started→stopping→stopped lifecycle state machine,
// deficit-round-robin fairness across tenants, tenant isolation (sessions
// AND the submit replay ledger), deadline/shedding typed resolution, and
// end-to-end sessions over a real socket — including redial replay under
// injected faults and server-side winners bit-identical to client-local
// Algorithm 2.

#include "service/merge_service.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "merge/merge_op.h"
#include "service/merge_client.h"
#include "service/merge_frontend.h"
#include "service/service_codec.h"
#include "sim/saturation.h"
#include "sim/scenario.h"
#include "storage/fault_injector.h"
#include "storage/socket_transport.h"
#include "storage/wire_codec.h"

namespace mlcask::service {
namespace {

namespace wire = mlcask::storage::wire;

std::string TempSocketPath(const char* tag) {
  return "/tmp/mlcask-svc-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

MergeJobSpec SpecFor(const std::string& tenant, uint64_t seed = 1) {
  MergeJobSpec spec;
  spec.tenant = tenant;
  spec.seed = seed;
  return spec;
}

/// Deterministic stand-in for a merge execution, derived from the spec so
/// coalesced sessions provably share one result.
MergeWinner StubWinner(const MergeJobSpec& spec) {
  MergeWinner winner;
  winner.component_executions = 7 + spec.seed;
  winner.best_index = 2;
  winner.best_score = 0.875;
  winner.candidates_considered = 5;
  winner.makespan_s = 1.5;
  winner.merge_commit = Sha256::Digest("commit:" + spec.CacheKey());
  winner.winner_chain = {"prep==1.0", "model==0.3"};
  winner.artifact_hashes = {Sha256::Digest("a:" + spec.tenant),
                            Sha256::Digest("b:" + spec.CacheKey())};
  return winner;
}

MergeServiceOptions StubOptions() {
  MergeServiceOptions options;
  options.worker_threads = 2;
  options.execute_override = [](const MergeJobSpec& spec) {
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  return options;
}

// ---------------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------------

TEST(ServiceCodecTest, SubmitRequestRoundTrips) {
  MergeJobSpec spec;
  spec.tenant = "acme";
  spec.workload = "dpm";
  spec.scale = 0.125;
  spec.extra_extractor_versions = 2;
  spec.extra_model_versions = 3;
  spec.storage_shards = 4;
  spec.merge_shards = 2;
  spec.num_workers = 8;
  spec.optimize_metric = "auc";
  spec.seed = 42;

  const std::string message = EncodeSubmitRequest(spec, "token-9");
  EXPECT_TRUE(IsServiceRequest(message));
  EXPECT_TRUE(wire::IsBinaryMessage(message));

  auto decoded = DecodeSubmitRequest(message);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->spec.tenant, "acme");
  EXPECT_EQ(decoded->spec.workload, "dpm");
  EXPECT_DOUBLE_EQ(decoded->spec.scale, 0.125);
  EXPECT_EQ(decoded->spec.extra_extractor_versions, 2);
  EXPECT_EQ(decoded->spec.extra_model_versions, 3);
  EXPECT_EQ(decoded->spec.storage_shards, 4u);
  EXPECT_EQ(decoded->spec.merge_shards, 2u);
  EXPECT_EQ(decoded->spec.num_workers, 8u);
  EXPECT_EQ(decoded->spec.optimize_metric, "auc");
  EXPECT_EQ(decoded->spec.seed, 42u);
  EXPECT_EQ(decoded->replay_token, "token-9");
  EXPECT_EQ(decoded->spec.CacheKey(), spec.CacheKey());

  // The generic scanners see the service request's tags 5/6 exactly like a
  // storage request's — the cross-layer contract the tag layout preserves.
  EXPECT_EQ(wire::ExtractReplayToken(message), "token-9");
}

TEST(ServiceCodecTest, SessionRequestsCarryTenantAndOpcode) {
  for (ServiceOp op : {ServiceOp::kPollMerge, ServiceOp::kFetchWinner,
                       ServiceOp::kCancelMerge}) {
    const std::string message = EncodeSessionRequest(op, "acme", "s-1");
    EXPECT_TRUE(IsServiceRequest(message));
    auto decoded = DecodeSessionRequest(message);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->tenant, "acme");
    EXPECT_EQ(decoded->session_id, "s-1");
  }
}

TEST(ServiceCodecTest, StorageRequestsAreNotServiceRequests) {
  const std::string put = wire::EncodePutRequest("k", "data");
  EXPECT_FALSE(IsServiceRequest(put));
  EXPECT_TRUE(PeekServiceOp(put).status().IsInvalidArgument());
  EXPECT_FALSE(IsServiceRequest("{\"method\":\"put\"}"));
  // And storage's own decoder rejects service opcodes typed, never aliasing
  // them onto a storage method.
  const std::string submit = EncodeSubmitRequest(SpecFor("t"), {});
  EXPECT_TRUE(wire::DecodeRequest(submit).status().code() == StatusCode::kUnimplemented);
}

TEST(ServiceCodecTest, ResponsesRoundTripIncludingErrors) {
  auto submit = DecodeSubmitResponse(EncodeSubmitResponse("s-7", true));
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->session_id, "s-7");
  EXPECT_TRUE(submit->coalesced);

  PollResult poll;
  poll.state = SessionState::kFailed;
  poll.queued_ahead = 3;
  poll.error_code = StatusCode::kDeadlineExceeded;
  poll.error_message = "expired in queue";
  auto poll_rt = DecodePollResponse(EncodePollResponse(poll));
  ASSERT_TRUE(poll_rt.ok());
  EXPECT_EQ(poll_rt->state, SessionState::kFailed);
  EXPECT_EQ(poll_rt->queued_ahead, 3u);
  EXPECT_EQ(poll_rt->error_code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(poll_rt->error_message, "expired in queue");

  auto cancel = DecodeCancelResponse(EncodeCancelResponse(
      SessionState::kCancelled));
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(*cancel, SessionState::kCancelled);

  // A typed error envelope decodes back into the remote status for every
  // response decoder.
  const std::string error =
      wire::EncodeErrorResponse(Status::NotFound("unknown merge session"));
  EXPECT_TRUE(DecodeSubmitResponse(error).status().IsNotFound());
  EXPECT_TRUE(DecodePollResponse(error).status().IsNotFound());
  EXPECT_TRUE(DecodeWinnerResponse(error).status().IsNotFound());
  EXPECT_TRUE(DecodeCancelResponse(error).status().IsNotFound());
}

TEST(ServiceCodecTest, WinnerRoundTripsAndFingerprintGuardsIntegrity) {
  const MergeWinner winner = StubWinner(SpecFor("acme", 3));
  const std::string message = EncodeWinnerResponse(winner);
  auto decoded = DecodeWinnerResponse(message);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->component_executions, winner.component_executions);
  EXPECT_EQ(decoded->best_index, winner.best_index);
  EXPECT_DOUBLE_EQ(decoded->best_score, winner.best_score);
  EXPECT_EQ(decoded->candidates_considered, winner.candidates_considered);
  EXPECT_TRUE(decoded->merge_commit == winner.merge_commit);
  EXPECT_EQ(decoded->winner_chain, winner.winner_chain);
  ASSERT_EQ(decoded->artifact_hashes.size(), winner.artifact_hashes.size());
  for (size_t i = 0; i < winner.artifact_hashes.size(); ++i) {
    EXPECT_TRUE(decoded->artifact_hashes[i] == winner.artifact_hashes[i]);
  }
  EXPECT_TRUE(decoded->Fingerprint() == winner.Fingerprint());

  // Flip one artifact byte in the body: decode must refuse — the
  // fingerprint doubles as an end-to-end integrity check.
  std::string garbled = message;
  garbled[garbled.size() - 1] ^= 0x01;
  EXPECT_TRUE(DecodeWinnerResponse(garbled).status().code() == StatusCode::kCorruption);
}

TEST(ServiceCodecTest, FingerprintDistinguishesEveryField) {
  const MergeWinner base = StubWinner(SpecFor("acme"));
  MergeWinner changed = base;
  changed.component_executions += 1;
  EXPECT_FALSE(changed.Fingerprint() == base.Fingerprint());
  changed = base;
  changed.winner_chain[0] = "prep==0.0";
  EXPECT_FALSE(changed.Fingerprint() == base.Fingerprint());
  changed = base;
  changed.artifact_hashes[1] = Sha256::Digest("tampered");
  EXPECT_FALSE(changed.Fingerprint() == base.Fingerprint());
  changed = base;
  changed.merge_commit = Sha256::Digest("other-commit");
  EXPECT_FALSE(changed.Fingerprint() == base.Fingerprint());
}

// ---------------------------------------------------------------------------
// Lifecycle state machine
// ---------------------------------------------------------------------------

TEST(MergeServiceLifecycleTest, StatesProgressOneWay) {
  MergeService service(StubOptions());
  EXPECT_EQ(service.state(), ServiceState::kInitial);
  EXPECT_TRUE(service.Submit(SpecFor("t")).status().code() == StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.state(), ServiceState::kStarted);
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(service.state(), ServiceState::kStopped);
  // One-way: a stopped service never restarts.
  EXPECT_TRUE(service.Start().code() == StatusCode::kFailedPrecondition);
}

TEST(MergeServiceLifecycleTest, DoubleStartIsFailedPrecondition) {
  MergeService service(StubOptions());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(service.Start().code() == StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(MergeServiceLifecycleTest, StopIsIdempotentFromEveryState) {
  {
    MergeService never_started(StubOptions());
    EXPECT_TRUE(never_started.Stop().ok());
    EXPECT_EQ(never_started.state(), ServiceState::kStopped);
  }
  MergeService service(StubOptions());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(service.Stop().ok());
  EXPECT_TRUE(service.Stop().ok());
}

TEST(MergeServiceLifecycleTest, StoppingDrainsEveryAcceptedSession) {
  MergeServiceOptions options;
  options.worker_threads = 2;
  options.execute_override = [](const MergeJobSpec& spec) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  std::vector<std::string> ids;
  for (uint64_t i = 0; i < 16; ++i) {
    auto submitted = service.Submit(SpecFor("acme", /*seed=*/i + 1));
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    ids.push_back(submitted->session_id);
  }
  ASSERT_TRUE(service.Stop().ok());
  // Drain completed every accepted session — none stuck queued/running.
  for (const std::string& id : ids) {
    auto poll = service.Poll("acme", id);
    ASSERT_TRUE(poll.ok()) << poll.status();
    EXPECT_EQ(poll->state, SessionState::kDone);
    auto winner = service.Fetch("acme", id);
    ASSERT_TRUE(winner.ok()) << winner.status();
  }
  EXPECT_EQ(service.stats().completed, 16u);
}

TEST(MergeServiceLifecycleTest, SubmitDuringStoppingRejectsTyped) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<bool> executing{false};
  MergeServiceOptions options;
  options.worker_threads = 1;
  options.execute_override = [&](const MergeJobSpec& spec) {
    executing = true;
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  auto live = service.Submit(SpecFor("acme"));
  ASSERT_TRUE(live.ok());
  while (!executing) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Stop in the background: the worker is pinned inside the live batch, so
  // the service sits in kStopping until the gate opens.
  std::thread stopper([&service] { ASSERT_TRUE(service.Stop().ok()); });
  while (service.state() != ServiceState::kStopping) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto rejected = service.Submit(SpecFor("acme", 2));
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status();

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  stopper.join();
  EXPECT_EQ(service.state(), ServiceState::kStopped);
  // The pinned session still drained to done.
  auto poll = service.Poll("acme", live->session_id);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kDone);
}

TEST(MergeServiceLifecycleTest, ConcurrentStopsWithLiveSessionsConverge) {
  MergeServiceOptions options;
  options.worker_threads = 2;
  options.execute_override = [](const MergeJobSpec& spec) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected_typed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&service, &accepted, &rejected_typed, t] {
      for (uint64_t i = 0; i < 20; ++i) {
        auto result = service.Submit(
            SpecFor("tenant" + std::to_string(t), i + 1));
        if (result.ok()) {
          accepted.fetch_add(1);
        } else {
          // During/after stopping the ONLY acceptable answer is typed.
          ASSERT_TRUE(result.status().IsUnavailable() ||
                      result.status().IsResourceExhausted() ||
                      result.status().code() == StatusCode::kFailedPrecondition)
              << result.status();
          rejected_typed.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 3; ++t) {
    stoppers.emplace_back([&service] { ASSERT_TRUE(service.Stop().ok()); });
  }
  for (std::thread& thread : submitters) thread.join();
  for (std::thread& thread : stoppers) thread.join();
  EXPECT_EQ(service.state(), ServiceState::kStopped);

  // Every accepted session drained to a terminal state: completed sessions
  // account for all acceptances (nothing wedged, nothing lost).
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled + stats.expired,
            accepted.load());
  EXPECT_EQ(stats.sessions_open, 0u);
  EXPECT_EQ(stats.submitted, accepted.load());
}

// ---------------------------------------------------------------------------
// Sessions: results, coalescing, cancellation, deadlines, shedding
// ---------------------------------------------------------------------------

TEST(MergeServiceTest, SubmitPollFetchDeliversTheWinner) {
  MergeService service(StubOptions());
  ASSERT_TRUE(service.Start().ok());
  auto submitted = service.Submit(SpecFor("acme", 5));
  ASSERT_TRUE(submitted.ok());
  EXPECT_FALSE(submitted->coalesced);

  // Poll until terminal; a poller can never wedge.
  SessionState state = SessionState::kQueued;
  for (int i = 0; i < 2000 && !IsTerminal(state); ++i) {
    auto poll = service.Poll("acme", submitted->session_id);
    ASSERT_TRUE(poll.ok()) << poll.status();
    state = poll->state;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(state, SessionState::kDone);
  auto winner = service.Fetch("acme", submitted->session_id);
  ASSERT_TRUE(winner.ok()) << winner.status();
  EXPECT_TRUE(winner->Fingerprint() ==
              StubWinner(SpecFor("acme", 5)).Fingerprint());
  ASSERT_TRUE(service.Stop().ok());
}

TEST(MergeServiceTest, CompatibleSubmissionsCoalesceIntoOneExecution) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<uint64_t> executions{0};
  MergeServiceOptions options;
  options.worker_threads = 1;
  options.execute_override = [&](const MergeJobSpec& spec) {
    {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return release; });
    }
    executions.fetch_add(1);
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());

  // First submission occupies the single worker (a decoy batch), so the
  // next three stay QUEUED and coalesce; a fourth with a different seed
  // must not join them.
  auto decoy = service.Submit(SpecFor("acme", 99));
  ASSERT_TRUE(decoy.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto first = service.Submit(SpecFor("acme", 1));
  auto second = service.Submit(SpecFor("acme", 1));
  auto third = service.Submit(SpecFor("acme", 1));
  auto other = service.Submit(SpecFor("acme", 2));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(first->coalesced);
  EXPECT_TRUE(second->coalesced);
  EXPECT_TRUE(third->coalesced);
  EXPECT_FALSE(other->coalesced);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(service.Stop().ok());

  // 3 executions total (decoy + coalesced batch + other), not 5.
  EXPECT_EQ(executions.load(), 3u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.completed, 5u);

  // All three coalesced sessions share one bit-identical winner.
  auto w1 = service.Fetch("acme", first->session_id);
  auto w2 = service.Fetch("acme", second->session_id);
  auto w3 = service.Fetch("acme", third->session_id);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE(w3.ok());
  EXPECT_TRUE(w1->Fingerprint() == w2->Fingerprint());
  EXPECT_TRUE(w2->Fingerprint() == w3->Fingerprint());
}

TEST(MergeServiceTest, CancelQueuedResolvesRunningDefersTerminalIdempotent) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<bool> executing{false};
  MergeServiceOptions options;
  options.worker_threads = 1;
  options.execute_override = [&](const MergeJobSpec& spec) {
    executing = true;
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());

  auto running = service.Submit(SpecFor("acme", 1));
  ASSERT_TRUE(running.ok());
  while (!executing) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto queued = service.Submit(SpecFor("acme", 2));
  ASSERT_TRUE(queued.ok());

  // Queued: cancelled immediately.
  auto cancel_queued = service.Cancel("acme", queued->session_id);
  ASSERT_TRUE(cancel_queued.ok());
  EXPECT_EQ(*cancel_queued, SessionState::kCancelled);
  // Terminal: idempotent.
  auto cancel_again = service.Cancel("acme", queued->session_id);
  ASSERT_TRUE(cancel_again.ok());
  EXPECT_EQ(*cancel_again, SessionState::kCancelled);
  // Running: recorded, applied when the batch lands.
  auto cancel_running = service.Cancel("acme", running->session_id);
  ASSERT_TRUE(cancel_running.ok());
  EXPECT_EQ(*cancel_running, SessionState::kRunning);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(service.Stop().ok());
  auto poll = service.Poll("acme", running->session_id);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kCancelled);
  EXPECT_TRUE(
      service.Fetch("acme", running->session_id).status()
          .code() == StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.stats().cancelled, 2u);
}

TEST(MergeServiceTest, AdmissionCapsShedTypedAndCountThem) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  MergeServiceOptions options;
  options.worker_threads = 1;
  options.max_queued_batches = 2;
  options.execute_override = [&](const MergeJobSpec& spec) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  // One batch runs (popped off the queue), two queue, the next sheds.
  ASSERT_TRUE(service.Submit(SpecFor("acme", 1)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(service.Submit(SpecFor("acme", 2)).ok());
  ASSERT_TRUE(service.Submit(SpecFor("acme", 3)).ok());
  auto shed = service.Submit(SpecFor("acme", 4));
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status();
  // A coalescible submit rides an EXISTING batch: admitted despite the cap.
  auto coalesced = service.Submit(SpecFor("acme", 2));
  ASSERT_TRUE(coalesced.ok());
  EXPECT_TRUE(coalesced->coalesced);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(service.stats().shed, 1u);
}

TEST(MergeServiceTest, ExpiredQueuedSessionResolvesTypedAtPoll) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  MergeServiceOptions options;
  options.worker_threads = 1;
  options.execute_override = [&](const MergeJobSpec& spec) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Submit(SpecFor("acme", 1)).ok());  // pins the worker
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto doomed = service.Submit(SpecFor("acme", 2), {}, /*deadline_ms=*/10);
  ASSERT_TRUE(doomed.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The deadline passed while queued: the next poll resolves it typed —
  // the "a shed or expired session never wedges a poller" contract.
  auto poll = service.Poll("acme", doomed->session_id);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kFailed);
  EXPECT_EQ(poll->error_code, StatusCode::kDeadlineExceeded);
  auto fetch = service.Fetch("acme", doomed->session_id);
  EXPECT_TRUE(fetch.status().IsDeadlineExceeded()) << fetch.status();
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(MergeServiceTest, TerminalSessionsExpireFromTheTableAfterTtl) {
  MergeServiceOptions options = StubOptions();
  options.session_ttl_ms = 40;
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  auto submitted = service.Submit(SpecFor("acme"));
  ASSERT_TRUE(submitted.ok());
  for (int i = 0; i < 2000; ++i) {
    auto poll = service.Poll("acme", submitted->session_id);
    ASSERT_TRUE(poll.ok());
    if (IsTerminal(poll->state)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // TTL passed: the table forgot the session.
  EXPECT_TRUE(
      service.Poll("acme", submitted->session_id).status().IsNotFound());
  ASSERT_TRUE(service.Stop().ok());
}

// ---------------------------------------------------------------------------
// Tenant isolation
// ---------------------------------------------------------------------------

TEST(MergeServiceTest, ForeignSessionsAnswerNotFound) {
  MergeService service(StubOptions());
  ASSERT_TRUE(service.Start().ok());
  auto submitted = service.Submit(SpecFor("acme"));
  ASSERT_TRUE(submitted.ok());
  // Another tenant holding the exact session id sees NOTHING — poll,
  // fetch, and cancel all answer as if the session never existed.
  EXPECT_TRUE(
      service.Poll("rival", submitted->session_id).status().IsNotFound());
  EXPECT_TRUE(
      service.Fetch("rival", submitted->session_id).status().IsNotFound());
  EXPECT_TRUE(
      service.Cancel("rival", submitted->session_id).status().IsNotFound());
  // The owner still sees it.
  EXPECT_TRUE(service.Poll("acme", submitted->session_id).ok());
  ASSERT_TRUE(service.Stop().ok());
}

TEST(MergeServiceTest, ReplayLedgerIsKeyedByTenant) {
  MergeService service(StubOptions());
  ASSERT_TRUE(service.Start().ok());
  // Byte-identical token AND spec (apart from tenant): two tenants must
  // get two DIFFERENT sessions — the ledger never cross-dedupes.
  auto acme = service.Submit(SpecFor("acme"), "token-1");
  auto rival = service.Submit(SpecFor("rival"), "token-1");
  ASSERT_TRUE(acme.ok());
  ASSERT_TRUE(rival.ok());
  EXPECT_NE(acme->session_id, rival->session_id);

  // Same tenant, same token: the SAME session comes back (idempotent
  // submit), not a duplicate.
  auto replay = service.Submit(SpecFor("acme"), "token-1");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->session_id, acme->session_id);
  const auto stats = service.stats();
  EXPECT_EQ(stats.replay_hits, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  ASSERT_TRUE(service.Stop().ok());
}

// ---------------------------------------------------------------------------
// Deficit-round-robin fairness
// ---------------------------------------------------------------------------

TEST(MergeSchedulerTest, ServesBackloggedTenantsByWeight) {
  MergeScheduler scheduler(/*default_weight=*/1,
                           {{"gold", 3}, {"free", 1}});
  auto enqueue = [&scheduler](const std::string& tenant, uint64_t seed) {
    auto batch = std::make_unique<MergeBatch>();
    batch->spec = SpecFor(tenant, seed);
    batch->session_ids.push_back(tenant + std::to_string(seed));
    scheduler.Enqueue(std::move(batch));
  };
  for (uint64_t i = 0; i < 24; ++i) enqueue("gold", i + 1);
  for (uint64_t i = 0; i < 24; ++i) enqueue("free", i + 1);

  // While both stay backlogged, each replenish cycle serves gold 3 times
  // for every free batch — exactly weight-proportional.
  uint64_t gold_served = 0;
  uint64_t free_served = 0;
  for (int i = 0; i < 24; ++i) {
    auto batch = scheduler.PickNext();
    ASSERT_NE(batch, nullptr);
    (batch->spec.tenant == "gold" ? gold_served : free_served) += 1;
  }
  EXPECT_EQ(gold_served, 18u);
  EXPECT_EQ(free_served, 6u);

  // Once gold drains, free gets full service — work conservation.
  while (scheduler.queued_for("gold") > 0) scheduler.PickNext();
  auto batch = scheduler.PickNext();
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->spec.tenant, "free");
}

TEST(MergeSchedulerTest, IdleTenantsDoNotHoardCredit) {
  MergeScheduler scheduler(/*default_weight=*/1, {{"gold", 4}});
  auto enqueue = [&scheduler](const std::string& tenant, uint64_t seed) {
    auto batch = std::make_unique<MergeBatch>();
    batch->spec = SpecFor(tenant, seed);
    scheduler.Enqueue(std::move(batch));
  };
  // gold drains fully: its deficit resets instead of banking 3 credits.
  enqueue("gold", 1);
  ASSERT_NE(scheduler.PickNext(), nullptr);
  for (uint64_t i = 0; i < 8; ++i) enqueue("free", i + 1);
  enqueue("gold", 2);
  // gold's share of the next cycle is its weight, not weight + banked.
  uint64_t gold_in_first_cycle = 0;
  for (int i = 0; i < 5; ++i) {
    auto batch = scheduler.PickNext();
    ASSERT_NE(batch, nullptr);
    if (batch->spec.tenant == "gold") ++gold_in_first_cycle;
  }
  EXPECT_LE(gold_in_first_cycle, 1u);
}

TEST(MergeServiceTest, FairnessHoldsEndToEndUnderBacklog) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  std::mutex order_mu;
  std::vector<std::string> served_order;
  MergeServiceOptions options;
  options.worker_threads = 1;
  options.tenant_weights = {{"gold", 3}, {"free", 1}};
  options.max_queued_per_tenant = 64;
  options.execute_override = [&](const MergeJobSpec& spec) {
    {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return release; });
    }
    {
      std::lock_guard<std::mutex> lock(order_mu);
      served_order.push_back(spec.tenant);
    }
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  // Distinct seeds: no coalescing, 32 batches per tenant, all queued while
  // the gate pins the worker on the first pick.
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(service.Submit(SpecFor("gold", i + 1)).ok());
    ASSERT_TRUE(service.Submit(SpecFor("free", i + 1)).ok());
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(service.Stop().ok());

  // In the window where both tenants were backlogged (the first 32 served
  // batches), gold's share must track its 3x weight. The first pick raced
  // the backlog build-up, so skip it.
  uint64_t gold_served = 0;
  uint64_t window = 0;
  for (size_t i = 1; i < served_order.size() && window < 32; ++i, ++window) {
    if (served_order[i] == "gold") ++gold_served;
  }
  ASSERT_EQ(window, 32u);
  // Exact DRR would serve 24 of 32; allow +-4 for the racy first cycle.
  EXPECT_GE(gold_served, 20u);
  EXPECT_LE(gold_served, 28u);
  // And per-tenant service counters surfaced the same story.
  const auto stats = service.stats();
  EXPECT_EQ(stats.tenant_batches.at("gold"), 32u);
  EXPECT_EQ(stats.tenant_batches.at("free"), 32u);
}

// ---------------------------------------------------------------------------
// Saturation schedule generator
// ---------------------------------------------------------------------------

TEST(SaturationScheduleTest, DeterministicShapedAndSorted) {
  sim::SaturationConfig config;
  config.tenants = {{"gold", 3, 300, 0.8, 4}, {"free", 1, 100, 0.5, 3}};
  config.duration_s = 4;
  config.base_rps = 100;
  config.seed = 7;
  const auto a = sim::BuildSaturationSchedule(config);
  const auto b = sim::BuildSaturationSchedule(config);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_s, b[i].at_s);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].spec_seed, b[i].spec_seed);
  }
  size_t gold = 0;
  size_t hot = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(a[i].at_s, a[i - 1].at_s);
    }
    EXPECT_GE(a[i].at_s, 0.0);
    EXPECT_LE(a[i].at_s, config.duration_s);
    if (a[i].tenant == "gold") ++gold;
    if (a[i].hot) {
      ++hot;
      EXPECT_EQ(a[i].spec_seed, 1u);
    } else {
      EXPECT_GE(a[i].spec_seed, 2u);
    }
  }
  // Population split: gold has 3x the users, so ~3/4 of the events.
  EXPECT_GT(gold, a.size() / 2);
  EXPECT_LT(gold, a.size() * 9 / 10);
  // Hot-key skew materialized.
  EXPECT_GT(hot, a.size() / 2);
  // A different seed moves the schedule.
  config.seed = 8;
  const auto c = sim::BuildSaturationSchedule(config);
  bool any_differs = c.size() != a.size();
  for (size_t i = 0; !any_differs && i < a.size(); ++i) {
    any_differs = a[i].at_s != c[i].at_s || a[i].tenant != c[i].tenant;
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// End-to-end over a real socket (frontend + client), including faults
// ---------------------------------------------------------------------------

TEST(MergeFrontendSocketTest, SessionsWorkOverARealSocket) {
  MergeService service(StubOptions());
  ASSERT_TRUE(service.Start().ok());
  MergeFrontend frontend(&service);

  const std::string path = TempSocketPath("e2e");
  auto server = storage::SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)
                  ->Serve([&frontend](std::string_view request) {
                    return frontend.Handle(request);
                  })
                  .ok());
  auto transport = storage::SocketTransport::Connect((*server)->endpoint());
  ASSERT_TRUE(transport.ok()) << transport.status();

  MergeServiceClient client(transport->get(), "acme");
  auto submitted = client.Submit(SpecFor("ignored", 5));
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  auto winner = client.AwaitWinner(submitted->session_id,
                                   /*poll_interval_ms=*/1,
                                   /*timeout_ms=*/10000);
  ASSERT_TRUE(winner.ok()) << winner.status();
  EXPECT_TRUE(winner->Fingerprint() ==
              StubWinner(SpecFor("acme", 5)).Fingerprint());

  // Tenant isolation holds across the wire: a rival client with the stolen
  // session id gets typed NotFound.
  MergeServiceClient rival(transport->get(), "rival");
  EXPECT_TRUE(rival.Poll(submitted->session_id).status().IsNotFound());
  EXPECT_TRUE(rival.Fetch(submitted->session_id).status().IsNotFound());

  (*server)->Shutdown();
  ASSERT_TRUE(service.Stop().ok());
  ::unlink(path.c_str());
}

TEST(MergeFrontendSocketTest, RedialReplayUnderFaultsStaysExactlyOnce) {
  std::atomic<uint64_t> executions{0};
  MergeServiceOptions options;
  options.worker_threads = 2;
  options.execute_override = [&executions](const MergeJobSpec& spec) {
    executions.fetch_add(1);
    return StatusOr<MergeWinner>(StubWinner(spec));
  };
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  MergeFrontend frontend(&service);

  const std::string path = TempSocketPath("faults");
  auto server = storage::SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)
                  ->Serve([&frontend](std::string_view request) {
                    return frontend.Handle(request);
                  })
                  .ok());

  // Client-side injected frame drops + drop-after-send: every RPC may need
  // redial and replay. PR 7 contract carried to the service layer: typed
  // status or the SAME session — never a duplicate, never a hang.
  auto fault_spec = storage::FaultSpec::Parse("seed=11,drop=0.15,dropafter=0.1");
  ASSERT_TRUE(fault_spec.ok());
  storage::SocketTransport::Options copts;
  copts.injector = std::make_shared<storage::FaultInjector>(*fault_spec);
  copts.redial_budget_ms = 5000;
  auto transport =
      storage::SocketTransport::Connect((*server)->endpoint(), copts);
  ASSERT_TRUE(transport.ok()) << transport.status();

  MergeServiceClient client(transport->get(), "acme");
  std::vector<std::string> sessions;
  for (uint64_t i = 0; i < 8; ++i) {
    auto submitted = client.Submit(SpecFor("ignored", i + 1));
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    sessions.push_back(submitted->session_id);
  }
  for (uint64_t i = 0; i < sessions.size(); ++i) {
    auto winner = client.AwaitWinner(sessions[i], 1, 15000);
    ASSERT_TRUE(winner.ok()) << winner.status();
    EXPECT_TRUE(winner->Fingerprint() ==
                StubWinner(SpecFor("acme", i + 1)).Fingerprint());
  }
  // Exactly-once: 8 distinct submissions, 8 sessions, 8 executions — any
  // transport-level replay landed on the ledger, not on a new session.
  EXPECT_EQ(service.stats().submitted, 8u);
  EXPECT_EQ(executions.load(), 8u);

  (*server)->Shutdown();
  ASSERT_TRUE(service.Stop().ok());
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Server-side merge == client-local Algorithm 2 (the real path)
// ---------------------------------------------------------------------------

#define CHECK_OK_OR_DIE(expr)                                        \
  do {                                                               \
    const Status _st = (expr);                                       \
    if (!_st.ok()) {                                                 \
      ADD_FAILURE() << #expr << ": " << _st;                         \
      std::abort();                                                  \
    }                                                                \
  } while (0)

MergeWinner ClientLocalReference(const MergeJobSpec& spec) {
  sim::DeploymentConfig config;
  config.num_workers = spec.num_workers;
  config.storage_shards = spec.storage_shards;
  auto deployment = sim::MakeDeployment(spec.workload, spec.scale, config);
  CHECK_OK_OR_DIE(deployment.status());
  auto d = *std::move(deployment);
  auto scenario = sim::BuildDistributedMergeScenario(
      d.get(), spec.extra_extractor_versions, spec.extra_model_versions);
  CHECK_OK_OR_DIE(scenario.status());
  merge::MergeOperation op(d->repo.get(), d->libraries.get(),
                           d->registry.get(), d->engine.get(),
                           d->clock.get());
  merge::MergeOptions options;
  options.shards = spec.merge_shards;
  options.num_workers = spec.num_workers;
  options.seed = spec.seed;
  if (spec.merge_shards <= 1) options.core = d->core.get();
  auto report = op.Merge(scenario->head_branch, scenario->merge_branch,
                         options);
  CHECK_OK_OR_DIE(report.status());
  auto winner = WinnerFromReport(*report, d->repo.get(),
                                 scenario->head_branch);
  CHECK_OK_OR_DIE(winner.status());
  return *winner;
}

TEST(MergeServiceRealPathTest, ServerWinnerMatchesClientLocalMerge) {
  MergeServiceOptions options;
  options.worker_threads = 1;  // no execute_override: the real path
  MergeService service(options);
  ASSERT_TRUE(service.Start().ok());
  for (uint32_t merge_shards : {1u, 2u}) {
    SCOPED_TRACE("merge_shards=" + std::to_string(merge_shards));
    MergeJobSpec spec = SpecFor("acme");
    spec.merge_shards = merge_shards;
    auto submitted = service.Submit(spec);
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    SessionState state = SessionState::kQueued;
    for (int i = 0; i < 60000 && !IsTerminal(state); ++i) {
      auto poll = service.Poll("acme", submitted->session_id);
      ASSERT_TRUE(poll.ok()) << poll.status();
      state = poll->state;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(state, SessionState::kDone);
    auto server_winner = service.Fetch("acme", submitted->session_id);
    ASSERT_TRUE(server_winner.ok()) << server_winner.status();

    const MergeWinner reference = ClientLocalReference(spec);
    // Bit-identical: winner chain, executions, commit, artifact hashes.
    EXPECT_EQ(server_winner->winner_chain, reference.winner_chain);
    EXPECT_EQ(server_winner->component_executions,
              reference.component_executions);
    EXPECT_EQ(server_winner->best_index, reference.best_index);
    EXPECT_EQ(server_winner->best_score, reference.best_score);
    EXPECT_TRUE(server_winner->merge_commit == reference.merge_commit);
    ASSERT_EQ(server_winner->artifact_hashes.size(),
              reference.artifact_hashes.size());
    for (size_t i = 0; i < reference.artifact_hashes.size(); ++i) {
      EXPECT_TRUE(server_winner->artifact_hashes[i] ==
                  reference.artifact_hashes[i]);
    }
    EXPECT_TRUE(server_winner->Fingerprint() == reference.Fingerprint());
  }
  ASSERT_TRUE(service.Stop().ok());
}

}  // namespace
}  // namespace mlcask::service
