#include "version/history_query.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/scenario.h"
#include "version/gc.h"

namespace mlcask::version {
namespace {

class HistoryQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = sim::MakeDeployment("readmission", /*scale=*/0.08);
    MLCASK_CHECK_OK(d.status());
    deployment_ = std::move(d).value();
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(deployment_.get()).status());
    query_ = std::make_unique<HistoryQuery>(deployment_->repo.get());
  }

  std::unique_ptr<sim::Deployment> deployment_;
  std::unique_ptr<HistoryQuery> query_;
};

TEST_F(HistoryQueryTest, AllCommitsCoversBothBranches) {
  auto commits = query_->AllCommits();
  // Scenario: master.0.0, dev.0.0..0.2, master.0.1 = 5 commits.
  ASSERT_EQ(commits.size(), 5u);
  // Oldest first.
  EXPECT_EQ(commits.front()->Label(), "master.0.0");
  for (size_t i = 1; i < commits.size(); ++i) {
    EXPECT_LE(commits[i - 1]->sim_time, commits[i]->sim_time);
  }
}

TEST_F(HistoryQueryTest, CommitsUsingSpecificVersion) {
  auto v00 = *SemanticVersion::Parse("0.0");
  auto using_cnn0 = query_->CommitsUsing("cnn", v00);
  ASSERT_EQ(using_cnn0.size(), 1u);  // only the ancestor
  EXPECT_EQ(using_cnn0[0]->Label(), "master.0.0");

  auto v10 = *SemanticVersion::Parse("1.0");
  auto using_fe1 = query_->CommitsUsing("feature_extract", v10);
  EXPECT_EQ(using_fe1.size(), 2u);  // dev.0.1 and dev.0.2

  EXPECT_TRUE(query_->CommitsUsing("ghost", v00).empty());
}

TEST_F(HistoryQueryTest, ScoreAndTimeFilters) {
  auto all = query_->AllCommits();
  auto scored = query_->CommitsWithScoreAtLeast(0.0);
  EXPECT_EQ(scored.size(), all.size());  // every commit in the scenario ran
  auto none = query_->CommitsWithScoreAtLeast(1.1);
  EXPECT_TRUE(none.empty());

  double t_mid = all[2]->sim_time;
  auto early = query_->CommitsInTimeRange(0.0, t_mid);
  EXPECT_EQ(early.size(), 3u);
  EXPECT_TRUE(query_->CommitsInTimeRange(1e12, 2e12).empty());
}

TEST_F(HistoryQueryTest, BestByScoreIsArgmax) {
  const Commit* best = query_->BestByScore();
  ASSERT_NE(best, nullptr);
  for (const Commit* c : query_->AllCommits()) {
    if (c->snapshot.has_score()) {
      EXPECT_LE(c->snapshot.score, best->snapshot.score);
    }
  }
}

TEST_F(HistoryQueryTest, ComponentTimelineTracksChanges) {
  auto timeline = query_->ComponentTimeline("cnn");
  // cnn: 0.0 (ancestor) -> 0.1 -> 0.2 -> 0.3 (dev) -> 0.4 (master.0.1);
  // ordering is by time, and consecutive duplicates collapse.
  ASSERT_GE(timeline.size(), 4u);
  EXPECT_EQ(timeline.front().second.ToString(), "0.0");
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_FALSE(timeline[i].second == timeline[i - 1].second);
  }
  EXPECT_TRUE(query_->ComponentTimeline("ghost").empty());
}

TEST_F(HistoryQueryTest, DiffClassifiesChanges) {
  auto commits = query_->AllCommits();
  const Commit* ancestor = commits.front();
  // dev head: feature_extract schema-changed, cnn incremented (x3),
  // data_cleansing unchanged.
  auto dev_head = deployment_->repo->Head("dev");
  ASSERT_TRUE(dev_head.ok());
  auto diff = query_->Diff(ancestor->id, (*dev_head)->id);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 4u);
  for (const ComponentDiff& d : *diff) {
    if (d.name == "dataset" || d.name == "data_cleansing") {
      EXPECT_EQ(d.kind, ComponentDiff::Kind::kUnchanged) << d.name;
    } else if (d.name == "feature_extract") {
      EXPECT_EQ(d.kind, ComponentDiff::Kind::kSchemaChange);
      EXPECT_EQ(d.to.ToString(), "1.0");
    } else if (d.name == "cnn") {
      EXPECT_EQ(d.kind, ComponentDiff::Kind::kIncrement);
      EXPECT_EQ(d.to.ToString(), "0.3");
    }
  }
}

TEST_F(HistoryQueryTest, DiffRejectsUnknownCommit) {
  Hash256 bogus = Sha256::Digest("nope");
  auto head = deployment_->repo->Head("master");
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(query_->Diff(bogus, (*head)->id).status().IsNotFound());
}

TEST(ComponentDiffTest, KindNames) {
  EXPECT_STREQ(ComponentDiffKindName(ComponentDiff::Kind::kUnchanged),
               "unchanged");
  EXPECT_STREQ(ComponentDiffKindName(ComponentDiff::Kind::kSchemaChange),
               "schema-change");
  EXPECT_STREQ(ComponentDiffKindName(ComponentDiff::Kind::kAdded), "added");
}

class GcTest : public HistoryQueryTest {};

TEST_F(GcTest, NothingCollectedWhenAllReferenced) {
  auto stats =
      CollectArtifactGarbage(*deployment_->repo, deployment_->engine.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->artifacts_examined, 0u);
  EXPECT_EQ(stats->artifacts_deleted, 0u);
  EXPECT_EQ(stats->bytes_freed, 0u);
}

TEST_F(GcTest, UnreferencedArtifactsCollected) {
  // Write artifacts no commit references (an abandoned trial).
  auto put1 = deployment_->engine->Put("artifact/readmission/abandoned-1",
                                       std::string(50000, 'x'));
  auto put2 = deployment_->engine->Put("artifact/readmission/abandoned-2",
                                       std::string(50000, 'y'));
  ASSERT_TRUE(put1.ok() && put2.ok());
  uint64_t before = deployment_->engine->stats().physical_bytes;

  auto stats =
      CollectArtifactGarbage(*deployment_->repo, deployment_->engine.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->artifacts_deleted, 2u);
  EXPECT_GT(stats->bytes_freed, 0u);
  EXPECT_LT(deployment_->engine->stats().physical_bytes, before);
  EXPECT_FALSE(deployment_->engine->HasVersion(put1->id));

  // Referenced artifacts are still readable.
  auto head = deployment_->repo->Head("master");
  ASSERT_TRUE(head.ok());
  for (const auto& rec : (*head)->snapshot.components) {
    ASSERT_TRUE(rec.has_output());
    EXPECT_TRUE(deployment_->engine->GetVersion(rec.output_id).ok());
  }
}

TEST_F(GcTest, NonArtifactObjectsNeverCollected) {
  // Library metafiles and commits survive GC even if hypothetically
  // unreferenced — traceability is a design goal.
  size_t libraries_before = 0;
  for (const auto& [key, id] : deployment_->engine->ListAllVersions()) {
    (void)id;
    if (key.rfind("library/", 0) == 0 || key.rfind("pipeline/", 0) == 0) {
      ++libraries_before;
    }
  }
  ASSERT_GT(libraries_before, 0u);
  ASSERT_TRUE(
      CollectArtifactGarbage(*deployment_->repo, deployment_->engine.get())
          .ok());
  size_t libraries_after = 0;
  for (const auto& [key, id] : deployment_->engine->ListAllVersions()) {
    (void)id;
    if (key.rfind("library/", 0) == 0 || key.rfind("pipeline/", 0) == 0) {
      ++libraries_after;
    }
  }
  EXPECT_EQ(libraries_after, libraries_before);
}

TEST_F(GcTest, SharedChunksSurvivePartialDelete) {
  // Two similar artifacts share chunks on the ForkBase engine; deleting one
  // must not corrupt the other.
  std::string payload(80000, 'z');
  auto keep = deployment_->engine->Put("artifact/readmission/keep", payload);
  std::string similar = payload;
  similar[40000] = 'q';
  auto drop = deployment_->engine->Put("artifact/readmission/drop", similar);
  ASSERT_TRUE(keep.ok() && drop.ok());
  auto freed = deployment_->engine->DeleteVersion(drop->id);
  ASSERT_TRUE(freed.ok());
  // Only the non-shared bytes are freed.
  EXPECT_LT(*freed, similar.size() / 2);
  auto back = deployment_->engine->GetVersion(keep->id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST_F(GcTest, DeleteUnknownVersionIsNotFound) {
  EXPECT_TRUE(deployment_->engine->DeleteVersion(Sha256::Digest("x"))
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace mlcask::version
