#include "pipeline/checkout.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/scenario.h"

namespace mlcask::pipeline {
namespace {

class CheckoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = sim::MakeDeployment("readmission", /*scale=*/0.08);
    MLCASK_CHECK_OK(d.status());
    deployment_ = std::move(d).value();
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(deployment_.get()).status());
  }

  std::unique_ptr<sim::Deployment> deployment_;
};

TEST_F(CheckoutTest, MaterializeRebuildsHistoricalPipeline) {
  // Check out the dev head (an older, schema-evolved pipeline version).
  auto dev_head = deployment_->repo->Head("dev");
  ASSERT_TRUE(dev_head.ok());
  auto p = MaterializePipeline(**dev_head, *deployment_->libraries,
                               "readmission");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsChain());
  EXPECT_TRUE(p->CheckCompatibility().ok());
  const auto* fe = *p->Find("feature_extract");
  EXPECT_EQ(fe->version.ToString(), "1.0");
  const auto* cnn = *p->Find("cnn");
  EXPECT_EQ(cnn->version.ToString(), "0.3");
}

TEST_F(CheckoutTest, MaterializedPipelineIsRunnable) {
  auto root_commits =
      deployment_->repo->graph().Log((*deployment_->repo->Head("dev"))->id);
  const version::Commit* ancestor = root_commits.back();
  auto p = MaterializePipeline(*ancestor, *deployment_->libraries,
                               "readmission");
  ASSERT_TRUE(p.ok());
  // Retrospective re-run of the historical version with a fresh executor.
  Executor executor(deployment_->registry.get(), deployment_->engine.get(),
                    nullptr);
  ExecutorOptions opts;
  opts.store_outputs = false;
  auto run = executor.Run(*p, opts);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->has_score());
}

TEST_F(CheckoutTest, MaterializeFailsForUnknownLibraryVersion) {
  version::Commit fake;
  version::ComponentRecord rec;
  rec.name = "cnn";
  rec.version = *version::SemanticVersion::Parse("9.9");
  fake.snapshot.components.push_back(rec);
  EXPECT_TRUE(MaterializePipeline(fake, *deployment_->libraries, "x")
                  .status()
                  .IsNotFound());
}

TEST_F(CheckoutTest, SeedExecutorFromCommitMakesRunFree) {
  auto head = deployment_->repo->Head("master");
  ASSERT_TRUE(head.ok());
  Executor executor(deployment_->registry.get(), deployment_->engine.get(),
                    nullptr);
  std::set<Hash256> keys;
  ASSERT_TRUE(SeedExecutorFromCommit(**head, *deployment_->libraries,
                                     deployment_->engine.get(), &executor,
                                     &keys)
                  .ok());
  // One seeded prefix per component of the commit.
  EXPECT_EQ(keys.size(), (*head)->snapshot.components.size());

  auto p = MaterializePipeline(**head, *deployment_->libraries, "readmission");
  ASSERT_TRUE(p.ok());
  ExecutorOptions opts;
  opts.store_outputs = false;
  auto run = executor.Run(*p, opts);
  ASSERT_TRUE(run.ok());
  for (const auto& c : run->components) {
    EXPECT_TRUE(c.reused) << c.name;
  }
  EXPECT_EQ(executor.executions(), 0u);
  // Score and metric set are recovered from the commit.
  EXPECT_DOUBLE_EQ(run->score, (*head)->snapshot.score);
  EXPECT_EQ(run->metrics, (*head)->snapshot.metrics);
}

}  // namespace
}  // namespace mlcask::pipeline
