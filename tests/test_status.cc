#include "common/status.h"

#include <gtest/gtest.h>

namespace mlcask {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing chunk");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing chunk");
  EXPECT_EQ(s.ToString(), "not_found: missing chunk");
}

TEST(StatusTest, IncompatibleCode) {
  Status s = Status::Incompatible("schema mismatch");
  EXPECT_TRUE(s.IsIncompatible());
  EXPECT_EQ(StatusCodeName(s.code()), std::string("incompatible"));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodeNamesDistinct) {
  const StatusCode codes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
      StatusCode::kCorruption,  StatusCode::kIncompatible,
      StatusCode::kUnimplemented, StatusCode::kInternal};
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_STRNE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
    }
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("index 9");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> v = std::string("payload");
  std::string got = std::move(v).value();
  EXPECT_EQ(got, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  MLCASK_ASSIGN_OR_RETURN(int h, Half(x));
  MLCASK_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = -1;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseAssignOrReturn(6, &out);  // 6/2=3, 3 is odd -> error
  EXPECT_TRUE(s.IsInvalidArgument());
}

Status UseReturnIfError(bool fail) {
  MLCASK_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace mlcask
