#include "common/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace mlcask {
namespace {

// NIST FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::Digest(input).ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  // Feed in awkward pieces to cross the 64-byte block boundary.
  h.Update(data.substr(0, 1));
  h.Update(data.substr(1, 30));
  h.Update(data.substr(31));
  EXPECT_EQ(h.Finish().ToHex(), Sha256::Digest(data).ToHex());
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("abc");
  Hash256 first = h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(h.Finish(), first);
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Digest("a"), Sha256::Digest("b"));
  EXPECT_NE(Sha256::Digest("ab"), Sha256::Digest("ba"));
}

TEST(Hash256Test, HexRoundTrip) {
  Hash256 h = Sha256::Digest("round trip");
  Hash256 parsed;
  ASSERT_TRUE(Hash256::FromHex(h.ToHex(), &parsed));
  EXPECT_EQ(parsed, h);
}

TEST(Hash256Test, FromHexRejectsMalformed) {
  Hash256 out;
  EXPECT_FALSE(Hash256::FromHex("zz", &out));
  EXPECT_FALSE(Hash256::FromHex(std::string(63, 'a'), &out));
  EXPECT_FALSE(Hash256::FromHex(std::string(64, 'g'), &out));
  EXPECT_TRUE(Hash256::FromHex(std::string(64, 'a'), &out));
}

TEST(Hash256Test, ShortHexIsPrefix) {
  Hash256 h = Sha256::Digest("prefix");
  EXPECT_EQ(h.ShortHex(8), h.ToHex().substr(0, 8));
  EXPECT_EQ(h.ShortHex(100), h.ToHex());
}

TEST(Hash256Test, ZeroDetection) {
  Hash256 z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(Sha256::Digest("x").IsZero());
}

TEST(Hash256Test, OrderingIsLexicographic) {
  Hash256 a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

// Property: digests over a sweep of lengths around block boundaries never
// collide and incremental always equals one-shot.
class Sha256BoundarySweep : public ::testing::TestWithParam<int> {};

TEST_P(Sha256BoundarySweep, IncrementalEqualsOneShotAtBoundary) {
  int len = GetParam();
  std::string data(static_cast<size_t>(len), 'x');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i % 251);
  Sha256 h;
  size_t half = data.size() / 2;
  h.Update(data.substr(0, half));
  h.Update(data.substr(half));
  EXPECT_EQ(h.Finish(), Sha256::Digest(data));
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, Sha256BoundarySweep,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 127, 128, 129, 1000));

}  // namespace
}  // namespace mlcask
