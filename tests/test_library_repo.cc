#include "pipeline/library_repo.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "storage/forkbase_engine.h"

namespace mlcask::pipeline {
namespace {

ComponentVersionSpec Spec(const std::string& name, const std::string& ver,
                          const std::string& impl = "impl_x") {
  ComponentVersionSpec s;
  s.name = name;
  s.version = *version::SemanticVersion::Parse(ver);
  s.impl = impl;
  return s;
}

class LibraryRepoTest : public ::testing::Test {
 protected:
  LibraryRepoTest() : repo_(&engine_, &clock_) {}

  storage::ForkBaseEngine engine_;
  SimClock clock_;
  LibraryRepo repo_;
};

TEST_F(LibraryRepoTest, PutGetRoundTrip) {
  ASSERT_TRUE(repo_.Put(Spec("cnn", "0.0")).ok());
  auto got = repo_.Get("cnn", *version::SemanticVersion::Parse("0.0"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->impl, "impl_x");
  EXPECT_EQ(repo_.size(), 1u);
}

TEST_F(LibraryRepoTest, IdempotentRePut) {
  ASSERT_TRUE(repo_.Put(Spec("cnn", "0.0")).ok());
  ASSERT_TRUE(repo_.Put(Spec("cnn", "0.0")).ok());  // identical -> no-op
  EXPECT_EQ(repo_.size(), 1u);
}

TEST_F(LibraryRepoTest, ConflictingContentRejected) {
  ASSERT_TRUE(repo_.Put(Spec("cnn", "0.0", "impl_a")).ok());
  Status conflict = repo_.Put(Spec("cnn", "0.0", "impl_b"));
  EXPECT_EQ(conflict.code(), StatusCode::kAlreadyExists);
}

TEST_F(LibraryRepoTest, BranchQualifiedVersionsCoexist) {
  // The same numeric version on different branches is a distinct identity
  // (Sec. IV-B's branch domain exists exactly for concurrent updates).
  ASSERT_TRUE(repo_.Put(Spec("cnn", "0.4", "impl_master")).ok());
  ASSERT_TRUE(repo_.Put(Spec("cnn", "dev@0.4", "impl_dev")).ok());
  auto master = repo_.Get("cnn", *version::SemanticVersion::Parse("0.4"));
  auto dev = repo_.Get("cnn", *version::SemanticVersion::Parse("dev@0.4"));
  ASSERT_TRUE(master.ok() && dev.ok());
  EXPECT_EQ((*master)->impl, "impl_master");
  EXPECT_EQ((*dev)->impl, "impl_dev");
}

TEST_F(LibraryRepoTest, VersionsListedInInsertionOrder) {
  ASSERT_TRUE(repo_.Put(Spec("fe", "0.0")).ok());
  ASSERT_TRUE(repo_.Put(Spec("fe", "0.1")).ok());
  ASSERT_TRUE(repo_.Put(Spec("fe", "1.0")).ok());
  auto versions = repo_.Versions("fe");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].ToString(), "0.0");
  EXPECT_EQ(versions[2].ToString(), "1.0");
  EXPECT_TRUE(repo_.Versions("ghost").empty());
}

TEST_F(LibraryRepoTest, GetMissingIsNotFound) {
  EXPECT_TRUE(repo_.Get("ghost", {}).status().IsNotFound());
  ASSERT_TRUE(repo_.Put(Spec("cnn", "0.0")).ok());
  EXPECT_TRUE(
      repo_.Get("cnn", *version::SemanticVersion::Parse("9.9")).status()
          .IsNotFound());
}

TEST_F(LibraryRepoTest, RejectsAnonymousSpec) {
  ComponentVersionSpec anon;
  anon.impl = "x";
  EXPECT_TRUE(repo_.Put(anon).IsInvalidArgument());
}

TEST_F(LibraryRepoTest, MetafilesArePersistedAndDeduplicated) {
  // Successive versions differ only slightly -> chunk dedup keeps physical
  // growth well below logical growth.
  ComponentVersionSpec spec = Spec("fe", "0.0");
  // Pad params so the metafile spans multiple chunks.
  spec.params.Set("notes", Json::Str(std::string(20000, 'n')));
  ASSERT_TRUE(repo_.Put(spec).ok());
  for (int i = 0; i < 5; ++i) {
    spec.version = spec.version.BumpIncrement();
    spec.params.Set("variant", Json::Int(i + 1));
    ASSERT_TRUE(repo_.Put(spec).ok());
  }
  const auto& stats = engine_.stats();
  EXPECT_GT(stats.logical_bytes, stats.physical_bytes);
  EXPECT_GT(clock_.Now(), 0.0);  // storage time was charged
}

}  // namespace
}  // namespace mlcask::pipeline
