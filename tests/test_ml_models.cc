#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/adaboost.h"
#include "ml/logreg.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/train_eval.h"

namespace mlcask::ml {
namespace {

/// Linearly separable-ish 2-D blobs.
void MakeBlobs(size_t n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Pcg32 rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool pos = rng.Bernoulli(0.5);
    double cx = pos ? 1.2 : -1.2;
    x->At(i, 0) = cx + rng.NextGaussian() * 0.7;
    x->At(i, 1) = (pos ? 0.8 : -0.8) + rng.NextGaussian() * 0.7;
    (*y)[i] = pos ? 1.0 : 0.0;
  }
}

/// XOR data — not linearly separable; the MLP must beat logreg here.
void MakeXor(size_t n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Pcg32 rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    double b = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    x->At(i, 0) = a + rng.NextGaussian() * 0.3;
    x->At(i, 1) = b + rng.NextGaussian() * 0.3;
    (*y)[i] = (a > 0) != (b > 0) ? 1.0 : 0.0;
  }
}

TEST(MatrixTest, MultiplyAndTranspose) {
  Matrix a = Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Matrix::FromRowMajor(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.Multiply(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154);
  Matrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at.At(2, 1), 6);
}

TEST(MatrixTest, StandardizeColumns) {
  Matrix m = Matrix::FromRowMajor(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  m.StandardizeColumns();
  auto means = m.ColumnMeans();
  EXPECT_NEAR(means[0], 0.0, 1e-12);
  EXPECT_NEAR(means[1], 0.0, 1e-12);
  auto stds = m.ColumnStds(means);
  EXPECT_NEAR(stds[0], 1.0, 1e-9);
  EXPECT_NEAR(stds[1], 1.0, 1e-9);
}

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(*Accuracy({0.9, 0.2, 0.7, 0.4}, {1, 0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(*Accuracy({0.9, 0.2}, {0, 1}), 0.0);
  EXPECT_FALSE(Accuracy({0.5}, {1, 0}).ok());
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

TEST(MetricsTest, MseAndLogLoss) {
  EXPECT_DOUBLE_EQ(*MeanSquaredError({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(*MeanSquaredError({0, 0}, {3, 4}), 12.5);
  EXPECT_NEAR(*LogLoss({0.9, 0.1}, {1, 0}), -std::log(0.9), 1e-9);
  // Extreme probabilities are clipped, not infinite.
  EXPECT_TRUE(std::isfinite(*LogLoss({1.0, 0.0}, {0, 1})));
}

TEST(MetricsTest, AucPerfectAndRandomAndTies) {
  EXPECT_DOUBLE_EQ(*AreaUnderRoc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(*AreaUnderRoc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  // All-tied scores -> 0.5 via midranks.
  EXPECT_DOUBLE_EQ(*AreaUnderRoc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
  // Degenerate single-class input -> 0.5.
  EXPECT_DOUBLE_EQ(*AreaUnderRoc({0.3, 0.7}, {1, 1}), 0.5);
}

TEST(LogRegTest, LearnsSeparableBlobs) {
  Matrix x;
  std::vector<double> y;
  MakeBlobs(600, 42, &x, &y);
  auto split = SplitData(x, y, 0.3, 1);
  ASSERT_TRUE(split.ok());
  LogisticRegression model;
  SgdConfig cfg;
  cfg.epochs = 30;
  ASSERT_TRUE(model.Fit(split->x_train, split->y_train, cfg).ok());
  auto proba = model.PredictProba(split->x_test);
  ASSERT_TRUE(proba.ok());
  double acc = *Accuracy(*proba, split->y_test);
  EXPECT_GT(acc, 0.85);
}

TEST(LogRegTest, ErrorsOnMisuse) {
  LogisticRegression model;
  Matrix x(3, 2);
  EXPECT_FALSE(model.Fit(x, {1.0, 0.0}, {}).ok());  // size mismatch
  EXPECT_FALSE(model.PredictProba(x).ok());         // unfit
  ASSERT_TRUE(model.Fit(x, {1.0, 0.0, 1.0}, {}).ok());
  Matrix wrong(2, 5);
  EXPECT_FALSE(model.PredictProba(wrong).ok());  // width mismatch
}

TEST(LogRegTest, DeterministicGivenSeed) {
  Matrix x;
  std::vector<double> y;
  MakeBlobs(200, 5, &x, &y);
  LogisticRegression a, b;
  SgdConfig cfg;
  ASSERT_TRUE(a.Fit(x, y, cfg).ok());
  ASSERT_TRUE(b.Fit(x, y, cfg).ok());
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(MlpTest, SolvesXorWhereLogRegCannot) {
  Matrix x;
  std::vector<double> y;
  MakeXor(800, 7, &x, &y);
  auto split = SplitData(x, y, 0.25, 2);
  ASSERT_TRUE(split.ok());

  LogisticRegression linear;
  SgdConfig lin_cfg;
  lin_cfg.epochs = 40;
  ASSERT_TRUE(linear.Fit(split->x_train, split->y_train, lin_cfg).ok());
  double lin_acc =
      *Accuracy(*linear.PredictProba(split->x_test), split->y_test);

  Mlp mlp;
  MlpConfig cfg;
  cfg.hidden_units = 12;
  cfg.sgd.epochs = 80;
  cfg.sgd.learning_rate = 0.3;
  ASSERT_TRUE(mlp.Fit(split->x_train, split->y_train, cfg).ok());
  double mlp_acc = *Accuracy(*mlp.PredictProba(split->x_test), split->y_test);

  EXPECT_LT(lin_acc, 0.7);   // linear model fails on XOR
  EXPECT_GT(mlp_acc, 0.85);  // MLP solves it
}

TEST(MlpTest, LossHistoryDecreases) {
  Matrix x;
  std::vector<double> y;
  MakeBlobs(400, 9, &x, &y);
  Mlp mlp;
  MlpConfig cfg;
  cfg.sgd.epochs = 30;
  ASSERT_TRUE(mlp.Fit(x, y, cfg).ok());
  const auto& hist = mlp.loss_history();
  ASSERT_EQ(hist.size(), 30u);
  EXPECT_LT(hist.back(), hist.front());
  EXPECT_DOUBLE_EQ(hist.back(), mlp.final_loss());
}

TEST(MlpTest, ErrorsOnMisuse) {
  Mlp mlp;
  Matrix x(2, 2);
  EXPECT_FALSE(mlp.PredictProba(x).ok());
  MlpConfig cfg;
  cfg.hidden_units = 0;
  EXPECT_FALSE(mlp.Fit(x, {0.0, 1.0}, cfg).ok());
}

TEST(AdaBoostTest, LearnsAxisAlignedConcept) {
  // Concept: y = 1 iff x0 > 0.3 (single stump suffices).
  Pcg32 rng(11);
  Matrix x(500, 3);
  std::vector<double> y(500);
  for (size_t i = 0; i < 500; ++i) {
    for (size_t j = 0; j < 3; ++j) x.At(i, j) = rng.Uniform(-1, 1);
    y[i] = x.At(i, 0) > 0.3 ? 1.0 : 0.0;
  }
  AdaBoost model;
  ASSERT_TRUE(model.Fit(x, y, {}).ok());
  double acc = *Accuracy(*model.PredictProba(x), y);
  EXPECT_GT(acc, 0.95);
}

TEST(AdaBoostTest, BoostingImprovesOverSingleStump) {
  // Diagonal concept needs several stumps.
  Pcg32 rng(13);
  Matrix x(600, 2);
  std::vector<double> y(600);
  for (size_t i = 0; i < 600; ++i) {
    x.At(i, 0) = rng.Uniform(-1, 1);
    x.At(i, 1) = rng.Uniform(-1, 1);
    y[i] = x.At(i, 0) + x.At(i, 1) > 0 ? 1.0 : 0.0;
  }
  AdaBoost one_round, many_rounds;
  AdaBoostConfig cfg1;
  cfg1.rounds = 1;
  AdaBoostConfig cfg2;
  cfg2.rounds = 40;
  ASSERT_TRUE(one_round.Fit(x, y, cfg1).ok());
  ASSERT_TRUE(many_rounds.Fit(x, y, cfg2).ok());
  double acc1 = *Accuracy(*one_round.PredictProba(x), y);
  double acc2 = *Accuracy(*many_rounds.PredictProba(x), y);
  EXPECT_GT(acc2, acc1 + 0.05);
}

TEST(AdaBoostTest, ErrorsOnMisuse) {
  AdaBoost model;
  Matrix x(2, 1);
  EXPECT_FALSE(model.PredictProba(x).ok());
  AdaBoostConfig cfg;
  cfg.rounds = 0;
  EXPECT_FALSE(model.Fit(x, {0.0, 1.0}, cfg).ok());
}

TEST(SplitDataTest, SizesAndDeterminism) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  auto a = SplitData(x, y, 0.3, 42);
  auto b = SplitData(x, y, 0.3, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->x_train.rows(), 7u);
  EXPECT_EQ(a->x_test.rows(), 3u);
  EXPECT_EQ(a->y_train, b->y_train);
  EXPECT_FALSE(SplitData(x, y, 0.0, 1).ok());
  EXPECT_FALSE(SplitData(x, y, 1.0, 1).ok());
  // Train/test partition covers every label exactly once.
  std::vector<double> all = a->y_train;
  all.insert(all.end(), a->y_test.begin(), a->y_test.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, y);
}

}  // namespace
}  // namespace mlcask::ml
