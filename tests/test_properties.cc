// Property-based tests: randomized inputs, invariant checks. Each property
// is swept over several seeds via parameterized gtest.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "data/schema.h"
#include "merge/compat_lut.h"
#include "merge/merge_op.h"
#include "merge/search_space.h"
#include "merge/search_tree.h"
#include "sim/scenario.h"
#include "storage/blob.h"
#include "storage/chunker.h"
#include "version/semver.h"

namespace mlcask {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 2, 3, 7, 42));

// ---------------------------------------------------------------------------
// Semantic versions: parse(format(v)) == v for random versions.
// ---------------------------------------------------------------------------
TEST_P(SeedSweep, SemverRoundTripsRandomVersions) {
  Pcg32 rng(GetParam());
  const char* branches[] = {"master", "dev", "Jane-dev", "fix-123"};
  for (int i = 0; i < 200; ++i) {
    version::SemanticVersion v;
    v.branch = branches[rng.Below(4)];
    v.schema = rng.Below(100);
    v.increment = rng.Below(100);
    for (bool simplify : {true, false}) {
      auto parsed = version::SemanticVersion::Parse(v.ToString(simplify));
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(*parsed, v);
    }
  }
}

// ---------------------------------------------------------------------------
// Schema hash: invariant under column permutation, sensitive to content.
// ---------------------------------------------------------------------------
TEST_P(SeedSweep, SchemaHashPermutationInvariant) {
  Pcg32 rng(GetParam());
  std::vector<data::FieldSpec> fields;
  size_t n = 3 + rng.Below(10);
  for (size_t i = 0; i < n; ++i) {
    fields.push_back({"col" + std::to_string(i),
                      static_cast<data::ColumnType>(rng.Below(3))});
  }
  data::DataSchema original(fields);
  std::vector<data::FieldSpec> shuffled = fields;
  rng.Shuffle(&shuffled);
  data::DataSchema permuted(shuffled);
  EXPECT_EQ(original.SchemaHash(), permuted.SchemaHash());
  // Renaming any single column changes the hash.
  std::vector<data::FieldSpec> renamed = fields;
  renamed[rng.Below(static_cast<uint32_t>(n))].name = "renamed";
  EXPECT_NE(original.SchemaHash(), data::DataSchema(renamed).SchemaHash());
}

// ---------------------------------------------------------------------------
// Blob storage: write/read identity for random sizes and random edits; the
// store's physical bytes return to zero after releasing everything.
// ---------------------------------------------------------------------------
TEST_P(SeedSweep, BlobRoundTripAndFullRelease) {
  Pcg32 rng(GetParam());
  storage::ChunkStore store;
  storage::GearChunker chunker(64, 512, 4096);
  std::vector<storage::BlobRef> refs;
  std::vector<std::string> payloads;
  for (int i = 0; i < 8; ++i) {
    std::string data(rng.Below(60000) + 1, '\0');
    for (char& c : data) c = static_cast<char>(rng.NextU32() & 0xff);
    auto info = storage::WriteBlob(&store, chunker, data);
    refs.push_back(info.ref);
    payloads.push_back(std::move(data));
  }
  for (size_t i = 0; i < refs.size(); ++i) {
    auto back = storage::ReadBlob(store, refs[i]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, payloads[i]);
  }
  // Dedup never loses data: logical >= physical always.
  EXPECT_GE(store.stats().logical_bytes, store.stats().physical_bytes);
  for (const auto& ref : refs) {
    ASSERT_TRUE(storage::ReleaseBlob(&store, ref).ok());
  }
  EXPECT_EQ(store.stats().physical_bytes, 0u);
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// PC pruning is exact: the pruned tree's candidates equal the brute-force
// filter of the full cartesian product by edge compatibility.
// ---------------------------------------------------------------------------
merge::SearchSpace RandomSpace(uint64_t seed) {
  Pcg32 rng(seed);
  merge::SearchSpace space;
  size_t levels = 3 + rng.Below(3);
  for (size_t l = 0; l < levels; ++l) {
    merge::ComponentSearchSpace c;
    c.component = "comp" + std::to_string(l);
    size_t versions = 1 + rng.Below(4);
    for (size_t v = 0; v < versions; ++v) {
      pipeline::ComponentVersionSpec s;
      s.name = c.component;
      s.version.increment = static_cast<uint32_t>(v);
      s.kind = l == 0 ? pipeline::ComponentKind::kDataset
                      : pipeline::ComponentKind::kPreprocessor;
      s.impl = "impl";
      s.input_schema = l == 0 ? 0 : 10 * l + rng.Below(2);
      s.output_schema = 10 * (l + 1) + rng.Below(2);
      c.versions.push_back(std::move(s));
    }
    space.components.push_back(std::move(c));
  }
  return space;
}

TEST_P(SeedSweep, CompatibilityPruningIsExact) {
  merge::SearchSpace space = RandomSpace(GetParam() * 31);
  merge::PipelineSearchTree tree = merge::PipelineSearchTree::Build(space);
  EXPECT_EQ(tree.NumLeaves(), space.NumCandidates());

  merge::CompatLut lut = merge::CompatLut::Build(space);
  tree.PruneIncompatible(lut);
  auto pruned = tree.Candidates();

  // Brute-force enumeration of the cartesian product.
  std::vector<std::vector<const pipeline::ComponentVersionSpec*>> brute{{}};
  for (const auto& comp : space.components) {
    std::vector<std::vector<const pipeline::ComponentVersionSpec*>> next;
    for (const auto& partial : brute) {
      for (const auto& v : comp.versions) {
        auto chain = partial;
        chain.push_back(&v);
        next.push_back(std::move(chain));
      }
    }
    brute = std::move(next);
  }
  size_t compatible = 0;
  std::set<std::string> brute_keys;
  for (const auto& chain : brute) {
    bool ok = true;
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      if (!chain[i]->CompatibleWith(*chain[i + 1])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++compatible;
      std::string key;
      for (const auto* s : chain) key += s->Key() + "|";
      brute_keys.insert(key);
    }
  }
  EXPECT_EQ(pruned.size(), compatible);
  for (const auto& chain : pruned) {
    std::string key;
    for (const auto* s : chain) key += s->Key() + "|";
    EXPECT_EQ(brute_keys.count(key), 1u) << "pruned tree kept a pipeline the "
                                            "brute-force filter rejects";
  }
}

// ---------------------------------------------------------------------------
// PR is transparent: the MLCask arm and the w/o-PR arm find the same winner
// and the same best score on identical histories (reuse must never change
// results, only cost). Randomize the workload choice per seed.
// ---------------------------------------------------------------------------
TEST_P(SeedSweep, ReuseNeverChangesTheMergeWinner) {
  const auto names = sim::WorkloadNames();
  const std::string workload = names[GetParam() % names.size()];
  auto run_arm = [&](bool pr) {
    auto d = sim::MakeDeployment(workload, 0.05);
    MLCASK_CHECK_OK(d.status());
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(d->get()).status());
    merge::MergeOperation op((*d)->repo.get(), (*d)->libraries.get(),
                             (*d)->registry.get(), (*d)->engine.get(),
                             (*d)->clock.get());
    merge::MergeOptions opts;
    opts.reuse_outputs = pr;
    opts.store_trial_outputs = !pr;
    auto report = op.Merge("master", "dev", opts);
    MLCASK_CHECK_OK(report.status());
    return *std::move(report);
  };
  merge::MergeReport with_pr = run_arm(true);
  merge::MergeReport without_pr = run_arm(false);
  ASSERT_GE(with_pr.best_index, 0);
  ASSERT_GE(without_pr.best_index, 0);
  EXPECT_DOUBLE_EQ(with_pr.best_score, without_pr.best_score);
  // Same winning component versions.
  const auto& a = with_pr.outcomes[static_cast<size_t>(with_pr.best_index)];
  const auto& b =
      without_pr.outcomes[static_cast<size_t>(without_pr.best_index)];
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (size_t i = 0; i < a.chain.size(); ++i) {
    EXPECT_EQ(a.chain[i]->Key(), b.chain[i]->Key());
  }
  // And PR does strictly less work.
  EXPECT_LT(with_pr.component_executions, without_pr.component_executions);
}

// ---------------------------------------------------------------------------
// Executor determinism: two fresh executors produce identical scores for the
// same pipeline and seed; a cached re-run reproduces the original score.
// ---------------------------------------------------------------------------
TEST_P(SeedSweep, ExecutorIsDeterministicAndCacheTransparent) {
  const auto names = sim::WorkloadNames();
  const std::string workload = names[(GetParam() + 1) % names.size()];
  auto d1 = sim::MakeDeployment(workload, 0.05);
  auto d2 = sim::MakeDeployment(workload, 0.05);
  MLCASK_CHECK_OK(d1.status());
  MLCASK_CHECK_OK(d2.status());
  pipeline::ExecutorOptions opts;
  opts.seed = GetParam();
  auto r1 = (*d1)->executor->Run((*d1)->workload.initial, opts);
  auto r2 = (*d2)->executor->Run((*d2)->workload.initial, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->score, r2->score);
  // Cached re-run on the first executor returns the same score for free.
  auto r3 = (*d1)->executor->Run((*d1)->workload.initial, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ(r3->score, r1->score);
  EXPECT_DOUBLE_EQ(r3->time.Total(), 0.0);
}

}  // namespace
}  // namespace mlcask
