// The socket transport stack: endpoint grammar, frame-codec robustness
// (truncated / oversized / corrupt / version-skewed frames surface error
// statuses — never a hang, crash, or torn TransportStats), and the
// SocketTransport/SocketTransportServer pair end to end over Unix-domain
// and TCP sockets, including multiplexed async overlap, deadline, peer-gone
// and connect-refused statuses.

#include "storage/socket_transport.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/endpoint.h"
#include "storage/forkbase_engine.h"
#include "storage/frame.h"
#include "storage/remote_engine.h"
#include "storage/wire_codec.h"

namespace mlcask::storage {
namespace {

std::string TempSocketPath(const char* tag) {
  return "/tmp/mlcask-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

// ------------------------------------------------------------- endpoint ---

TEST(EndpointTest, ParsesTheThreeSchemes) {
  auto loop = Endpoint::Parse("loopback:");
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop->kind, Endpoint::Kind::kLoopback);

  auto unix_ep = Endpoint::Parse("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_ep.ok());
  EXPECT_EQ(unix_ep->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep->path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep->ToString(), "unix:/tmp/x.sock");

  auto tcp = Endpoint::Parse("tcp:127.0.0.1:7070");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 7070);
  EXPECT_EQ(tcp->ToString(), "tcp:127.0.0.1:7070");

  auto anyport = Endpoint::Parse("tcp::0");
  ASSERT_TRUE(anyport.ok());
  EXPECT_TRUE(anyport->host.empty());
  EXPECT_EQ(anyport->port, 0);
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  EXPECT_TRUE(Endpoint::Parse("").status().IsInvalidArgument());
  EXPECT_TRUE(Endpoint::Parse("/bare/path").status().IsInvalidArgument());
  EXPECT_TRUE(Endpoint::Parse("host:1234").status().IsInvalidArgument());
  EXPECT_TRUE(Endpoint::Parse("unix:").status().IsInvalidArgument());
  EXPECT_TRUE(Endpoint::Parse("tcp:hostonly").status().IsInvalidArgument());
  EXPECT_TRUE(Endpoint::Parse("tcp:h:99999").status().IsInvalidArgument());
  EXPECT_TRUE(Endpoint::Parse("tcp:h:12x").status().IsInvalidArgument());
  EXPECT_TRUE(
      Endpoint::Parse("unix:" + std::string(200, 'p')).status()
          .IsInvalidArgument());
}

// ----------------------------------------------------------- frame codec ---

TEST(FrameCodecTest, RoundTripsFramesIncrementally) {
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 42, "hello");
  AppendFrame(&wire, FrameType::kData, 43, std::string("\x00\xff bin", 6));
  AppendFrame(&wire, FrameType::kError, 44,
              EncodeErrorPayload(Status::Unavailable("gone")));

  FrameDecoder decoder;
  // Feed byte by byte: a frame only surfaces once complete, and partial
  // prefixes are "need more", never an error.
  std::vector<Frame> frames;
  for (char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    Frame frame;
    auto next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (*next) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].id, 42u);
  EXPECT_EQ(frames[0].payload, "hello");
  EXPECT_EQ(frames[1].payload, std::string("\x00\xff bin", 6));
  EXPECT_EQ(frames[2].type, FrameType::kError);
  Status decoded = DecodeErrorPayload(frames[2].payload);
  EXPECT_TRUE(decoded.IsUnavailable());
  EXPECT_EQ(decoded.message(), "gone");
  EXPECT_TRUE(decoder.Finish().ok());
}

TEST(FrameCodecTest, TruncatedStreamIsAnErrorAtEofNotAHang) {
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 7, "full payload");
  FrameDecoder decoder;
  decoder.Feed(std::string_view(wire).substr(0, wire.size() - 3));
  Frame frame;
  auto next = decoder.Next(&frame);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);  // incomplete: need more, no frame invented
  Status eof = decoder.Finish();
  EXPECT_EQ(eof.code(), StatusCode::kCorruption);
}

TEST(FrameCodecTest, OversizedFrameIsCorruptionBeforeAllocation) {
  FrameDecoder decoder(/*max_payload=*/1024);
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 1, std::string(2048, 'x'));
  decoder.Feed(wire);
  Frame frame;
  auto next = decoder.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
  // Sticky: the stream stays dead.
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(FrameCodecTest, CorruptTypeByteIsCorruption) {
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 9, "x");
  wire[1] = 0x7f;  // unknown frame type
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  auto next = decoder.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodecTest, VersionMismatchIsUnimplementedWithRecoverableId) {
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 77, "future-format", /*version=*/9);
  AppendFrame(&wire, FrameType::kData, 78, "ok");
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  auto next = decoder.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kUnimplemented);
  // The frozen header layout keeps the correlation id readable, so a server
  // can answer exactly the mismatched request...
  EXPECT_EQ(frame.id, 77u);
  // ...and the stream survives: the NEXT (current-version) frame decodes.
  auto after = decoder.Next(&frame);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(*after);
  EXPECT_EQ(frame.id, 78u);
  EXPECT_EQ(frame.payload, "ok");
}

TEST(FrameCodecTest, ErrorPayloadRejectsGarbage) {
  EXPECT_EQ(DecodeErrorPayload("no-colon").code(), StatusCode::kCorruption);
  EXPECT_EQ(DecodeErrorPayload("12a:msg").code(), StatusCode::kCorruption);
  EXPECT_EQ(DecodeErrorPayload("0:ok?").code(), StatusCode::kCorruption);
  EXPECT_EQ(DecodeErrorPayload("9999:big").code(), StatusCode::kCorruption);
}

// ------------------------------------------------------------ end to end ---

class SocketRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SocketRoundTripTest, CallAndAsyncCallRoundTrip) {
  const std::string scheme = GetParam();
  const std::string path = TempSocketPath("rt");
  const std::string spec =
      scheme == "unix" ? "unix:" + path : std::string("tcp:127.0.0.1:0");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)
                  ->Serve([](std::string_view request) {
                    return "echo:" + std::string(request);
                  })
                  .ok());

  auto transport = SocketTransport::Connect((*server)->endpoint());
  ASSERT_TRUE(transport.ok()) << transport.status();

  auto response = (*transport)->Call("ping");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(*response, "echo:ping");

  // Multiplexed: many calls in flight on ONE connection, answered by id.
  std::vector<TransportFuture> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back((*transport)->AsyncCall("m" + std::to_string(i)));
  }
  for (int i = 0; i < 16; ++i) {
    auto got = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "echo:m" + std::to_string(i));
  }

  // CallMany issues all before collecting any; order is preserved.
  auto batch = (*transport)->CallMany({"a", "b", "c"});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(*batch[0], "echo:a");
  EXPECT_EQ(*batch[1], "echo:b");
  EXPECT_EQ(*batch[2], "echo:c");

  TransportStats stats = (*transport)->stats();
  EXPECT_EQ(stats.calls, 20u);
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_GT(stats.request_bytes, 0u);
  EXPECT_GT(stats.response_bytes, 0u);
  EXPECT_EQ((*server)->connections_accepted(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SocketRoundTripTest,
                         ::testing::Values("unix", "tcp"));

TEST(SocketTransportTest, AsyncCallsOverlapOnTheWire) {
  // The server blocks the FIRST request until the SECOND arrives. A
  // transport that serialized round trips would deadlock here; the
  // multiplexed one finishes both. (Two connections would also pass, but
  // the transport holds exactly one — connections_accepted proves it.)
  const std::string spec = "unix:" + TempSocketPath("overlap");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  ASSERT_TRUE((*server)
                  ->Serve([&](std::string_view request) {
                    std::unique_lock<std::mutex> lock(mu);
                    arrived += 1;
                    cv.notify_all();
                    if (request == "first") {
                      cv.wait_for(lock, std::chrono::seconds(10),
                                  [&] { return arrived >= 2; });
                    }
                    return std::string(request);
                  })
                  .ok());
  // Two sessions: requests on one connection are handled in arrival order,
  // so the unblocking "second" request must travel on its own connection —
  // what matters here is that the CLIENT API never blocks on issue.
  auto t1 = SocketTransport::Connect(spec);
  auto t2 = SocketTransport::Connect(spec);
  ASSERT_TRUE(t1.ok() && t2.ok());
  TransportFuture first = (*t1)->AsyncCall("first");
  // Issue returned while "first" is still parked in the handler: the async
  // call did not serialize issue-to-response.
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return arrived >= 1; }));
  }
  TransportFuture second = (*t2)->AsyncCall("second");
  auto second_result = second.get();
  ASSERT_TRUE(second_result.ok());
  auto first_result = first.get();
  ASSERT_TRUE(first_result.ok());
  EXPECT_EQ(*first_result, "first");
  EXPECT_EQ(*second_result, "second");
}

TEST(SocketTransportTest, OversizedRequestFailsLocallyAndSessionSurvives) {
  // With chunking disabled the whole request must fit one frame. A request
  // above max_frame_payload has to be refused at the CLIENT with a typed
  // status — framed and sent, the peer's decoder would see corruption and
  // the whole multiplexed session (every other in-flight call) would die.
  const std::string spec = "unix:" + TempSocketPath("oversize");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)
                  ->Serve([](std::string_view request) {
                    return "echo:" + std::string(request);
                  })
                  .ok());

  SocketTransport::Options options;
  options.max_frame_payload = 64 * 1024;
  options.chunk_threshold = 0;  // monolithic frames only
  auto transport = SocketTransport::Connect((*server)->endpoint(), options);
  ASSERT_TRUE(transport.ok()) << transport.status();

  auto too_big = (*transport)->Call(std::string(128 * 1024, 'x'));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);

  // Only the offending call failed: the session still answers.
  auto after = (*transport)->Call("still-alive");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after, "echo:still-alive");
  EXPECT_EQ((*transport)->stats().transport_errors, 1u);
}

TEST(SocketTransportTest, ConnectRefusedIsUnavailable) {
  auto missing = SocketTransport::Connect(
      "unix:/tmp/mlcask-definitely-not-bound.sock");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsUnavailable());
}

TEST(SocketTransportTest, LoopbackSpecHasNoWire) {
  auto refused = SocketTransport::Connect("loopback:");
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsInvalidArgument());
}

TEST(SocketTransportTest, PeerGoneFailsEveryPendingCallInsteadOfHanging) {
  const std::string spec = "unix:" + TempSocketPath("gone");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  std::atomic<bool> die{false};
  std::mutex hmu;
  std::condition_variable hcv;
  bool release_handler = false;
  ASSERT_TRUE((*server)
                  ->Serve([&](std::string_view) {
                    die.store(true);
                    // Never answer until the test releases us (after the
                    // pending call has already failed via peer-gone).
                    std::unique_lock<std::mutex> lock(hmu);
                    hcv.wait_for(lock, std::chrono::seconds(30),
                                 [&] { return release_handler; });
                    return std::string();
                  })
                  .ok());
  SocketTransport::Options options;
  options.call_timeout_ms = 0;  // the failure must come from peer-gone
  auto transport = SocketTransport::Connect(spec, options);
  ASSERT_TRUE(transport.ok());
  TransportFuture pending = (*transport)->AsyncCall("doomed");
  while (!die.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Tear the connection down under the pending call. gtest would hang here
  // if the future never resolved — resolving with Unavailable IS the test.
  // (Shutdown shuts the fds down first, which is what resolves the call;
  // its thread-join then waits for the handler we release below.)
  std::thread shutdown([&] { (*server)->Shutdown(); });
  auto result = pending.get();
  {
    std::lock_guard<std::mutex> lock(hmu);
    release_handler = true;
  }
  hcv.notify_all();
  shutdown.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status();
  // Follow-up calls fail fast with the same session-broken status.
  auto after = (*transport)->Call("still there?");
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsUnavailable());
  TransportStats stats = (*transport)->stats();
  EXPECT_EQ(stats.calls, 0u);
  EXPECT_GE(stats.transport_errors, 2u);
}

TEST(DeferredTest, DeadlineBoundsGetSoAWedgedPeerCannotHangAFanout) {
  // A connected-but-stalled peer never resolves the future and never drops
  // the connection: with a timeout, Get() must come back with
  // DeadlineExceeded instead of blocking the fan-out forever.
  std::promise<StatusOr<std::string>> never_resolved;
  Deferred<std::string> deferred(
      never_resolved.get_future(),
      [](StatusOr<std::string> raw) { return raw; },
      /*timeout_ms=*/50);
  auto result = deferred.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
}

TEST(SocketTransportTest, SlowPeerSurfacesDeadlineExceeded) {
  const std::string spec = "unix:" + TempSocketPath("slow");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE((*server)
                  ->Serve([&](std::string_view request) {
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait_for(lock, std::chrono::seconds(10),
                                [&] { return release; });
                    return std::string(request);
                  })
                  .ok());
  SocketTransport::Options options;
  options.call_timeout_ms = 50;
  auto transport = SocketTransport::Connect(spec, options);
  ASSERT_TRUE(transport.ok());
  auto result = (*transport)->Call("too slow");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

/// Drives the server with a RAW socket speaking a future wire version: the
/// reply must be a correlated ERROR frame carrying Unimplemented — the
/// version byte's whole purpose (a stale/newer peer gets a clear status,
/// never a silent mis-parse).
TEST(SocketTransportTest, ServerAnswersVersionSkewWithUnimplemented) {
  const std::string path = TempSocketPath("skew");
  auto server = SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE(
      (*server)->Serve([](std::string_view) { return "unreachable"; }).ok());

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 1234, "from-the-future",
              /*version=*/9);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  FrameDecoder decoder;
  Frame frame;
  bool got_frame = false;
  char buf[4096];
  for (int i = 0; i < 100 && !got_frame; ++i) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server closed without answering";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    auto next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok()) << next.status();
    got_frame = *next;
  }
  ASSERT_TRUE(got_frame);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.id, 1234u);  // correlated to the mismatched request
  Status status = DecodeErrorPayload(frame.payload);
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  ::close(fd);
}

/// A garbled stream (bad type byte) has no correlatable request: the server
/// closes the connection, and the client surfaces that as Unavailable on
/// every pending call — never a hang, and stats count the failures.
TEST(SocketTransportTest, GarbledStreamClosesConnectionWithStatuses) {
  const std::string path = TempSocketPath("garbled");
  auto server = SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Serve([](std::string_view) { return "x"; }).ok());

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string wire;
  AppendFrame(&wire, FrameType::kData, 5, "ok-frame");
  wire[1] = 0x6e;  // corrupt the type byte
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  // The server must close on us (read returns 0), not crash or hang.
  char buf[64];
  ssize_t n = ::read(fd, buf, sizeof(buf));
  EXPECT_EQ(n, 0);
  ::close(fd);

  // The server keeps serving OTHER (honest) connections.
  auto transport = SocketTransport::Connect("unix:" + path);
  ASSERT_TRUE(transport.ok());
  auto response = (*transport)->Call("after-garbage");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(*response, "x");
}

// ------------------------------------------------ chunk streaming (v2) ---

TEST(SocketTransportTest, ChunkStreamedRoundTripBoundsTheReceiveBuffer) {
  const std::string spec = "unix:" + TempSocketPath("chunked");
  SocketTransportServer::Options server_options;
  server_options.chunk_threshold = 32 * 1024;
  auto server = SocketTransportServer::Bind(spec, server_options);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)
                  ->Serve([](std::string_view request) {
                    return std::string(request);  // echo: streams back too
                  })
                  .ok());

  SocketTransport::Options client_options;
  client_options.chunk_threshold = 32 * 1024;
  auto transport = SocketTransport::Connect(spec, client_options);
  ASSERT_TRUE(transport.ok()) << transport.status();

  // Patterned (not constant) payload so the content-defined chunker cuts
  // realistically.
  std::string payload(4 * 1024 * 1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 2654435761u) >> 11);
  }
  auto echoed = (*transport)->Call(payload);
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_EQ(*echoed, payload);

  TransportStats stats = (*transport)->stats();
  EXPECT_GT(stats.chunk_frames_sent, 1u);
  EXPECT_GT(stats.chunk_frames_received, 1u);
  // THE acceptance bound: the client's receive buffer peaked at O(chunk),
  // not O(value) — a monolithic 4 MiB response would show ~payload here.
  EXPECT_LT(stats.peak_decoder_buffer_bytes * 4, payload.size());

  // The same value sent again is pure dedup on the receiving shard.
  ChunkStoreStats before = (*server)->wire_chunk_stats();
  ASSERT_TRUE((*transport)->Call(payload).ok());
  ChunkStoreStats after = (*server)->wire_chunk_stats();
  EXPECT_GT(after.dedup_hits, before.dedup_hits);
  EXPECT_EQ(after.physical_bytes, before.physical_bytes);
}

TEST(SocketTransportTest, ChunkEndWithoutStreamClosesTheConnection) {
  const std::string path = TempSocketPath("chunk-orphan");
  auto server = SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Serve([](std::string_view) { return "x"; }).ok());

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string wire;
  AppendFrame(&wire, FrameType::kChunkEnd, 9,
              wire::EncodeChunkEnd(0, 0, Hash256{}));
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  char buf[64];
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);  // closed, not hung
  ::close(fd);

  // Honest connections still work afterwards.
  auto transport = SocketTransport::Connect("unix:" + path);
  ASSERT_TRUE(transport.ok());
  auto response = (*transport)->Call("after");
  ASSERT_TRUE(response.ok()) << response.status();
}

TEST(SocketTransportTest, GarbledChunkManifestClosesTheConnection) {
  const std::string path = TempSocketPath("chunk-garble");
  auto server = SocketTransportServer::Bind("unix:" + path);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Serve([](std::string_view) { return "x"; }).ok());

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Two chunk frames, then an END whose manifest does not match: integrity
  // check fails, the stream cannot be trusted, the connection dies.
  std::string wire;
  AppendFrame(&wire, FrameType::kChunk, 11, "part-one");
  AppendFrame(&wire, FrameType::kChunk, 11, "part-two");
  Hash256 wrong;
  wrong.bytes.fill(0xEE);
  AppendFrame(&wire, FrameType::kChunkEnd, 11,
              wire::EncodeChunkEnd(16, 2, wrong));
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  char buf[64];
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);
  ::close(fd);

  // A truncated stream (chunks, then the peer vanishes) must also leave
  // the server serving; the half-built stream is garbage-collected with
  // the connection.
  int fd2 = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string partial;
  AppendFrame(&partial, FrameType::kChunk, 12, "never-finished");
  ASSERT_EQ(::send(fd2, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  ::close(fd2);

  auto transport = SocketTransport::Connect("unix:" + path);
  ASSERT_TRUE(transport.ok());
  auto response = (*transport)->Call("after");
  ASSERT_TRUE(response.ok()) << response.status();
}

// ------------------------------------------------- version-skew matrix ---

TEST(SocketTransportTest, AutoCodecNegotiatesDownAgainstAnOldServer) {
  // An "old" server: max wire version 1 (JSON era). A default client's
  // binary hello bounces with a correlated Unimplemented ERROR frame; the
  // kAuto proxy drops the session to JSON and everything works.
  const std::string spec = "unix:" + TempSocketPath("negotiate");
  SocketTransportServer::Options old_options;
  old_options.max_wire_version = kWireVersionJson;
  auto server = SocketTransportServer::Bind(spec, old_options);
  ASSERT_TRUE(server.ok()) << server.status();
  StorageEngineService service(std::make_unique<ForkBaseEngine>());
  ASSERT_TRUE((*server)
                  ->Serve([&service](std::string_view request) {
                    return service.Handle(request);
                  })
                  .ok());

  auto transport = SocketTransport::Connect(spec);
  ASSERT_TRUE(transport.ok()) << transport.status();
  RemoteStorageEngine remote(*std::move(transport), WireCodec::kAuto);
  EXPECT_EQ(remote.codec(), WireCodec::kJson);
  EXPECT_EQ(remote.transport()->wire_version(), kWireVersionJson);
  EXPECT_EQ(remote.Name(), "remote(forkbase)");
  auto put = remote.Put("k", "negotiated-value");
  ASSERT_TRUE(put.ok()) << put.status();
  auto get = remote.Get("k");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(*get, "negotiated-value");
}

TEST(SocketTransportTest, ForcedBinaryAgainstAnOldServerFailsTyped) {
  const std::string spec = "unix:" + TempSocketPath("forced-binary");
  SocketTransportServer::Options old_options;
  old_options.max_wire_version = kWireVersionJson;
  auto server = SocketTransportServer::Bind(spec, old_options);
  ASSERT_TRUE(server.ok()) << server.status();
  StorageEngineService service(std::make_unique<ForkBaseEngine>());
  ASSERT_TRUE((*server)
                  ->Serve([&service](std::string_view request) {
                    return service.Handle(request);
                  })
                  .ok());

  auto transport = SocketTransport::Connect(spec);
  ASSERT_TRUE(transport.ok()) << transport.status();
  RemoteStorageEngine remote(*std::move(transport), WireCodec::kBinary);
  EXPECT_EQ(remote.codec(), WireCodec::kBinary);  // no silent downgrade
  auto put = remote.Put("k", "v");
  ASSERT_FALSE(put.ok());  // typed failure, never a hang or corruption
  EXPECT_EQ(put.status().code(), StatusCode::kUnimplemented);
}

TEST(SocketTransportTest, JsonClientAgainstACurrentServerStillWorks) {
  // One version back stays supported: a JSON-era client (v1 frames, JSON
  // codec) against a current server.
  const std::string spec = "unix:" + TempSocketPath("old-client");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  StorageEngineService service(std::make_unique<ForkBaseEngine>());
  ASSERT_TRUE((*server)
                  ->Serve([&service](std::string_view request) {
                    return service.Handle(request);
                  })
                  .ok());

  SocketTransport::Options old_client;
  old_client.wire_version = kWireVersionJson;
  auto transport = SocketTransport::Connect(spec, old_client);
  ASSERT_TRUE(transport.ok()) << transport.status();
  RemoteStorageEngine remote(*std::move(transport), WireCodec::kJson);
  EXPECT_EQ(remote.Name(), "remote(forkbase)");
  auto put = remote.Put("legacy", "payload");
  ASSERT_TRUE(put.ok()) << put.status();
  auto get = remote.Get("legacy");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(*get, "payload");
}

// ------------------------------------------------------ server lifecycle ---

TEST(SocketTransportTest, ServerLifecycleStatesAreOneWay) {
  const std::string spec = "unix:" + TempSocketPath("lifecycle");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_EQ((*server)->state(), ServerState::kInitial);

  ASSERT_TRUE((*server)->Serve([](std::string_view) { return ""; }).ok());
  EXPECT_EQ((*server)->state(), ServerState::kStarted);

  Status again = (*server)->Serve([](std::string_view) { return ""; });
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.code() == StatusCode::kFailedPrecondition);

  (*server)->Shutdown();
  EXPECT_EQ((*server)->state(), ServerState::kStopped);
  (*server)->Shutdown();  // idempotent
  EXPECT_EQ((*server)->state(), ServerState::kStopped);

  Status after = (*server)->Serve([](std::string_view) { return ""; });
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.code() == StatusCode::kFailedPrecondition);

  // Bind-then-destroy (never served) goes kInitial -> kStopped cleanly.
  auto idle = SocketTransportServer::Bind(
      "unix:" + TempSocketPath("lifecycle-idle"));
  ASSERT_TRUE(idle.ok());
  (*idle)->Shutdown();
  EXPECT_EQ((*idle)->state(), ServerState::kStopped);
}

TEST(SocketTransportTest, StatsStayConsistentUnderConcurrentCalls) {
  // Same triple-consistency contract as LoopbackTransport, now with the
  // demux thread doing the counting: fixed-size requests/responses make a
  // torn snapshot detectable arithmetically.
  const std::string spec = "unix:" + TempSocketPath("stats");
  auto server = SocketTransportServer::Bind(spec);
  ASSERT_TRUE(server.ok()) << server.status();
  const std::string response(32, 'r');
  ASSERT_TRUE(
      (*server)->Serve([&](std::string_view) { return response; }).ok());
  auto transport = SocketTransport::Connect(spec);
  ASSERT_TRUE(transport.ok());

  const std::string request(24, 'q');
  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      TransportStats s = (*transport)->stats();
      if (s.request_bytes != s.calls * request.size() ||
          s.response_bytes != s.calls * response.size()) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE((*transport)->Call(request).ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  TransportStats stats = (*transport)->stats();
  EXPECT_EQ(stats.calls, 1000u);
  EXPECT_EQ(stats.request_bytes, stats.calls * request.size());
  EXPECT_EQ(stats.response_bytes, stats.calls * response.size());
}

}  // namespace
}  // namespace mlcask::storage
