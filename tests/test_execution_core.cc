// Tests for the ExecutionCore (thread pool + virtual-time schedulers) and
// the ArtifactCache's in-flight guards.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "pipeline/artifact_cache.h"
#include "pipeline/execution_core.h"

namespace mlcask::pipeline {
namespace {

TEST(ExecutionCoreTest, RunWorkersRunsBodyPerWorker) {
  for (size_t workers : {size_t{1}, size_t{4}}) {
    ExecutionCore core(workers);
    std::atomic<size_t> calls{0};
    auto makespan = core.RunWorkers([&](ExecutionCore::WorkerContext& ctx) {
      calls.fetch_add(1);
      ctx.clock->Advance(2.0);
      return Status::Ok();
    });
    ASSERT_TRUE(makespan.ok());
    EXPECT_EQ(calls.load(), workers);
    // Every worker advanced its own clock by 2s; the makespan is the max,
    // not the sum.
    EXPECT_DOUBLE_EQ(*makespan, 2.0);
  }
}

TEST(ExecutionCoreTest, RunWorkersPropagatesError) {
  ExecutionCore core(4);
  auto makespan = core.RunWorkers([&](ExecutionCore::WorkerContext& ctx) {
    return ctx.worker_index == 2 ? Status::Internal("boom") : Status::Ok();
  });
  EXPECT_FALSE(makespan.ok());
}

TEST(ExecutionCoreTest, GraphMakespanModelsParallelMachine) {
  // Diamond: 0 -> {1, 2} -> 3, each task 1 virtual second. With two
  // workers 1 and 2 overlap: makespan 3; serially it is 4.
  std::vector<std::vector<size_t>> deps = {{}, {0}, {0}, {1, 2}};
  auto run = [](size_t, SimClock* clock) {
    clock->Advance(1.0);
    return Status::Ok();
  };
  ExecutionCore serial(1);
  auto serial_span = serial.RunGraph(4, deps, run);
  ASSERT_TRUE(serial_span.ok());
  EXPECT_DOUBLE_EQ(*serial_span, 4.0);

  ExecutionCore parallel(2);
  auto parallel_span = parallel.RunGraph(4, deps, run);
  ASSERT_TRUE(parallel_span.ok());
  EXPECT_DOUBLE_EQ(*parallel_span, 3.0);
}

TEST(ExecutionCoreTest, GraphRespectsDependencyOrder) {
  // A chain: each task must observe its predecessor's side effect.
  constexpr size_t kN = 32;
  std::vector<std::vector<size_t>> deps(kN);
  for (size_t i = 1; i < kN; ++i) deps[i] = {i - 1};
  std::vector<int> done(kN, 0);
  std::atomic<bool> violated{false};
  ExecutionCore core(4);
  auto span = core.RunGraph(kN, deps, [&](size_t i, SimClock*) {
    if (i > 0 && done[i - 1] != 1) violated = true;
    done[i] = 1;
    return Status::Ok();
  });
  ASSERT_TRUE(span.ok());
  EXPECT_FALSE(violated.load());
}

TEST(ExecutionCoreTest, GraphFinishTimesReported) {
  std::vector<std::vector<size_t>> deps = {{}, {0}};
  std::vector<double> finish;
  ExecutionCore core(2);
  auto span = core.RunGraph(
      2, deps,
      [](size_t i, SimClock* clock) {
        clock->Advance(i == 0 ? 1.5 : 2.0);
        return Status::Ok();
      },
      /*start_time_s=*/10.0, &finish);
  ASSERT_TRUE(span.ok());
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_DOUBLE_EQ(finish[0], 11.5);
  EXPECT_DOUBLE_EQ(finish[1], 13.5);
  EXPECT_DOUBLE_EQ(*span, 13.5);
}

TEST(ExecutionCoreTest, GraphWithUnreachableCycleErrorsInsteadOfHanging) {
  // Task 0 is a valid source, but 1 and 2 depend on each other: the graph
  // must error out after 0 completes, not sleep forever.
  std::vector<std::vector<size_t>> deps = {{}, {2}, {1}};
  for (size_t workers : {size_t{1}, size_t{2}}) {
    ExecutionCore core(workers);
    auto span = core.RunGraph(3, deps, [](size_t, SimClock*) {
      return Status::Ok();
    });
    EXPECT_FALSE(span.ok()) << "workers=" << workers;
  }
}

TEST(ExecutionCoreTest, GraphErrorCancelsRemainingTasks) {
  constexpr size_t kN = 16;
  std::vector<std::vector<size_t>> deps(kN);
  for (size_t i = 1; i < kN; ++i) deps[i] = {i - 1};
  std::atomic<size_t> ran{0};
  ExecutionCore core(2);
  auto span = core.RunGraph(kN, deps, [&](size_t i, SimClock*) {
    ran.fetch_add(1);
    return i == 3 ? Status::Internal("boom") : Status::Ok();
  });
  EXPECT_FALSE(span.ok());
  EXPECT_LT(ran.load(), kN);
}

TEST(ExecutionCoreTest, VirtualWidthIsIndependentOfThreadCount) {
  // Diamond: 0 -> {1, 2} -> 3, each task 1 virtual second. The reported
  // makespan follows the requested VIRTUAL width, not the pool's real
  // thread count — a wide pool models a serial machine faithfully and a
  // narrow pool models a wide machine faithfully.
  std::vector<std::vector<size_t>> deps = {{}, {0}, {0}, {1, 2}};
  auto run = [](size_t, SimClock* clock) {
    clock->Advance(1.0);
    return Status::Ok();
  };
  ExecutionCore wide_pool(4);
  auto serial_span = wide_pool.RunGraph(4, deps, run, 0, nullptr,
                                        /*virtual_workers=*/1);
  ASSERT_TRUE(serial_span.ok());
  EXPECT_DOUBLE_EQ(*serial_span, 4.0);

  ExecutionCore narrow_pool(1);
  auto parallel_span = narrow_pool.RunGraph(4, deps, run, 0, nullptr,
                                            /*virtual_workers=*/2);
  ASSERT_TRUE(parallel_span.ok());
  EXPECT_DOUBLE_EQ(*parallel_span, 3.0);
}

TEST(ExecutionCoreTest, NestedRunGraphFromPoolWorkerDoesNotDeadlock) {
  // Regression for the shared-pool deadlock: every pool thread is occupied
  // by an outer body, and each outer body submits a nested graph to the
  // SAME pool. Without the submitting thread helping (batch-local work
  // stealing) the nested batches would sit in the queue forever. The
  // virtual makespans of the nested graphs must come out exactly as if
  // each had the pool to itself.
  ExecutionCore core(2);
  std::vector<std::vector<size_t>> deps = {{}, {0}, {0}, {1, 2}};
  auto run = [](size_t, SimClock* clock) {
    clock->Advance(1.0);
    return Status::Ok();
  };
  std::atomic<size_t> nested_ok{0};
  auto outer = [&](ExecutionCore::WorkerContext&) -> Status {
    auto span =
        core.RunGraph(4, deps, run, 0, nullptr, /*virtual_workers=*/2);
    MLCASK_RETURN_IF_ERROR(span.status());
    if (*span == 3.0) nested_ok.fetch_add(1);
    return Status::Ok();
  };
  auto makespan = core.RunWorkers(outer, 0, /*num_bodies=*/2);
  ASSERT_TRUE(makespan.ok());
  EXPECT_EQ(nested_ok.load(), 2u);
  // The nested submitters must have helped: at least one nested body was
  // claimed by its own submitting thread rather than a pool thread.
  EXPECT_GT(core.stats().tasks_stolen, 0u);
}

TEST(ExecutionCoreTest, PoolStatsCountThreadsBatchesAndTasks) {
  ExecutionCore core(3);
  EXPECT_EQ(core.stats().threads_spawned, 3u);
  EXPECT_EQ(core.stats().batches_run, 0u);
  auto span = core.RunWorkers(
      [](ExecutionCore::WorkerContext&) { return Status::Ok(); }, 0,
      /*num_bodies=*/5);
  ASSERT_TRUE(span.ok());
  ExecutionCore::PoolStats stats = core.stats();
  EXPECT_EQ(stats.batches_run, 1u);
  EXPECT_EQ(stats.tasks_run, 5u);
  // An inline (threadless) core spawns nothing and steals nothing.
  ExecutionCore inline_core(1);
  ASSERT_TRUE(inline_core
                  .RunWorkers(
                      [](ExecutionCore::WorkerContext&) {
                        return Status::Ok();
                      },
                      0, /*num_bodies=*/2)
                  .ok());
  EXPECT_EQ(inline_core.stats().threads_spawned, 0u);
  EXPECT_EQ(inline_core.stats().tasks_run, 2u);
  EXPECT_EQ(inline_core.stats().tasks_stolen, 0u);
}

TEST(ExecutionCoreTest, InstanceCounterTracksConstruction) {
  const uint64_t before = ExecutionCore::instances_created();
  {
    ExecutionCore a(1);
    ExecutionCore b(2);
  }
  EXPECT_EQ(ExecutionCore::instances_created() - before, 2u);
}

TEST(ArtifactCacheTest, FindMissesUntilInsert) {
  ArtifactCache cache;
  Hash256 key;
  key.bytes[0] = 1;
  EXPECT_EQ(cache.Find(key), nullptr);
  ArtifactEntry entry;
  entry.score = 0.5;
  cache.Insert(key, std::move(entry));
  auto found = cache.Find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->score, 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ArtifactCacheTest, InFlightGuardComputesOnce) {
  // Many threads acquire the same key; exactly one gets a lease, the rest
  // block until it fulfills and then reuse the entry.
  ArtifactCache cache;
  Hash256 key;
  key.bytes[0] = 7;
  std::atomic<size_t> computed{0};
  std::atomic<size_t> reused{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      ArtifactCache::Acquired acquired = cache.Acquire(key);
      if (acquired.lease != nullptr) {
        computed.fetch_add(1);
        // Hold the lease long enough that the others really wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ArtifactEntry entry;
        entry.score = 0.75;
        cache.Fulfill(acquired.lease.get(), std::move(entry));
      } else {
        EXPECT_DOUBLE_EQ(acquired.entry->score, 0.75);
        reused.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1u);
  EXPECT_EQ(reused.load(), 7u);
}

TEST(ArtifactCacheTest, AbandonedLeaseHandsOverToWaiter) {
  ArtifactCache cache;
  Hash256 key;
  key.bytes[0] = 9;
  std::atomic<size_t> leases_granted{0};
  {
    ArtifactCache::Acquired first = cache.Acquire(key);
    ASSERT_NE(first.lease, nullptr);
    std::thread waiter([&] {
      ArtifactCache::Acquired second = cache.Acquire(key);
      // The abandoned lease must not leave the waiter stuck or hand it a
      // phantom entry.
      ASSERT_NE(second.lease, nullptr);
      leases_granted.fetch_add(1);
      ArtifactEntry entry;
      entry.score = 1.0;
      cache.Fulfill(second.lease.get(), std::move(entry));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Drop `first` without fulfilling: error path.
    { ArtifactCache::Acquired dropped = std::move(first); }
    waiter.join();
  }
  EXPECT_EQ(leases_granted.load(), 1u);
  auto found = cache.Find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->score, 1.0);
}

TEST(ArtifactCacheTest, ClearKeepsPendingLeases) {
  ArtifactCache cache;
  Hash256 ready_key, pending_key;
  ready_key.bytes[0] = 1;
  pending_key.bytes[0] = 2;
  cache.Insert(ready_key, ArtifactEntry{});
  ArtifactCache::Acquired acquired = cache.Acquire(pending_key);
  ASSERT_NE(acquired.lease, nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Find(ready_key), nullptr);
  // The pending computation still publishes.
  cache.Fulfill(acquired.lease.get(), ArtifactEntry{});
  EXPECT_NE(cache.Find(pending_key), nullptr);
}

}  // namespace
}  // namespace mlcask::pipeline
