#include "storage/storage_engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/branch_table.h"
#include "storage/forkbase_engine.h"
#include "storage/local_dir_engine.h"

namespace mlcask::storage {
namespace {

std::string RandomBytes(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextU32() & 0xff);
  return out;
}

template <typename Engine>
class StorageEngineTest : public ::testing::Test {
 protected:
  Engine engine_;
};

using EngineTypes = ::testing::Types<ForkBaseEngine, LocalDirEngine>;
TYPED_TEST_SUITE(StorageEngineTest, EngineTypes);

TYPED_TEST(StorageEngineTest, PutGetRoundTrip) {
  auto put = this->engine_.Put("model.bin", "weights-v1");
  ASSERT_TRUE(put.ok());
  auto got = this->engine_.Get("model.bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "weights-v1");
}

TYPED_TEST(StorageEngineTest, GetLatestAfterMultiplePuts) {
  ASSERT_TRUE(this->engine_.Put("k", "v1").ok());
  ASSERT_TRUE(this->engine_.Put("k", "v2").ok());
  auto got = this->engine_.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");
}

TYPED_TEST(StorageEngineTest, GetVersionByContentId) {
  auto p1 = this->engine_.Put("k", "v1");
  auto p2 = this->engine_.Put("k", "v2");
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(p1->id, p2->id);
  EXPECT_EQ(*this->engine_.GetVersion(p1->id), "v1");
  EXPECT_EQ(*this->engine_.GetVersion(p2->id), "v2");
  EXPECT_TRUE(this->engine_.HasVersion(p1->id));
}

TYPED_TEST(StorageEngineTest, VersionsListedInOrder) {
  auto p1 = this->engine_.Put("k", "a");
  auto p2 = this->engine_.Put("k", "b");
  auto p3 = this->engine_.Put("k", "c");
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  std::vector<Hash256> versions = this->engine_.Versions("k");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0], p1->id);
  EXPECT_EQ(versions[2], p3->id);
  EXPECT_TRUE(this->engine_.Versions("unknown").empty());
}

TYPED_TEST(StorageEngineTest, MissingKeyIsNotFound) {
  EXPECT_TRUE(this->engine_.Get("nope").status().IsNotFound());
  Hash256 h;
  EXPECT_TRUE(this->engine_.GetVersion(h).status().IsNotFound());
  EXPECT_FALSE(this->engine_.HasVersion(h));
}

TYPED_TEST(StorageEngineTest, StatsAccumulate) {
  ASSERT_TRUE(this->engine_.Put("k", "0123456789").ok());
  const EngineStats& s = this->engine_.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.logical_bytes, 10u);
  EXPECT_GT(s.storage_time_s, 0.0);
}

TEST(ForkBaseEngineTest, RepeatedContentDeduplicated) {
  ForkBaseEngine engine;
  std::string data = RandomBytes(100000, 1);
  auto p1 = engine.Put("output/step1", data);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->new_physical_bytes >= data.size(), true);  // data + index
  auto p2 = engine.Put("output/step1-copy", data);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->new_physical_bytes, 0u);
  EXPECT_TRUE(p2->deduplicated);
  // Physical grows once, logical twice.
  EXPECT_GE(engine.stats().logical_bytes, 2 * data.size());
  EXPECT_LT(engine.stats().physical_bytes, data.size() + data.size() / 2);
}

TEST(ForkBaseEngineTest, SimilarVersionsShareChunks) {
  ForkBaseEngine engine;
  std::string v1 = RandomBytes(200000, 2);
  std::string v2 = v1;
  v2.replace(100000, 10, "newfeature");
  ASSERT_TRUE(engine.Put("lib/feature_extract", v1).ok());
  auto p2 = engine.Put("lib/feature_extract", v2);
  ASSERT_TRUE(p2.ok());
  // The second version should add only a small fraction of its size.
  EXPECT_LT(p2->new_physical_bytes, v2.size() / 4);
  EXPECT_GT(engine.chunk_stats().DedupRatio(), 1.5);
}

TEST(ForkBaseEngineTest, DedupSavesStorageTime) {
  ForkBaseEngine engine;
  std::string data = RandomBytes(500000, 3);
  auto p1 = engine.Put("a", data);
  auto p2 = engine.Put("b", data);
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Second write transfers no new bytes -> cheaper than the first
  // (still pays latency + chunking).
  EXPECT_LT(p2->storage_time_s, p1->storage_time_s);
}

TEST(LocalDirEngineTest, NeverDeduplicates) {
  LocalDirEngine engine;
  std::string data = RandomBytes(100000, 4);
  auto p1 = engine.Put("a", data);
  auto p2 = engine.Put("b", data);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p2->new_physical_bytes, data.size());
  EXPECT_EQ(engine.stats().physical_bytes, 2 * data.size());
}

TEST(LocalDirEngineTest, FasterPerPutThanForkBase) {
  // The paper's Fig. 6: baselines materialize "almost instantaneously" while
  // MLCask takes a few seconds per write due to the immutable storage engine.
  LocalDirEngine local;
  ForkBaseEngine forkbase;
  std::string data = RandomBytes(1000000, 5);
  auto pl = local.Put("x", data);
  auto pf = forkbase.Put("x", data);
  ASSERT_TRUE(pl.ok() && pf.ok());
  EXPECT_LT(pl->storage_time_s, pf->storage_time_s);
}

TEST(StorageTimeModelTest, WriteSecondsComposition) {
  StorageTimeModel m{.per_put_latency_s = 0.5,
                     .write_mb_per_s = 100.0,
                     .read_mb_per_s = 200.0,
                     .chunking_s_per_mb = 0.01};
  // 100 MB transferred, 200 MB logical: 0.5 + 1.0 + 2.0 = 3.5... wait:
  // transfer = 100e6/(100*1e6) = 1.0s; chunking = 0.01 * 200 = 2.0s.
  EXPECT_NEAR(m.WriteSeconds(100000000, 200000000), 3.5, 1e-9);
  EXPECT_NEAR(m.ReadSeconds(100000000), 0.5, 1e-9);
}

TEST(BranchTableTest, CreateMoveDelete) {
  BranchTable t;
  Hash256 a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  ASSERT_TRUE(t.Create("master", a).ok());
  EXPECT_TRUE(t.Create("master", b).code() == StatusCode::kAlreadyExists);
  EXPECT_EQ(*t.Head("master"), a);
  ASSERT_TRUE(t.Move("master", b).ok());
  EXPECT_EQ(*t.Head("master"), b);
  EXPECT_TRUE(t.Move("dev", a).IsNotFound());
  t.Upsert("dev", a);
  EXPECT_TRUE(t.Exists("dev"));
  EXPECT_EQ(t.List(), (std::vector<std::string>{"dev", "master"}));
  ASSERT_TRUE(t.Delete("dev").ok());
  EXPECT_TRUE(t.Delete("dev").IsNotFound());
  EXPECT_TRUE(t.Head("dev").status().IsNotFound());
}

TEST(BranchTableTest, RejectsEmptyName) {
  BranchTable t;
  Hash256 a;
  EXPECT_TRUE(t.Create("", a).IsInvalidArgument());
}

}  // namespace
}  // namespace mlcask::storage
