// TRUE multi-process deployments: real mlcask_server OS processes hosting
// the shards over unix: endpoints, dialed by ConnectCluster. The headline
// assertion is the acceptance criterion of the async-transport redesign: a
// merge run against out-of-process shards produces the bit-identical
// winner, execution count, and persisted artifact hashes as the in-process
// loopback cluster, at 1, 2, and 4 shards — and the 2PC fan-out issues its
// round trips concurrently (verified by round-trip accounting, not timing).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"
#include "storage/server_cluster.h"
#include "storage/sharded_engine.h"

#ifndef MLCASK_SERVER_BIN
#define MLCASK_SERVER_BIN ""
#endif

namespace mlcask::merge {
namespace {

using sim::BuildTwoBranchScenario;
using sim::DeploymentConfig;
using sim::MakeDeployment;
using storage::LocalServerCluster;
using storage::ShardedStorageEngine;

LocalServerCluster::Options ServerOptions() {
  LocalServerCluster::Options options;
  options.server_binary = MLCASK_SERVER_BIN;
  return options;
}

struct MergeFingerprint {
  uint64_t executions = 0;
  double best_score = 0;
  int best_index = -1;
  std::vector<std::string> winner_chain;
  std::vector<std::string> artifact_hashes;
};

/// One fig9 merge on a deployment. `endpoints` empty = loopback cluster
/// with `shards` in-process shards; non-empty = out-of-process cluster.
MergeFingerprint RunMerge(size_t shards,
                          const std::vector<std::string>& endpoints,
                          ShardedStorageEngine::TwoPhaseStats* tp_out =
                              nullptr) {
  DeploymentConfig config;
  config.num_workers = 1;
  config.storage_shards = shards;
  config.storage_endpoints = endpoints;
  auto deployment = MakeDeployment("readmission", 0.06, config);
  MLCASK_CHECK_OK(deployment.status());
  auto d = *std::move(deployment);
  MLCASK_CHECK_OK(BuildTwoBranchScenario(d.get()).status());
  MergeOperation op(d->repo.get(), d->libraries.get(), d->registry.get(),
                    d->engine.get(), d->clock.get());
  MergeOptions options;
  options.shards = shards;
  auto report = op.Merge("master", "dev", options);
  MLCASK_CHECK_OK(report.status());

  MergeFingerprint fp;
  fp.executions = report->component_executions;
  fp.best_score = report->best_score;
  fp.best_index = report->best_index;
  const CandidateChain& winner =
      report->outcomes[static_cast<size_t>(report->best_index)].chain;
  for (const pipeline::ComponentVersionSpec* spec : winner) {
    fp.winner_chain.push_back(spec->Key());
  }
  auto head = d->repo->Head("master");
  MLCASK_CHECK_OK(head.status());
  for (const version::ComponentRecord& rec : (*head)->snapshot.components) {
    fp.artifact_hashes.push_back(rec.output_id.ToHex());
    EXPECT_TRUE(d->engine->HasVersion(rec.output_id));
  }
  if (tp_out != nullptr) {
    auto* sharded = dynamic_cast<ShardedStorageEngine*>(d->engine.get());
    if (sharded != nullptr) *tp_out = sharded->two_phase_stats();
  }
  return fp;
}

TEST(MultiProcessClusterTest, BasicOperationsAgainstRealServerProcesses) {
  LocalServerCluster servers;
  auto started = servers.Start(3, ServerOptions());
  ASSERT_TRUE(started.ok()) << started;
  auto cluster = storage::ConnectCluster(servers.endpoints());
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  // Routed object writes land and read back through real processes.
  std::vector<storage::PutResult> puts;
  for (int i = 0; i < 12; ++i) {
    auto put = (*cluster)->Put("artifact/obj" + std::to_string(i),
                               "payload-" + std::to_string(i));
    ASSERT_TRUE(put.ok()) << put.status();
    puts.push_back(*put);
  }
  for (int i = 0; i < 12; ++i) {
    auto got = (*cluster)->Get("artifact/obj" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "payload-" + std::to_string(i));
    EXPECT_TRUE((*cluster)->HasVersion(puts[static_cast<size_t>(i)].id));
  }

  // Replicated metadata commits via 2PC across the processes.
  ASSERT_TRUE((*cluster)->Put("pipeline/demo/commits", "commit-json").ok());
  for (size_t s = 0; s < (*cluster)->num_shards(); ++s) {
    auto got = (*cluster)->shard(s)->Get("pipeline/demo/commits");
    ASSERT_TRUE(got.ok()) << "shard " << s;
    EXPECT_EQ(*got, "commit-json");
  }
  auto tp = (*cluster)->two_phase_stats();
  EXPECT_EQ(tp.commits, 1u);
  // The replicated put's prepare fan-out had all three shards' round trips
  // in flight at once — over real sockets this is genuine concurrency.
  EXPECT_EQ(tp.max_inflight_round_trips, 3u);
}

TEST(MultiProcessClusterTest, MergeMatchesLoopbackClusterAtEveryShardCount) {
  MergeFingerprint reference = RunMerge(1, {});
  for (size_t shards : {1ul, 2ul, 4ul}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    LocalServerCluster servers;
    auto started = servers.Start(shards, ServerOptions());
    ASSERT_TRUE(started.ok()) << started;

    ShardedStorageEngine::TwoPhaseStats tp;
    MergeFingerprint socket_fp = RunMerge(shards, servers.endpoints(), &tp);
    EXPECT_EQ(socket_fp.executions, reference.executions);
    EXPECT_EQ(socket_fp.best_index, reference.best_index);
    EXPECT_EQ(socket_fp.best_score, reference.best_score);  // exact
    EXPECT_EQ(socket_fp.winner_chain, reference.winner_chain);
    EXPECT_EQ(socket_fp.artifact_hashes, reference.artifact_hashes);

    // Loopback equivalence at the same shard count, for completeness (the
    // sharded-engine suite covers this; here it pins socket == loopback,
    // not just socket == single-node).
    MergeFingerprint loopback_fp = RunMerge(shards, {});
    EXPECT_EQ(socket_fp.artifact_hashes, loopback_fp.artifact_hashes);
    EXPECT_EQ(socket_fp.winner_chain, loopback_fp.winner_chain);

    if (shards > 1) {
      // Round-trip accounting, not timing: some transaction had at least
      // every participant's round trip in flight simultaneously over the
      // wire (the apply phase can push the peak above the shard count when
      // a batch carries several writes per shard).
      EXPECT_GE(tp.max_inflight_round_trips, shards)
          << "2PC fan-out did not overlap its round trips";
      EXPECT_EQ(tp.per_shard_round_trips.size(), shards);
      for (size_t s = 0; s < shards; ++s) {
        EXPECT_GT(tp.per_shard_round_trips[s], 0u) << "shard " << s;
      }
    }
  }
}

TEST(MultiProcessClusterTest, DeadServerSurfacesUnavailableNotAHang) {
  LocalServerCluster servers;
  auto started = servers.Start(2, ServerOptions());
  ASSERT_TRUE(started.ok()) << started;
  auto cluster = storage::ConnectCluster(servers.endpoints());
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  ASSERT_TRUE((*cluster)->Put("artifact/x", "alive").ok());

  // Kill the processes under the live cluster: every subsequent call must
  // come back with a status (Unavailable through the remote proxy's error
  // channel), never hang a test thread.
  servers.Stop();
  auto put = (*cluster)->Put("pipeline/doomed", "never-lands");
  ASSERT_FALSE(put.ok());
  auto tp = (*cluster)->two_phase_stats();
  EXPECT_EQ(tp.aborts, tp.transactions - tp.commits);
}

}  // namespace
}  // namespace mlcask::merge
