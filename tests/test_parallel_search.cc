// Parallel prioritized merge search: N workers draining the candidate
// frontier must find the same optimal pipeline as the serial search and —
// thanks to the artifact cache's in-flight guards — perform exactly the
// same number of component executions (the paper's pruned-candidate
// metric), at a lower virtual wall-clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "merge/prioritized.h"
#include "sim/scenario.h"

namespace mlcask::merge {
namespace {

class ParallelSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = sim::MakeDeployment("readmission", /*scale=*/0.08);
    MLCASK_CHECK_OK(d.status());
    deployment_ = std::move(d).value();
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(deployment_.get(),
                                                /*extra_model_versions=*/2)
                        .status());
    search_ = std::make_unique<PrioritizedSearch>(
        deployment_->repo.get(), deployment_->libraries.get(),
        deployment_->registry.get(), deployment_->engine.get());
    MLCASK_CHECK_OK(search_->Prepare("master", "dev"));
  }

  TrialResult Trial(SearchMode mode, uint64_t seed, size_t workers) {
    TrialOptions options;
    options.mode = mode;
    options.seed = seed;
    options.num_workers = workers;
    auto trial = search_->RunTrial(options);
    MLCASK_CHECK_OK(trial.status());
    return *std::move(trial);
  }

  std::unique_ptr<sim::Deployment> deployment_;
  std::unique_ptr<PrioritizedSearch> search_;
};

TEST_F(ParallelSearchTest, VisitsEveryCandidateExactlyOnce) {
  for (size_t workers : {size_t{2}, size_t{4}}) {
    TrialResult trial = Trial(SearchMode::kPrioritized, 1, workers);
    ASSERT_EQ(trial.steps.size(), search_->num_candidates());
    std::set<size_t> seen;
    for (const SearchStep& s : trial.steps) {
      EXPECT_TRUE(seen.insert(s.candidate_index).second)
          << "candidate visited twice";
    }
  }
}

TEST_F(ParallelSearchTest, SameOptimalAndExecutionsAsSerial) {
  for (uint64_t seed : {1, 2, 3}) {
    TrialResult serial = Trial(SearchMode::kPrioritized, seed, 1);
    for (size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
      TrialResult parallel = Trial(SearchMode::kPrioritized, seed, workers);
      EXPECT_DOUBLE_EQ(parallel.best_score, serial.best_score)
          << "workers=" << workers << " seed=" << seed;
      // The paper metric must not regress: in-flight guards dedup shared
      // prefixes across workers, so the counts are identical.
      EXPECT_EQ(parallel.executions, serial.executions)
          << "workers=" << workers << " seed=" << seed;
    }
  }
}

TEST_F(ParallelSearchTest, ParallelWallClockIsFaster) {
  TrialResult serial = Trial(SearchMode::kPrioritized, 1, 1);
  TrialResult parallel = Trial(SearchMode::kPrioritized, 1, 4);
  EXPECT_LT(parallel.wall_clock_s, serial.wall_clock_s);
  // And never better than the critical path allows: the makespan cannot
  // beat serial divided by the worker count.
  EXPECT_GE(parallel.wall_clock_s, serial.wall_clock_s / 4.0 - 1e-9);
}

TEST_F(ParallelSearchTest, SerialTrialMatchesLegacyOverload) {
  TrialResult via_options = Trial(SearchMode::kPrioritized, 5, 1);
  auto legacy = search_->RunTrial(SearchMode::kPrioritized, 5);
  ASSERT_TRUE(legacy.ok());
  ASSERT_EQ(legacy->steps.size(), via_options.steps.size());
  for (size_t i = 0; i < via_options.steps.size(); ++i) {
    EXPECT_EQ(legacy->steps[i].candidate_index,
              via_options.steps[i].candidate_index);
    EXPECT_DOUBLE_EQ(legacy->steps[i].end_time_s,
                     via_options.steps[i].end_time_s);
  }
  EXPECT_EQ(legacy->executions, via_options.executions);
}

TEST_F(ParallelSearchTest, ParallelStepsOrderedByVirtualEndTime) {
  TrialResult trial = Trial(SearchMode::kPrioritized, 2, 4);
  double prev = -1;
  for (const SearchStep& s : trial.steps) {
    EXPECT_GE(s.end_time_s, prev);
    prev = s.end_time_s;
  }
  EXPECT_DOUBLE_EQ(trial.wall_clock_s, trial.steps.back().end_time_s);
}

TEST_F(ParallelSearchTest, RandomModeParallelCoversAllCandidates) {
  TrialResult trial = Trial(SearchMode::kRandom, 3, 4);
  ASSERT_EQ(trial.steps.size(), search_->num_candidates());
  std::set<size_t> seen;
  for (const SearchStep& s : trial.steps) seen.insert(s.candidate_index);
  EXPECT_EQ(seen.size(), search_->num_candidates());
}

}  // namespace
}  // namespace mlcask::merge
