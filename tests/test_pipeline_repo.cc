#include "version/pipeline_repo.h"

#include <gtest/gtest.h>

#include "storage/forkbase_engine.h"

namespace mlcask::version {
namespace {

PipelineSnapshot Snap(const std::string& fe, const std::string& cnn) {
  PipelineSnapshot s;
  ComponentRecord a;
  a.name = "feature_extract";
  a.version = *SemanticVersion::Parse(fe);
  ComponentRecord b;
  b.name = "cnn";
  b.version = *SemanticVersion::Parse(cnn);
  s.components = {a, b};
  return s;
}

class PipelineRepoTest : public ::testing::Test {
 protected:
  PipelineRepoTest() : repo_("readmission", &engine_, &clock_) {}

  storage::ForkBaseEngine engine_;
  SimClock clock_;
  PipelineRepo repo_;
};

TEST_F(PipelineRepoTest, InitCreatesMasterRoot) {
  auto id = repo_.Init(Snap("0.0", "0.0"), "alice", "initial pipeline");
  ASSERT_TRUE(id.ok());
  auto head = repo_.Head("master");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ((*head)->Label(), "master.0.0");
  EXPECT_TRUE((*head)->parents.empty());
  EXPECT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "m").status().code() ==
              StatusCode::kAlreadyExists);
}

TEST_F(PipelineRepoTest, CommitAdvancesHeadAndSeq) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "alice", "init").ok());
  auto c1 = repo_.CommitOn("master", Snap("0.0", "0.1"), "alice", "cnn 0.1");
  ASSERT_TRUE(c1.ok());
  auto head = repo_.Head("master");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ((*head)->Label(), "master.0.1");
  ASSERT_EQ((*head)->parents.size(), 1u);
}

TEST_F(PipelineRepoTest, CommitOnMissingBranchFails) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "alice", "init").ok());
  EXPECT_TRUE(
      repo_.CommitOn("dev", Snap("0.0", "0.1"), "a", "m").status().IsNotFound());
}

TEST_F(PipelineRepoTest, BranchForksFromHead) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "alice", "init").ok());
  ASSERT_TRUE(repo_.Branch("dev", "master").ok());
  auto dev_head = repo_.Head("dev");
  auto master_head = repo_.Head("master");
  ASSERT_TRUE(dev_head.ok() && master_head.ok());
  EXPECT_EQ((*dev_head)->id, (*master_head)->id);
  // First commit on dev renders dev.0.0 as in the paper's Fig. 2.
  auto c = repo_.CommitOn("dev", Snap("0.0", "0.1"), "bob", "try cnn 0.1");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*repo_.Head("dev"))->Label(), "dev.0.0");
  // Master is unchanged — isolation of stable vs development pipeline.
  EXPECT_EQ((*repo_.Head("master"))->Label(), "master.0.0");
}

TEST_F(PipelineRepoTest, BranchRequiresExistingSource) {
  EXPECT_TRUE(repo_.Branch("dev", "master").IsNotFound());
}

TEST_F(PipelineRepoTest, DuplicateBranchRejected) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "m").ok());
  ASSERT_TRUE(repo_.Branch("dev", "master").ok());
  EXPECT_EQ(repo_.Branch("dev", "master").code(), StatusCode::kAlreadyExists);
}

TEST_F(PipelineRepoTest, CommonAncestorAfterDivergence) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  Hash256 fork = (*repo_.Head("master"))->id;
  ASSERT_TRUE(repo_.Branch("dev", "master").ok());
  ASSERT_TRUE(repo_.CommitOn("dev", Snap("1.0", "0.2"), "b", "fe 1.0").ok());
  ASSERT_TRUE(repo_.CommitOn("master", Snap("0.0", "0.4"), "a", "cnn 0.4").ok());
  auto lca = repo_.CommonAncestor("master", "dev");
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, fork);
}

TEST_F(PipelineRepoTest, FastForwardDetection) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  ASSERT_TRUE(repo_.Branch("dev", "master").ok());
  ASSERT_TRUE(repo_.CommitOn("dev", Snap("0.0", "0.1"), "b", "m").ok());
  // No commits on master since fork -> fast-forward possible (Fig. 2).
  auto ff = repo_.CanFastForward("master", "dev");
  ASSERT_TRUE(ff.ok());
  EXPECT_TRUE(*ff);
  // A commit on master kills fast-forward (Fig. 3).
  ASSERT_TRUE(repo_.CommitOn("master", Snap("0.0", "0.4"), "a", "m").ok());
  ff = repo_.CanFastForward("master", "dev");
  ASSERT_TRUE(ff.ok());
  EXPECT_FALSE(*ff);
}

TEST_F(PipelineRepoTest, MergeCommitLinksBothParents) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  ASSERT_TRUE(repo_.Branch("dev", "master").ok());
  ASSERT_TRUE(repo_.CommitOn("dev", Snap("1.0", "0.3"), "b", "dev work").ok());
  ASSERT_TRUE(repo_.CommitOn("master", Snap("0.0", "0.4"), "a", "hot fix").ok());
  Hash256 dev_head = (*repo_.Head("dev"))->id;
  Hash256 master_head = (*repo_.Head("master"))->id;

  auto merged = repo_.CommitMerge("master", dev_head, Snap("1.0", "0.3"), "a",
                                  "merge dev");
  ASSERT_TRUE(merged.ok());
  auto head = repo_.Head("master");
  ASSERT_TRUE(head.ok());
  ASSERT_EQ((*head)->parents.size(), 2u);
  EXPECT_EQ((*head)->parents[0], master_head);
  EXPECT_EQ((*head)->parents[1], dev_head);
  EXPECT_EQ((*head)->Label(), "master.0.2");
}

TEST_F(PipelineRepoTest, CommitsChargeStorageTime) {
  double before = clock_.Now();
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  EXPECT_GT(clock_.Now(), before);
  EXPECT_GT(engine_.stats().puts, 0u);
}

TEST_F(PipelineRepoTest, TagsPointAtCommitsAndNeverMove) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  Hash256 v1 = (*repo_.Head("master"))->id;
  ASSERT_TRUE(repo_.Tag("prod-v1", v1).ok());
  auto tagged = repo_.GetTag("prod-v1");
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ((*tagged)->id, v1);

  // The branch moves on; the tag stays.
  ASSERT_TRUE(repo_.CommitOn("master", Snap("0.0", "0.1"), "a", "next").ok());
  EXPECT_EQ((*repo_.GetTag("prod-v1"))->id, v1);

  // Tags are immutable and must reference existing commits.
  EXPECT_EQ(repo_.Tag("prod-v1", (*repo_.Head("master"))->id).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(repo_.Tag("ghost", Sha256::Digest("nope")).IsNotFound());
  EXPECT_TRUE(repo_.GetTag("missing").status().IsNotFound());
  EXPECT_EQ(repo_.Tags(), (std::vector<std::string>{"prod-v1"}));
}

TEST_F(PipelineRepoTest, ExportImportRoundTrip) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  ASSERT_TRUE(repo_.Branch("dev", "master").ok());
  ASSERT_TRUE(repo_.CommitOn("dev", Snap("1.0", "0.1"), "b", "dev work").ok());
  ASSERT_TRUE(repo_.CommitOn("master", Snap("0.0", "0.2"), "a", "master").ok());
  Hash256 dev_head = (*repo_.Head("dev"))->id;
  ASSERT_TRUE(
      repo_.CommitMerge("master", dev_head, Snap("1.0", "0.1"), "a", "merge")
          .ok());
  ASSERT_TRUE(repo_.Tag("v1", (*repo_.Head("master"))->id).ok());

  Json state = repo_.ExportState();
  storage::ForkBaseEngine engine2;
  SimClock clock2;
  auto imported = version::PipelineRepo::ImportState(state, &engine2, &clock2);
  ASSERT_TRUE(imported.ok());

  // Structure survives: heads, labels, parents, tags, LCA queries.
  EXPECT_EQ(imported->name(), "readmission");
  EXPECT_EQ((*imported->Head("master"))->id, (*repo_.Head("master"))->id);
  EXPECT_EQ((*imported->Head("dev"))->id, dev_head);
  EXPECT_EQ((*imported->Head("master"))->parents.size(), 2u);
  EXPECT_EQ((*imported->GetTag("v1"))->id, (*repo_.Head("master"))->id);
  EXPECT_EQ(imported->graph().size(), repo_.graph().size());
  auto lca = imported->CommonAncestor("master", "dev");
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, dev_head);

  // Sequence counters survive: the next commit keeps numbering correctly.
  auto next = imported->CommitOn("master", Snap("1.0", "0.3"), "a", "after");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((*imported->Head("master"))->Label(), "master.0.3");
}

TEST_F(PipelineRepoTest, ImportRejectsCorruptState) {
  storage::ForkBaseEngine engine2;
  SimClock clock2;
  EXPECT_FALSE(
      version::PipelineRepo::ImportState(*Json::Parse("{}"), &engine2, &clock2)
          .ok());
  // Branch pointing at an unknown commit.
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  Json state = repo_.ExportState();
  Json bad = state;
  Json branches = Json::Object();
  branches.Set("master", Json::Str(Sha256::Digest("ghost").ToHex()));
  bad.Set("branches", std::move(branches));
  auto imported = version::PipelineRepo::ImportState(bad, &engine2, &clock2);
  ASSERT_FALSE(imported.ok());
  EXPECT_EQ(imported.status().code(), StatusCode::kCorruption);
}

TEST_F(PipelineRepoTest, HistoryIsReadableFromGraph) {
  ASSERT_TRUE(repo_.Init(Snap("0.0", "0.0"), "a", "init").ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        repo_.CommitOn("master", Snap("0.0", "0." + std::to_string(i)), "a",
                       "update " + std::to_string(i))
            .ok());
  }
  auto log = repo_.graph().Log((*repo_.Head("master"))->id);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0]->message, "update 3");
  EXPECT_EQ(log[3]->message, "init");
}

}  // namespace
}  // namespace mlcask::version
