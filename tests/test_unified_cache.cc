// Regression tests for the unified cache namespace: chain runs (Run) and
// DAG runs (RunDag) key artifacts with the same recursive NodeKey scheme,
// so a chain and the equivalent linear DAG share cached outputs. Before the
// unification these lived in two disjoint namespaces and a chain re-run
// through RunDag recomputed everything.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "pipeline/executor.h"
#include "sim/libraries.h"
#include "sim/workloads.h"
#include "storage/forkbase_engine.h"

namespace mlcask::pipeline {
namespace {

class UnifiedCacheTest : public ::testing::Test {
 protected:
  UnifiedCacheTest() : executor_(&registry_, &engine_, &clock_) {
    MLCASK_CHECK_OK(sim::RegisterWorkloadLibraries(&registry_));
    auto w = sim::MakeWorkload("readmission", 0.05);
    MLCASK_CHECK_OK(w.status());
    chain_ = w->initial;
  }

  LibraryRegistry registry_;
  storage::ForkBaseEngine engine_;
  SimClock clock_;
  Executor executor_;
  Pipeline chain_;
};

TEST_F(UnifiedCacheTest, DagRunReusesChainRunArtifacts) {
  auto first = executor_.Run(chain_, {});
  ASSERT_TRUE(first.ok());
  uint64_t execs = executor_.executions();
  ASSERT_GT(execs, 0u);

  auto second = executor_.RunDag(chain_, {});
  ASSERT_TRUE(second.ok());
  for (const auto& c : second->components) {
    EXPECT_TRUE(c.reused) << c.name;
    EXPECT_FALSE(c.executed) << c.name;
  }
  EXPECT_EQ(executor_.executions(), execs);
  EXPECT_DOUBLE_EQ(second->score, first->score);
  EXPECT_DOUBLE_EQ(second->time.Total(), 0.0);
}

TEST_F(UnifiedCacheTest, ChainRunReusesDagRunArtifacts) {
  auto first = executor_.RunDag(chain_, {});
  ASSERT_TRUE(first.ok());
  uint64_t execs = executor_.executions();

  auto second = executor_.Run(chain_, {});
  ASSERT_TRUE(second.ok());
  for (const auto& c : second->components) {
    EXPECT_TRUE(c.reused) << c.name;
  }
  EXPECT_EQ(executor_.executions(), execs);
  EXPECT_DOUBLE_EQ(second->score, first->score);
}

TEST_F(UnifiedCacheTest, ChainKeyMatchesFoldedNodeKey) {
  std::vector<const ComponentVersionSpec*> specs;
  for (const auto& c : chain_.components()) specs.push_back(&c);
  std::vector<Hash256> parents;
  Hash256 key;
  for (const ComponentVersionSpec* spec : specs) {
    key = Executor::NodeKey(*spec, parents);
    parents.assign(1, key);
  }
  EXPECT_EQ(key, Executor::ChainKey(specs));
  // Prefix keys differ from the full key (order- and length-sensitive).
  std::vector<const ComponentVersionSpec*> prefix(specs.begin(),
                                                  specs.end() - 1);
  EXPECT_NE(Executor::ChainKey(prefix), Executor::ChainKey(specs));
}

TEST_F(UnifiedCacheTest, SeededChainCheckpointServesDagRun) {
  // A checkpoint seeded through the chain API (as merge does from commit
  // history) must be visible to a DAG run of the same pipeline.
  auto prefix_run = executor_.Run(chain_, {});
  ASSERT_TRUE(prefix_run.ok());
  uint64_t execs = executor_.executions();

  Executor fresh(&registry_, &engine_, &clock_);
  std::vector<ComponentVersionSpec> specs = chain_.components();
  std::vector<const ComponentVersionSpec*> ptrs;
  for (const auto& s : specs) ptrs.push_back(&s);
  const data::Table* full = executor_.FindCached(ptrs);
  ASSERT_NE(full, nullptr);
  MLCASK_CHECK_OK(fresh.SeedCache(specs, *full, prefix_run->score, "score",
                                  Hash256{}));
  auto dag = fresh.RunDag(chain_, {});
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->components.back().reused);
  EXPECT_EQ(fresh.executions(), 0u);
  (void)execs;
}

}  // namespace
}  // namespace mlcask::pipeline
