#include "version/version_graph.h"

#include <gtest/gtest.h>

#include "version/commit.h"

namespace mlcask::version {
namespace {

PipelineSnapshot MakeSnapshot(const std::string& cnn_version) {
  PipelineSnapshot s;
  ComponentRecord r;
  r.name = "cnn";
  r.version = *SemanticVersion::Parse(cnn_version);
  r.input_schema = 1;
  r.output_schema = 2;
  s.components.push_back(r);
  return s;
}

Commit MakeCommit(const std::vector<Hash256>& parents,
                  const std::string& branch, uint32_t seq, double t,
                  const std::string& cnn_version = "0.0") {
  Commit c;
  c.parents = parents;
  c.branch = branch;
  c.seq = seq;
  c.author = "tester";
  c.message = branch + " commit " + std::to_string(seq);
  c.sim_time = t;
  c.snapshot = MakeSnapshot(cnn_version);
  c.id = Commit::ComputeId(c);
  return c;
}

TEST(CommitTest, JsonRoundTrip) {
  Commit c = MakeCommit({}, "master", 0, 1.5, "dev@1.2");
  auto parsed = Commit::FromJson(*Json::Parse(c.ToJson().Dump()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, c.id);
  EXPECT_EQ(parsed->branch, "master");
  EXPECT_EQ(parsed->snapshot.components[0].version.ToString(), "dev@1.2");
  EXPECT_FALSE(parsed->snapshot.has_score());
}

TEST(CommitTest, ScoreRoundTrip) {
  Commit c = MakeCommit({}, "master", 0, 0);
  c.snapshot.score = 0.87;
  c.snapshot.metric = "accuracy";
  c.id = Commit::ComputeId(c);
  auto parsed = Commit::FromJson(*Json::Parse(c.ToJson().Dump()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->snapshot.has_score());
  EXPECT_DOUBLE_EQ(parsed->snapshot.score, 0.87);
  EXPECT_EQ(parsed->snapshot.metric, "accuracy");
}

TEST(CommitTest, LabelMatchesPaperNotation) {
  Commit c = MakeCommit({}, "master", 2, 0);
  EXPECT_EQ(c.Label(), "master.0.2");
  Commit d = MakeCommit({}, "Frank-dev", 1, 0);
  EXPECT_EQ(d.Label(), "Frank-dev.0.1");
}

TEST(CommitTest, IdChangesWithContent) {
  Commit a = MakeCommit({}, "master", 0, 0, "0.0");
  Commit b = MakeCommit({}, "master", 0, 0, "0.1");
  EXPECT_NE(a.id, b.id);
}

TEST(SnapshotTest, FindByName) {
  PipelineSnapshot s = MakeSnapshot("0.0");
  EXPECT_NE(s.Find("cnn"), nullptr);
  EXPECT_EQ(s.Find("missing"), nullptr);
}

class VersionGraphTest : public ::testing::Test {
 protected:
  // Builds the paper's Fig. 3 topology:
  //   master.0.0 (root)
  //   ├── master.0.1 ── master.0.2            (HEAD side, via Jane-dev.0.0)
  //   └── Frank-dev.0.0 ── .0.1 ── .0.2       (MERGE_HEAD side)
  void SetUp() override {
    root_ = MakeCommit({}, "master", 0, 0.0);
    ASSERT_TRUE(graph_.Add(root_).ok());
    jane0_ = MakeCommit({root_.id}, "Jane-dev", 0, 1.0, "0.4");
    ASSERT_TRUE(graph_.Add(jane0_).ok());
    master1_ = MakeCommit({jane0_.id}, "master", 1, 2.0, "0.4");
    ASSERT_TRUE(graph_.Add(master1_).ok());
    master2_ = MakeCommit({master1_.id}, "master", 2, 3.0, "0.3");
    ASSERT_TRUE(graph_.Add(master2_).ok());
    frank0_ = MakeCommit({root_.id}, "Frank-dev", 0, 1.1, "0.1");
    ASSERT_TRUE(graph_.Add(frank0_).ok());
    frank1_ = MakeCommit({frank0_.id}, "Frank-dev", 1, 2.1, "0.2");
    ASSERT_TRUE(graph_.Add(frank1_).ok());
    frank2_ = MakeCommit({frank1_.id}, "Frank-dev", 2, 3.1, "0.3");
    ASSERT_TRUE(graph_.Add(frank2_).ok());
  }

  VersionGraph graph_;
  Commit root_, jane0_, master1_, master2_, frank0_, frank1_, frank2_;
};

TEST_F(VersionGraphTest, AddRejectsMissingParent) {
  Commit orphan = MakeCommit({Sha256::Digest("nowhere")}, "x", 0, 9.0);
  EXPECT_EQ(graph_.Add(orphan).code(), StatusCode::kFailedPrecondition);
}

TEST_F(VersionGraphTest, AddRejectsDuplicate) {
  EXPECT_EQ(graph_.Add(root_).code(), StatusCode::kAlreadyExists);
}

TEST_F(VersionGraphTest, AddRejectsBadId) {
  Commit c = MakeCommit({root_.id}, "x", 0, 9.0);
  c.id = Sha256::Digest("tampered");
  EXPECT_TRUE(graph_.Add(c).IsInvalidArgument());
}

TEST_F(VersionGraphTest, GetReturnsCommit) {
  auto got = graph_.Get(master2_.id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->Label(), "master.0.2");
  EXPECT_TRUE(graph_.Get(Sha256::Digest("no")).status().IsNotFound());
}

TEST_F(VersionGraphTest, IsAncestorAlongChain) {
  EXPECT_TRUE(graph_.IsAncestor(root_.id, master2_.id));
  EXPECT_TRUE(graph_.IsAncestor(root_.id, frank2_.id));
  EXPECT_TRUE(graph_.IsAncestor(master1_.id, master2_.id));
  EXPECT_TRUE(graph_.IsAncestor(master2_.id, master2_.id));  // self
  EXPECT_FALSE(graph_.IsAncestor(master2_.id, frank2_.id));
  EXPECT_FALSE(graph_.IsAncestor(frank1_.id, master2_.id));
}

TEST_F(VersionGraphTest, CommonAncestorOfDivergedBranches) {
  auto lca = graph_.CommonAncestor(master2_.id, frank2_.id);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, root_.id);
}

TEST_F(VersionGraphTest, CommonAncestorWhenOneSideIsAncestor) {
  auto lca = graph_.CommonAncestor(master1_.id, master2_.id);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, master1_.id);
}

TEST_F(VersionGraphTest, CommitsSinceAncestorCoversBranchOnly) {
  // Commits on the Frank branch since the fork: exactly the three Frank
  // commits, oldest first.
  auto commits = graph_.CommitsSince(frank2_.id, root_.id);
  ASSERT_EQ(commits.size(), 3u);
  EXPECT_EQ(commits[0]->Label(), "Frank-dev.0.0");
  EXPECT_EQ(commits[1]->Label(), "Frank-dev.0.1");
  EXPECT_EQ(commits[2]->Label(), "Frank-dev.0.2");
}

TEST_F(VersionGraphTest, CommitsSinceStopsAtAncestorSet) {
  auto commits = graph_.CommitsSince(master2_.id, root_.id);
  ASSERT_EQ(commits.size(), 3u);  // Jane-dev.0.0, master.0.1, master.0.2
  EXPECT_EQ(commits[0]->Label(), "Jane-dev.0.0");
  EXPECT_EQ(commits[2]->Label(), "master.0.2");
}

TEST_F(VersionGraphTest, LogFollowsFirstParent) {
  auto log = graph_.Log(master2_.id);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0]->Label(), "master.0.2");
  EXPECT_EQ(log[3]->Label(), "master.0.0");
  auto limited = graph_.Log(master2_.id, 2);
  EXPECT_EQ(limited.size(), 2u);
}

TEST_F(VersionGraphTest, MergeCommitHasTwoParentsAndLcaAdvances) {
  Commit merge = MakeCommit({master2_.id, frank2_.id}, "master", 3, 4.0);
  ASSERT_TRUE(graph_.Add(merge).ok());
  EXPECT_TRUE(graph_.IsAncestor(frank2_.id, merge.id));
  EXPECT_TRUE(graph_.IsAncestor(master2_.id, merge.id));
  // After the merge, the common ancestor of master head and frank head is
  // frank's head itself.
  auto lca = graph_.CommonAncestor(merge.id, frank2_.id);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, frank2_.id);
}

TEST(VersionGraphEdgeTest, CommonAncestorDisjointHistories) {
  VersionGraph g;
  Commit a = MakeCommit({}, "a", 0, 0);
  Commit b = MakeCommit({}, "b", 0, 0);
  ASSERT_TRUE(g.Add(a).ok());
  ASSERT_TRUE(g.Add(b).ok());
  EXPECT_TRUE(g.CommonAncestor(a.id, b.id).status().IsNotFound());
}

TEST(VersionGraphEdgeTest, EmptyGraphQueries) {
  VersionGraph g;
  Hash256 h = Sha256::Digest("x");
  EXPECT_FALSE(g.IsAncestor(h, h));
  EXPECT_TRUE(g.CommonAncestor(h, h).status().IsNotFound());
  EXPECT_TRUE(g.Log(h).empty());
  EXPECT_TRUE(g.CommitsSince(h, h).empty());
}

}  // namespace
}  // namespace mlcask::version
