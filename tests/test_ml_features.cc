#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"
#include "ml/autolearn.h"
#include "ml/embedding.h"
#include "ml/hmm.h"
#include "ml/metrics.h"
#include "ml/zernike.h"

namespace mlcask::ml {
namespace {

TEST(HmmTest, RecoversWellSeparatedStates) {
  // Two-state chain with means -2 and +2, sticky transitions.
  Pcg32 rng(3);
  std::vector<double> seq;
  int state = 0;
  for (int t = 0; t < 400; ++t) {
    if (rng.Bernoulli(0.05)) state = 1 - state;
    seq.push_back((state == 0 ? -2.0 : 2.0) + 0.4 * rng.NextGaussian());
  }
  GaussianHmm hmm;
  HmmConfig cfg;
  cfg.num_states = 2;
  cfg.em_iterations = 15;
  ASSERT_TRUE(hmm.Fit(seq, cfg).ok());
  std::vector<double> means = hmm.means();
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], -2.0, 0.4);
  EXPECT_NEAR(means[1], 2.0, 0.4);
}

TEST(HmmTest, SmoothingReducesNoise) {
  Pcg32 rng(5);
  std::vector<double> clean, noisy;
  int state = 0;
  for (int t = 0; t < 300; ++t) {
    if (t % 60 == 0 && t > 0) state = 1 - state;
    double mean = state == 0 ? -1.5 : 1.5;
    clean.push_back(mean);
    noisy.push_back(mean + 0.8 * rng.NextGaussian());
  }
  GaussianHmm hmm;
  HmmConfig cfg;
  cfg.num_states = 2;
  cfg.em_iterations = 12;
  ASSERT_TRUE(hmm.Fit(noisy, cfg).ok());
  auto smoothed = hmm.Smooth(noisy);
  ASSERT_TRUE(smoothed.ok());
  double mse_noisy = *MeanSquaredError(noisy, clean);
  double mse_smoothed = *MeanSquaredError(*smoothed, clean);
  EXPECT_LT(mse_smoothed, mse_noisy * 0.6);
}

TEST(HmmTest, PosteriorsSumToOne) {
  Pcg32 rng(7);
  std::vector<double> seq;
  for (int t = 0; t < 100; ++t) seq.push_back(rng.NextGaussian());
  GaussianHmm hmm;
  HmmConfig cfg;
  cfg.num_states = 3;
  ASSERT_TRUE(hmm.Fit(seq, cfg).ok());
  auto post = hmm.Posteriors(seq);
  ASSERT_TRUE(post.ok());
  for (size_t t = 0; t < seq.size(); ++t) {
    double sum = 0;
    for (size_t s = 0; s < 3; ++s) sum += (*post)[t * 3 + s];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(HmmTest, LogLikelihoodHigherForInDistributionData) {
  Pcg32 rng(9);
  std::vector<double> seq;
  for (int t = 0; t < 200; ++t) seq.push_back(rng.NextGaussian() * 0.5);
  GaussianHmm hmm;
  HmmConfig cfg;
  cfg.num_states = 2;
  ASSERT_TRUE(hmm.Fit(seq, cfg).ok());
  std::vector<double> shifted = seq;
  for (double& v : shifted) v += 25.0;
  EXPECT_GT(*hmm.LogLikelihood(seq), *hmm.LogLikelihood(shifted));
}

TEST(HmmTest, ErrorsOnMisuse) {
  GaussianHmm hmm;
  EXPECT_FALSE(hmm.Smooth({1.0, 2.0}).ok());  // unfit
  HmmConfig cfg;
  cfg.num_states = 0;
  EXPECT_FALSE(hmm.Fit({1, 2, 3}, cfg).ok());
  HmmConfig cfg2;
  cfg2.num_states = 4;
  EXPECT_FALSE(hmm.Fit({1.0, 2.0}, cfg2).ok());  // too short
}

TEST(ZernikeTest, RadialPolynomialKnownValues) {
  // R_00(rho) = 1; R_11(rho) = rho; R_20(rho) = 2rho^2 - 1; R_22 = rho^2.
  EXPECT_DOUBLE_EQ(ZernikeExtractor::Radial(0, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(ZernikeExtractor::Radial(1, 1, 0.5), 0.5);
  EXPECT_NEAR(ZernikeExtractor::Radial(2, 0, 0.5), 2 * 0.25 - 1, 1e-12);
  EXPECT_NEAR(ZernikeExtractor::Radial(2, 2, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(ZernikeExtractor::Radial(4, 0, 1.0), 1.0, 1e-12);  // 6-6+1
}

TEST(ZernikeTest, FeatureCountMatchesOrder) {
  // Order 4: (0,0),(1,1),(2,0),(2,2),(3,1),(3,3),(4,0),(4,2),(4,4) = 9.
  ZernikeExtractor z(4);
  EXPECT_EQ(z.NumFeatures(), 9u);
}

TEST(ZernikeTest, RotationInvarianceOfMagnitudes) {
  // A centered disk is rotation invariant; a 90°-rotated L-shape must give
  // (near-)identical magnitudes.
  const size_t side = 32;
  std::vector<double> img(side * side, 0.0), rot(side * side, 0.0);
  for (size_t y = 8; y < 24; ++y) {
    for (size_t x = 8; x < 12; ++x) img[y * side + x] = 1.0;  // vertical bar
  }
  // 90° rotation about center: (x,y) -> (y, side-1-x).
  for (size_t y = 0; y < side; ++y) {
    for (size_t x = 0; x < side; ++x) {
      if (img[y * side + x] > 0) {
        size_t nx = y;
        size_t ny = side - 1 - x;
        rot[ny * side + nx] = 1.0;
      }
    }
  }
  ZernikeExtractor z(6);
  auto f1 = z.Extract(img, side);
  auto f2 = z.Extract(rot, side);
  ASSERT_TRUE(f1.ok() && f2.ok());
  for (size_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR((*f1)[i], (*f2)[i], 0.08) << "moment " << i;
  }
}

TEST(ZernikeTest, DistinguishesDigits) {
  auto t = data::GenerateDigits(40, 16, 23);
  ASSERT_TRUE(t.ok());
  ZernikeExtractor z(6);
  // Features of a "1" differ from features of an "8".
  std::vector<double> f1, f8;
  const data::Column* digit = *t->GetColumn("digit");
  for (size_t i = 0; i < 40 && (f1.empty() || f8.empty()); ++i) {
    std::vector<double> pixels(256);
    for (size_t k = 0; k < 256; ++k) {
      pixels[k] = (*t->GetColumn("px" + std::to_string(k)))->doubles[i];
    }
    if (digit->ints[i] == 1 && f1.empty()) f1 = *z.Extract(pixels, 16);
    if (digit->ints[i] == 8 && f8.empty()) f8 = *z.Extract(pixels, 16);
  }
  ASSERT_FALSE(f1.empty());
  ASSERT_FALSE(f8.empty());
  double diff = 0;
  for (size_t i = 0; i < f1.size(); ++i) diff += std::fabs(f1[i] - f8[i]);
  EXPECT_GT(diff, 0.5);
}

TEST(ZernikeTest, ErrorsOnBadInput) {
  ZernikeExtractor z(4);
  EXPECT_FALSE(z.Extract({1, 2, 3}, 2).ok());
  EXPECT_FALSE(z.Extract({}, 0).ok());
}

TEST(TokenizeTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Tokenize("Hello, World! 123"),
            (std::vector<std::string>{"hello", "world", "123"}));
  EXPECT_TRUE(Tokenize("...").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(EmbeddingTest, SimilarContextsYieldSimilarVectors) {
  // "good" and "great" share contexts; "terrible" appears in different ones.
  std::vector<std::string> docs;
  for (int i = 0; i < 60; ++i) {
    docs.push_back("the movie was good and the cast was strong");
    docs.push_back("the movie was great and the cast was strong");
    docs.push_back("the plot was terrible but the visuals saved nothing");
  }
  WordEmbedding emb;
  EmbeddingConfig cfg;
  cfg.dims = 8;
  ASSERT_TRUE(emb.Fit(docs, cfg).ok());
  auto cos = [](const std::vector<double>& a, const std::vector<double>& b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return dot / (std::sqrt(na * nb) + 1e-12);
  };
  auto good = emb.Lookup("good");
  auto great = emb.Lookup("great");
  auto terrible = emb.Lookup("terrible");
  EXPECT_GT(cos(good, great), cos(good, terrible) + 0.05);
}

TEST(EmbeddingTest, EmbedAveragesTokens) {
  std::vector<std::string> docs(30, "alpha beta gamma delta");
  WordEmbedding emb;
  EmbeddingConfig cfg;
  cfg.dims = 4;
  ASSERT_TRUE(emb.Fit(docs, cfg).ok());
  auto doc_vec = emb.Embed("alpha beta");
  auto a = emb.Lookup("alpha");
  auto b = emb.Lookup("beta");
  for (size_t k = 0; k < doc_vec.size(); ++k) {
    EXPECT_NEAR(doc_vec[k], (a[k] + b[k]) / 2.0, 1e-9);
  }
  // OOV-only document embeds to zero.
  auto zero = emb.Embed("zzz qqq");
  for (double v : zero) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EmbeddingTest, ErrorsOnDegenerateInput) {
  WordEmbedding emb;
  EXPECT_FALSE(emb.Fit({}, {}).ok());
  EXPECT_FALSE(emb.Fit({"solo"}, {}).ok());  // vocab too small
}

TEST(PearsonTest, KnownValues) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);  // degenerate
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);           // mismatch
}

TEST(AutolearnTest, FindsPredictiveRatioFeature) {
  // Label depends on x0/x1, which no base feature captures alone.
  Pcg32 rng(31);
  Matrix x(400, 4);
  std::vector<double> y(400);
  for (size_t i = 0; i < 400; ++i) {
    for (size_t j = 0; j < 4; ++j) x.At(i, j) = rng.Uniform(0.5, 2.0);
    y[i] = x.At(i, 0) / x.At(i, 1) > 1.0 ? 1.0 : 0.0;
  }
  AutolearnConfig cfg;
  cfg.keep_top_k = 6;
  auto result = GenerateAndSelectFeatures(x, y, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.cols(), 6u);
  EXPECT_EQ(result->names.size(), 6u);
  // The ratio f0/f1 (or its inverse) must rank at the very top.
  EXPECT_TRUE(result->names[0] == "f0/f1" || result->names[0] == "f1/f0")
      << result->names[0];
}

TEST(AutolearnTest, RespectsKeepTopK) {
  Pcg32 rng(37);
  Matrix x(100, 5);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 5; ++j) x.At(i, j) = rng.NextGaussian();
    y[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  AutolearnConfig cfg;
  cfg.keep_top_k = 3;
  auto result = GenerateAndSelectFeatures(x, y, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->features.cols(), 3u);
}

TEST(AutolearnTest, ErrorsOnMismatch) {
  Matrix x(3, 2);
  EXPECT_FALSE(GenerateAndSelectFeatures(x, {1.0}, {}).ok());
  Matrix empty;
  EXPECT_FALSE(GenerateAndSelectFeatures(empty, {}, {}).ok());
}

}  // namespace
}  // namespace mlcask::ml
