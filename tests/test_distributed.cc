#include "sim/distributed.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlcask::sim {
namespace {

void MakeBlobs(size_t n, uint64_t seed, ml::Matrix* x, std::vector<double>* y) {
  Pcg32 rng(seed);
  *x = ml::Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool pos = rng.Bernoulli(0.5);
    x->At(i, 0) = (pos ? 1.0 : -1.0) + rng.NextGaussian() * 0.6;
    x->At(i, 1) = (pos ? 0.7 : -0.7) + rng.NextGaussian() * 0.6;
    (*y)[i] = pos ? 1.0 : 0.0;
  }
}

TEST(DistributedSpeedupTest, OneGpuIsUnity) {
  EXPECT_DOUBLE_EQ(DistributedSpeedup(1, 0.06), 1.0);
  EXPECT_DOUBLE_EQ(DistributedSpeedup(0, 0.06), 1.0);
}

TEST(DistributedSpeedupTest, MonotoneButSubLinear) {
  double prev = 1.0;
  for (size_t k : {2u, 4u, 8u}) {
    double s = DistributedSpeedup(k, 0.06);
    EXPECT_GT(s, prev);
    EXPECT_LT(s, static_cast<double>(k));  // communication overhead
    prev = s;
  }
}

TEST(DistributedSpeedupTest, ZeroOverheadIsLinear) {
  EXPECT_DOUBLE_EQ(DistributedSpeedup(8, 0.0), 8.0);
}

TEST(PipelineSpeedupTest, MatchesPaperFormula) {
  // Speedup = 1/((1-p) + p/k).
  EXPECT_DOUBLE_EQ(PipelineTimeSpeedup(0.0, 8.0), 1.0);   // no training share
  EXPECT_DOUBLE_EQ(PipelineTimeSpeedup(1.0, 8.0), 8.0);   // pure training
  EXPECT_NEAR(PipelineTimeSpeedup(0.5, 2.0), 1.0 / 0.75, 1e-12);
  // The paper's highlighted point: p > 0.9, k = 8 -> pipeline time under a
  // quarter of the original.
  EXPECT_GT(PipelineTimeSpeedup(0.92, 8.0), 4.0);
}

TEST(PipelineSpeedupTest, AnySpeedupAboveOneHelps) {
  for (double p : {0.1, 0.5, 0.9}) {
    for (double k : {1.5, 2.0, 8.0}) {
      EXPECT_GT(PipelineTimeSpeedup(p, k), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(PipelineTimeSpeedup(0.5, 1.0), 1.0);
}

TEST(DistributedTrainingTest, MoreGpusReachLossFaster) {
  ml::Matrix x;
  std::vector<double> y;
  MakeBlobs(400, 3, &x, &y);
  ml::MlpConfig cfg;
  cfg.sgd.epochs = 20;

  std::vector<std::vector<LossCurvePoint>> curves;
  for (size_t gpus : {1u, 2u, 4u, 8u}) {
    DistributedConfig dc;
    dc.gpus = gpus;
    auto curve = SimulateDistributedTraining(x, y, cfg, dc);
    ASSERT_TRUE(curve.ok());
    ASSERT_EQ(curve->size(), 20u);
    curves.push_back(*std::move(curve));
  }
  // Identical loss trajectories (same seed), but compressed in time.
  for (size_t e = 0; e < 20; ++e) {
    EXPECT_DOUBLE_EQ(curves[0][e].loss, curves[3][e].loss);
    EXPECT_GT(curves[0][e].time_s, curves[1][e].time_s);
    EXPECT_GT(curves[1][e].time_s, curves[2][e].time_s);
    EXPECT_GT(curves[2][e].time_s, curves[3][e].time_s);
  }
  // Loss actually decreases over training (real learning).
  EXPECT_LT(curves[0].back().loss, curves[0].front().loss);
}

TEST(DistributedTrainingTest, RejectsBadConfig) {
  ml::Matrix x(4, 1);
  std::vector<double> y{0, 1, 0, 1};
  ml::MlpConfig cfg;
  DistributedConfig dc;
  dc.gpus = 0;
  EXPECT_FALSE(SimulateDistributedTraining(x, y, cfg, dc).ok());
  dc.gpus = 2;
  dc.base_epoch_seconds = 0;
  EXPECT_FALSE(SimulateDistributedTraining(x, y, cfg, dc).ok());
}

}  // namespace
}  // namespace mlcask::sim
