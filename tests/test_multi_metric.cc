#include <gtest/gtest.h>

#include "common/logging.h"
#include "merge/merge_op.h"
#include "sim/scenario.h"

namespace mlcask::merge {
namespace {

class MultiMetricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = sim::MakeDeployment("readmission", /*scale=*/0.08);
    MLCASK_CHECK_OK(d.status());
    deployment_ = std::move(d).value();
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(deployment_.get()).status());
  }

  MergeOperation MakeOp() {
    return MergeOperation(deployment_->repo.get(),
                          deployment_->libraries.get(),
                          deployment_->registry.get(),
                          deployment_->engine.get(), deployment_->clock.get());
  }

  std::unique_ptr<sim::Deployment> deployment_;
};

TEST_F(MultiMetricTest, ModelsReportFullMetricSet) {
  auto run = deployment_->executor->Run(deployment_->workload.initial, {});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->has_score());
  EXPECT_EQ(run->metrics.count("accuracy"), 1u);
  EXPECT_EQ(run->metrics.count("auc"), 1u);
  EXPECT_EQ(run->metrics.count("inv_logloss"), 1u);
  EXPECT_DOUBLE_EQ(run->metrics.at("accuracy"), run->score);
  EXPECT_GE(run->metrics.at("auc"), 0.0);
  EXPECT_LE(run->metrics.at("auc"), 1.0);
  EXPECT_GT(run->metrics.at("inv_logloss"), 0.0);
}

TEST_F(MultiMetricTest, MetricsSurviveCommitRoundTrip) {
  auto head = deployment_->repo->Head("master");
  ASSERT_TRUE(head.ok());
  EXPECT_GE((*head)->snapshot.metrics.size(), 3u);
  // Serialize and re-parse the commit; metrics survive.
  auto parsed = version::Commit::FromJson(*Json::Parse((*head)->ToJson().Dump()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->snapshot.metrics, (*head)->snapshot.metrics);
}

TEST_F(MultiMetricTest, MergeOptimizesChosenMetric) {
  MergeOperation op = MakeOp();
  MergeOptions opts;
  opts.optimize_metric = "auc";
  auto report = op.Merge("master", "dev", opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->metric, "auc");
  // The winner maximizes AUC across feasible candidates.
  for (const auto& o : report->outcomes) {
    if (!o.incompatible) {
      ASSERT_EQ(o.metrics.count("auc"), 1u);
      EXPECT_LE(o.metrics.at("auc"), report->best_score + 1e-12);
    }
  }
}

TEST_F(MultiMetricTest, DifferentMetricsCanDisagreeOnWinner) {
  // Sec. V: "MLCask generates different optimal pipeline solutions for
  // different metrics". Run the same merge under each metric and verify
  // each winner is the argmax of its own metric (winners may or may not
  // coincide; each must be optimal for its objective).
  for (const std::string metric : {"accuracy", "auc", "inv_logloss"}) {
    auto d = sim::MakeDeployment("readmission", 0.08);
    ASSERT_TRUE(d.ok());
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(d->get()).status());
    MergeOperation op((*d)->repo.get(), (*d)->libraries.get(),
                      (*d)->registry.get(), (*d)->engine.get(),
                      (*d)->clock.get());
    MergeOptions opts;
    opts.optimize_metric = metric;
    auto report = op.Merge("master", "dev", opts);
    ASSERT_TRUE(report.ok()) << metric;
    ASSERT_GE(report->best_index, 0) << metric;
    const auto& winner =
        report->outcomes[static_cast<size_t>(report->best_index)];
    for (const auto& o : report->outcomes) {
      if (!o.incompatible) {
        EXPECT_LE(o.metrics.at(metric), winner.metrics.at(metric) + 1e-12)
            << metric;
      }
    }
  }
}

TEST_F(MultiMetricTest, UnknownMetricIsAnError) {
  MergeOperation op = MakeOp();
  MergeOptions opts;
  opts.optimize_metric = "f1";  // not reported by the models
  EXPECT_TRUE(op.Merge("master", "dev", opts).status().IsInvalidArgument());
}

TEST_F(MultiMetricTest, EmptyMetricUsesPrimaryScore) {
  MergeOperation op = MakeOp();
  auto report = op.Merge("master", "dev", {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->metric, "accuracy");
}

}  // namespace
}  // namespace mlcask::merge
