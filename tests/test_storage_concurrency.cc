// Concurrency stress tests for the storage engines: many threads hammering
// one engine with Put/Get/Versions traffic. The StorageEngine contract says
// stats totals observed after all writers join must equal the serial sums
// exactly — no lost updates, no torn counters.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "storage/forkbase_engine.h"
#include "storage/local_dir_engine.h"

namespace mlcask::storage {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kPutsPerThread = 50;

std::string PayloadFor(size_t thread, size_t i) {
  // A large shared base (dedups at chunk level across all writers) plus a
  // distinct-size unique tail, so logical-byte totals catch misattributed
  // updates while ForkBase still gets dedup traffic under contention. The
  // base bytes vary (content-defined chunking needs entropy to place
  // boundaries) but are identical across all payloads.
  std::string payload;
  payload.reserve(32768 + 600);
  for (size_t j = 0; j < 32768; ++j) {
    payload.push_back(static_cast<char>('0' + (j * j + j / 7) % 77));
  }
  payload.append(100 + 7 * thread + i, static_cast<char>('a' + thread));
  return payload;
}

template <typename Engine>
void HammerEngine(Engine* engine) {
  std::vector<std::thread> threads;
  std::atomic<uint64_t> expected_logical{0};
  std::atomic<uint64_t> get_failures{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([engine, t, &expected_logical, &get_failures] {
      for (size_t i = 0; i < kPutsPerThread; ++i) {
        std::string payload = PayloadFor(t, i);
        // Half the keys are shared across threads (version-list contention),
        // half are private.
        std::string key = i % 2 == 0
                              ? "shared/" + std::to_string(i)
                              : "private/" + std::to_string(t) + "/" +
                                    std::to_string(i);
        auto put = engine->Put(key, payload);
        ASSERT_TRUE(put.ok());
        expected_logical.fetch_add(payload.size());
        // Immediately read our own version back through the shared maps.
        auto got = engine->GetVersion(put->id);
        if (!got.ok() || *got != payload) get_failures.fetch_add(1);
        // Mixed readers on shared state.
        (void)engine->Versions(key);
        (void)engine->HasVersion(put->id);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(get_failures.load(), 0u);
  EngineStats stats = engine->stats();
  EXPECT_EQ(stats.puts, kThreads * kPutsPerThread);
  EXPECT_EQ(stats.gets, kThreads * kPutsPerThread);
  EXPECT_EQ(stats.logical_bytes, expected_logical.load());
  EXPECT_EQ(engine->ListAllVersions().size(), kThreads * kPutsPerThread);
}

TEST(StorageConcurrencyTest, ForkBaseStatsMatchSerialSum) {
  ForkBaseEngine engine;
  HammerEngine(&engine);
  // Every payload shares an 8 KB base, so chunk dedup must kick in even
  // under contention: physical < logical.
  EXPECT_LT(engine.stats().physical_bytes, engine.stats().logical_bytes);
}

TEST(StorageConcurrencyTest, LocalDirStatsMatchSerialSum) {
  LocalDirEngine engine;
  HammerEngine(&engine);
  // Folder archival never dedups.
  EXPECT_EQ(engine.stats().physical_bytes, engine.stats().logical_bytes);
}

TEST(StorageConcurrencyTest, ConcurrentDeleteAndPutStayConsistent) {
  ForkBaseEngine engine;
  // Pre-populate versions to delete.
  std::vector<Hash256> ids;
  for (size_t i = 0; i < 64; ++i) {
    auto put = engine.Put("victim/" + std::to_string(i), std::string(500, 'x'));
    ASSERT_TRUE(put.ok());
    ids.push_back(put->id);
  }
  std::thread deleter([&] {
    for (const Hash256& id : ids) {
      auto freed = engine.DeleteVersion(id);
      ASSERT_TRUE(freed.ok());
    }
  });
  std::thread writer([&] {
    for (size_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          engine.Put("fresh/" + std::to_string(i), std::string(300, 'y'))
              .ok());
    }
  });
  deleter.join();
  writer.join();
  for (const Hash256& id : ids) {
    EXPECT_FALSE(engine.HasVersion(id));
  }
  EXPECT_EQ(engine.ListAllVersions().size(), 64u);
}

}  // namespace
}  // namespace mlcask::storage
