// LoopbackTransport stats consistency: calls and byte counters are updated
// together under one mutex, so a reader polling stats() while other threads
// are mid-Call (e.g. telemetry read while shard services apply a batched
// PutMany) always sees a snapshot where the byte totals correspond to a
// whole number of completed round trips — never a call counted without its
// bytes or vice versa.

#include "storage/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mlcask::storage {
namespace {

TEST(LoopbackTransportTest, CountsCallsAndBytes) {
  LoopbackTransport transport(
      [](std::string_view request) { return std::string(request) + "!!"; });
  auto response = transport.Call("ping");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "ping!!");
  TransportStats s = transport.stats();
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.request_bytes, 4u);
  EXPECT_EQ(s.response_bytes, 6u);
}

TEST(LoopbackTransportTest, AsyncCallResolvesInlineAndDeterministically) {
  // The base-class AsyncCall degrades to a synchronous Call resolved
  // inline: by the time the future is returned the handler has run. That
  // keeps loopback deployments bit-deterministic (the sharded equivalence
  // matrix depends on it) while sharing the fan-out code path with real
  // async transports.
  int handled = 0;
  LoopbackTransport transport([&handled](std::string_view request) {
    handled += 1;
    return std::string(request) + "!";
  });
  TransportFuture future = transport.AsyncCall("a");
  EXPECT_EQ(handled, 1);  // already executed at issue time
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "a!");
}

TEST(LoopbackTransportTest, CallManyPreservesOrderAndCountsEveryCall) {
  LoopbackTransport transport(
      [](std::string_view request) { return std::string(request) + "?"; });
  auto responses = transport.CallMany({"x", "y", "z"});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(*responses[0], "x?");
  EXPECT_EQ(*responses[1], "y?");
  EXPECT_EQ(*responses[2], "z?");
  EXPECT_EQ(transport.stats().calls, 3u);
}

TEST(LoopbackTransportTest, StatsSnapshotIsConsistentUnderConcurrency) {
  // Fixed-size request/response make consistency checkable: in any honest
  // snapshot, request_bytes == calls * |req| and response_bytes ==
  // calls * |resp|. With independently-updated counters a reader could
  // catch a writer between increments and see a torn triple.
  const std::string request(64, 'q');
  const std::string response(48, 'r');
  LoopbackTransport transport(
      [&response](std::string_view) { return response; });

  constexpr int kWriters = 4;
  constexpr int kCallsPerWriter = 2000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> snapshots{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        TransportStats s = transport.stats();
        snapshots.fetch_add(1, std::memory_order_relaxed);
        if (s.request_bytes != s.calls * request.size() ||
            s.response_bytes != s.calls * response.size()) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kCallsPerWriter; ++i) {
        ASSERT_TRUE(transport.Call(request).ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(snapshots.load(), 0u);
  TransportStats final_stats = transport.stats();
  EXPECT_EQ(final_stats.calls,
            static_cast<uint64_t>(kWriters) * kCallsPerWriter);
  EXPECT_EQ(final_stats.request_bytes, final_stats.calls * request.size());
  EXPECT_EQ(final_stats.response_bytes, final_stats.calls * response.size());
}

}  // namespace
}  // namespace mlcask::storage
