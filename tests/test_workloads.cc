#include "sim/workloads.h"

#include <gtest/gtest.h>

#include "common/logging.h"

#include "pipeline/executor.h"
#include "sim/libraries.h"
#include "storage/forkbase_engine.h"

namespace mlcask::sim {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : executor_(&registry_, &engine_, &clock_) {
    MLCASK_CHECK_OK(RegisterWorkloadLibraries(&registry_));
  }

  pipeline::LibraryRegistry registry_;
  storage::ForkBaseEngine engine_;
  SimClock clock_;
  pipeline::Executor executor_;
};

TEST_F(WorkloadTest, AllLibrariesRegistered) {
  EXPECT_GE(registry_.size(), 16u);
  for (const char* name :
       {"gen_readmission", "gen_dpm", "gen_reviews", "gen_digits",
        "cleanse_impute", "extract_ehr_features", "hmm_smooth",
        "corpus_process", "train_embedding", "pool_features",
        "zernike_features", "autolearn_features", "autolearn_select",
        "train_mlp", "train_logreg", "train_adaboost"}) {
    EXPECT_TRUE(registry_.Has(name)) << name;
  }
}

TEST_F(WorkloadTest, FourWorkloadsBuildAndValidate) {
  ASSERT_EQ(WorkloadNames().size(), 4u);
  for (const std::string& name : WorkloadNames()) {
    auto w = MakeWorkload(name, 0.05);
    ASSERT_TRUE(w.ok()) << name;
    EXPECT_EQ(w->name, name);
    EXPECT_TRUE(w->initial.IsChain());
    EXPECT_TRUE(w->initial.Validate().ok());
    EXPECT_TRUE(w->initial.CheckCompatibility().ok());
    EXPECT_FALSE(w->preprocessors.empty());
    EXPECT_FALSE(w->model.empty());
    // Every impl must be registered.
    for (const auto& c : w->initial.components()) {
      EXPECT_TRUE(registry_.Has(c.impl)) << name << ":" << c.impl;
    }
  }
  EXPECT_FALSE(MakeWorkload("nope").ok());
  EXPECT_FALSE(MakeWorkload("dpm", 0.0).ok());
}

// Running each workload end-to-end is the pipeline-layer integration test:
// real data generation, real pre-processing, real training, real score.
class WorkloadRunSweep : public WorkloadTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(WorkloadRunSweep, RunsEndToEndWithLearnedScore) {
  auto w = MakeWorkload(GetParam(), 0.15);
  ASSERT_TRUE(w.ok());
  auto result = executor_.Run(w->initial, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->compatibility_failure);
  ASSERT_TRUE(result->has_score());
  EXPECT_EQ(result->metric, "accuracy");
  // Real learning happened: clearly better than chance on all 4 tasks.
  EXPECT_GT(result->score, 0.6) << GetParam();
  EXPECT_LE(result->score, 1.0);
  EXPECT_GT(result->time.preprocess_s, 0.0);
  EXPECT_GT(result->time.train_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRunSweep,
                         ::testing::Values("readmission", "dpm", "sa",
                                           "autolearn"));

TEST_F(WorkloadTest, CostProfilesMatchPaperShapes) {
  // Readmission is model-heavy; the other three are pre-processing-heavy
  // (paper Sec. VII-A). Check on the simulated-time composition.
  auto readmission = MakeWorkload("readmission", 0.05);
  auto dpm = MakeWorkload("dpm", 0.05);
  auto sa = MakeWorkload("sa", 0.05);
  auto autolearn = MakeWorkload("autolearn", 0.05);
  ASSERT_TRUE(readmission.ok() && dpm.ok() && sa.ok() && autolearn.ok());

  auto run = [&](const Workload& w) {
    auto r = executor_.Run(w.initial, {});
    MLCASK_CHECK_OK(r.status());
    return r->time;
  };
  TimeBreakdown tr = run(*readmission);
  EXPECT_GT(tr.train_s, tr.preprocess_s);
  for (const auto* w : {&*dpm, &*sa, &*autolearn}) {
    TimeBreakdown t = run(**const_cast<Workload* const*>(&w));
    EXPECT_GT(t.preprocess_s, t.train_s) << (*w).name;
  }
}

TEST_F(WorkloadTest, BumpIncrementTurnsVariantKnob) {
  auto w = MakeWorkload("readmission", 0.05);
  ASSERT_TRUE(w.ok());
  const auto* fe = *w->initial.Find("feature_extract");
  auto bumped = BumpIncrement(*fe);
  EXPECT_EQ(bumped.version.ToString(), "0.1");
  EXPECT_EQ(bumped.params.GetInt("variant"), 1);
  EXPECT_EQ(bumped.input_schema, fe->input_schema);
  EXPECT_EQ(bumped.output_schema, fe->output_schema);
  auto twice = BumpIncrement(bumped);
  EXPECT_EQ(twice.version.ToString(), "0.2");
  EXPECT_EQ(twice.params.GetInt("variant"), 2);
}

TEST_F(WorkloadTest, BumpSchemaBreaksDownstream) {
  auto w = MakeWorkload("readmission", 0.05);
  ASSERT_TRUE(w.ok());
  const auto* fe = *w->initial.Find("feature_extract");
  auto bumped = BumpSchema(*fe);
  EXPECT_EQ(bumped.version.ToString(), "1.0");
  EXPECT_NE(bumped.output_schema, fe->output_schema);

  auto broken = WithComponent(w->initial, bumped);
  ASSERT_TRUE(broken.ok());
  EXPECT_TRUE(broken->CheckCompatibility().IsIncompatible());

  // Adapting the model restores compatibility.
  const auto* cnn = *w->initial.Find("cnn");
  auto adapted = AdaptInputSchema(*cnn, bumped.output_schema);
  EXPECT_EQ(adapted.version.ToString(), "0.1");
  auto fixed = WithComponent(*broken, adapted);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(fixed->CheckCompatibility().ok());
}

TEST_F(WorkloadTest, VariantChangesScore) {
  // An increment update must actually change behaviour (and typically the
  // score) — otherwise the metric-driven merge would have nothing to search.
  auto w = MakeWorkload("readmission", 0.15);
  ASSERT_TRUE(w.ok());
  auto base = executor_.Run(w->initial, {});
  ASSERT_TRUE(base.ok());

  const auto* cnn = *w->initial.Find("cnn");
  auto updated = WithComponent(w->initial, BumpIncrement(*cnn));
  ASSERT_TRUE(updated.ok());
  auto changed = executor_.Run(*updated, {});
  ASSERT_TRUE(changed.ok());
  EXPECT_NE(base->score, changed->score);
}

TEST_F(WorkloadTest, WithComponentRejectsUnknownName) {
  auto w = MakeWorkload("sa", 0.05);
  ASSERT_TRUE(w.ok());
  pipeline::ComponentVersionSpec ghost;
  ghost.name = "ghost";
  ghost.impl = "x";
  EXPECT_TRUE(WithComponent(w->initial, ghost).status().IsNotFound());
}

}  // namespace
}  // namespace mlcask::sim
