#include "pipeline/executor.h"

#include <gtest/gtest.h>

#include "common/logging.h"

#include "pipeline/library_registry.h"
#include "storage/forkbase_engine.h"

namespace mlcask::pipeline {
namespace {

/// Toy libraries: a source emitting N rows, a doubler, and a "model" whose
/// score is the mean of its input.
Status RegisterToyLibraries(LibraryRegistry* reg) {
  MLCASK_RETURN_IF_ERROR(reg->Register(
      "toy_source", [](const ExecInput& in) -> StatusOr<ExecOutput> {
        int64_t rows = in.params->GetInt("rows", 10);
        std::vector<double> v(static_cast<size_t>(rows));
        for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
        ExecOutput out;
        MLCASK_RETURN_IF_ERROR(out.table.AddDoubleColumn("x", std::move(v)));
        return out;
      }));
  MLCASK_RETURN_IF_ERROR(reg->Register(
      "toy_scale", [](const ExecInput& in) -> StatusOr<ExecOutput> {
        if (in.input == nullptr) {
          return Status::InvalidArgument("toy_scale needs input");
        }
        double k = in.params->GetDouble("k", 2.0);
        MLCASK_ASSIGN_OR_RETURN(const data::Column* c, in.input->GetColumn("x"));
        std::vector<double> v = c->doubles;
        for (double& x : v) x *= k;
        ExecOutput out;
        MLCASK_RETURN_IF_ERROR(out.table.AddDoubleColumn("x", std::move(v)));
        return out;
      }));
  MLCASK_RETURN_IF_ERROR(reg->Register(
      "toy_model", [](const ExecInput& in) -> StatusOr<ExecOutput> {
        if (in.input == nullptr) {
          return Status::InvalidArgument("toy_model needs input");
        }
        MLCASK_ASSIGN_OR_RETURN(const data::Column* c, in.input->GetColumn("x"));
        double mean = 0;
        for (double v : c->doubles) mean += v;
        mean /= static_cast<double>(c->doubles.size());
        ExecOutput out;
        MLCASK_RETURN_IF_ERROR(out.table.AddDoubleColumn("mean", {mean}));
        out.score = mean;
        out.metric = "mean";
        return out;
      }));
  return Status::Ok();
}

ComponentVersionSpec Spec(const std::string& name, ComponentKind kind,
                          uint64_t in_schema, uint64_t out_schema,
                          const std::string& impl, double cost = 1.0) {
  ComponentVersionSpec s;
  s.name = name;
  s.kind = kind;
  s.input_schema = in_schema;
  s.output_schema = out_schema;
  s.impl = impl;
  s.cost_per_krow_s = cost;
  return s;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : executor_(&registry_, &engine_, &clock_) {
    MLCASK_CHECK_OK(RegisterToyLibraries(&registry_));
  }

  Pipeline MakeChain(double k = 2.0) {
    auto src = Spec("src", ComponentKind::kDataset, 0, 1, "toy_source", 10.0);
    src.params.Set("rows", Json::Int(1000));
    auto scale = Spec("scale", ComponentKind::kPreprocessor, 1, 2, "toy_scale",
                      20.0);
    scale.params.Set("k", Json::Number(k));
    auto model = Spec("model", ComponentKind::kModel, 2, 3, "toy_model", 40.0);
    auto p = Pipeline::Chain("toy", {src, scale, model});
    MLCASK_CHECK_OK(p.status());
    return *std::move(p);
  }

  LibraryRegistry registry_;
  storage::ForkBaseEngine engine_;
  SimClock clock_;
  Executor executor_;
};

TEST_F(ExecutorTest, RunsChainAndScores) {
  auto result = executor_.Run(MakeChain(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->compatibility_failure);
  ASSERT_EQ(result->components.size(), 3u);
  EXPECT_TRUE(result->components[0].executed);
  EXPECT_TRUE(result->has_score());
  // mean of 0..999 doubled = 999.
  EXPECT_DOUBLE_EQ(result->score, 999.0);
  EXPECT_EQ(result->metric, "mean");
  EXPECT_EQ(executor_.executions(), 3u);
}

TEST_F(ExecutorTest, ChargesSimulatedTimeByKindAndRows) {
  auto result = executor_.Run(MakeChain(), {});
  ASSERT_TRUE(result.ok());
  // src: 10 s/krow * 1 krow; scale: 20; model: 40 (into train bucket).
  EXPECT_DOUBLE_EQ(result->time.preprocess_s, 30.0);
  EXPECT_DOUBLE_EQ(result->time.train_s, 40.0);
  EXPECT_GT(result->time.storage_s, 0.0);
  EXPECT_DOUBLE_EQ(clock_.Now(),
                   result->time.preprocess_s + result->time.train_s +
                       result->time.storage_s);
}

TEST_F(ExecutorTest, SecondRunFullyReused) {
  ASSERT_TRUE(executor_.Run(MakeChain(), {}).ok());
  auto second = executor_.Run(MakeChain(), {});
  ASSERT_TRUE(second.ok());
  for (const auto& c : second->components) {
    EXPECT_TRUE(c.reused) << c.name;
    EXPECT_FALSE(c.executed);
  }
  EXPECT_DOUBLE_EQ(second->time.Total(), 0.0);
  // Score is preserved through the cache.
  EXPECT_DOUBLE_EQ(second->score, 999.0);
  EXPECT_EQ(executor_.executions(), 3u);
}

TEST_F(ExecutorTest, ChangedSuffixOnlyRerunsSuffix) {
  ASSERT_TRUE(executor_.Run(MakeChain(2.0), {}).ok());
  auto changed = executor_.Run(MakeChain(3.0), {});
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed->components[0].reused);   // src unchanged
  EXPECT_TRUE(changed->components[1].executed); // scale params changed
  EXPECT_TRUE(changed->components[2].executed); // downstream of change
  EXPECT_DOUBLE_EQ(changed->score, 999.0 * 1.5);
  EXPECT_EQ(executor_.executions(), 5u);
}

TEST_F(ExecutorTest, ReuseDisabledRerunsEverything) {
  ASSERT_TRUE(executor_.Run(MakeChain(), {}).ok());
  ExecutorOptions opts;
  opts.reuse_cached_outputs = false;
  auto second = executor_.Run(MakeChain(), opts);
  ASSERT_TRUE(second.ok());
  for (const auto& c : second->components) {
    EXPECT_TRUE(c.executed) << c.name;
  }
  EXPECT_EQ(executor_.executions(), 6u);
}

TEST_F(ExecutorTest, PrecheckSkipsDoomedRun) {
  // Break the scale->model edge.
  auto chain = MakeChain();
  auto specs = chain.components();
  specs[2].input_schema = 99;
  auto broken = Pipeline::Chain("toy", specs);
  ASSERT_TRUE(broken.ok());

  ExecutorOptions opts;  // precheck on by default
  auto result = executor_.Run(*broken, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->compatibility_failure);
  EXPECT_TRUE(result->components.empty());  // nothing ran
  EXPECT_DOUBLE_EQ(result->time.Total(), 0.0);
  EXPECT_EQ(executor_.executions(), 0u);
}

TEST_F(ExecutorTest, RuntimeFailureWastesUpstreamTime) {
  auto chain = MakeChain();
  auto specs = chain.components();
  specs[2].input_schema = 99;
  auto broken = Pipeline::Chain("toy", specs);
  ASSERT_TRUE(broken.ok());

  ExecutorOptions opts;
  opts.precheck_compatibility = false;  // baseline behaviour
  auto result = executor_.Run(*broken, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->compatibility_failure);
  EXPECT_EQ(result->failed_component, "model");
  // src and scale already ran and were charged.
  EXPECT_DOUBLE_EQ(result->time.preprocess_s, 30.0);
  EXPECT_DOUBLE_EQ(result->time.train_s, 0.0);
  EXPECT_EQ(executor_.executions(), 2u);
}

TEST_F(ExecutorTest, StoreOutputsOffSkipsStorage) {
  ExecutorOptions opts;
  opts.store_outputs = false;
  auto result = executor_.Run(MakeChain(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->time.storage_s, 0.0);
  EXPECT_EQ(engine_.stats().puts, 0u);
  for (const auto& c : result->components) {
    EXPECT_TRUE(c.output_id.IsZero());
  }
}

TEST_F(ExecutorTest, SnapshotCarriesOutputIdsAndScore) {
  auto result = executor_.Run(MakeChain(), {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->snapshot.components.size(), 3u);
  for (const auto& rec : result->snapshot.components) {
    EXPECT_TRUE(rec.has_output());
    EXPECT_TRUE(engine_.HasVersion(rec.output_id));
  }
  EXPECT_DOUBLE_EQ(result->snapshot.score, 999.0);
}

TEST_F(ExecutorTest, SeedCacheActsAsCheckpoint) {
  // Seed the prefix (src, scale) as if a previous commit materialized it.
  auto chain = MakeChain();
  auto specs = chain.components();
  data::Table cached;
  MLCASK_CHECK_OK(cached.AddDoubleColumn("x", {10.0, 20.0, 30.0}));
  ASSERT_TRUE(executor_
                  .SeedCache({specs[0], specs[1]}, std::move(cached),
                             std::nan(""), "", Hash256{})
                  .ok());
  auto result = executor_.Run(chain, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->components[0].reused);
  EXPECT_TRUE(result->components[1].reused);
  EXPECT_TRUE(result->components[2].executed);
  EXPECT_DOUBLE_EQ(result->score, 20.0);  // mean of the seeded table
  EXPECT_EQ(executor_.executions(), 1u);
}

TEST_F(ExecutorTest, UnknownImplIsHardError) {
  auto bad = Spec("src", ComponentKind::kDataset, 0, 1, "no_such_impl");
  auto p = Pipeline::Chain("bad", {bad});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(executor_.Run(*p, {}).status().IsNotFound());
}

TEST_F(ExecutorTest, ChainKeyOrderAndParamSensitive) {
  auto a = Spec("a", ComponentKind::kDataset, 0, 1, "x");
  auto b = Spec("b", ComponentKind::kPreprocessor, 1, 2, "y");
  EXPECT_NE(Executor::ChainKey({&a, &b}), Executor::ChainKey({&b, &a}));
  EXPECT_NE(Executor::ChainKey({&a}), Executor::ChainKey({&a, &b}));
  auto a2 = a;
  a2.params.Set("variant", Json::Int(1));
  EXPECT_NE(Executor::ChainKey({&a}), Executor::ChainKey({&a2}));
  auto a3 = a;
  a3.version = a.version.BumpIncrement();
  EXPECT_NE(Executor::ChainKey({&a}), Executor::ChainKey({&a3}));
}

}  // namespace
}  // namespace mlcask::pipeline
