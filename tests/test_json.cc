#include "common/json.h"

#include <gtest/gtest.h>

namespace mlcask {
namespace {

TEST(JsonTest, BuildAndDumpScalars) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Int(42).Dump(), "42");
  EXPECT_EQ(Json::Number(2.5).Dump(), "2.5");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, ObjectKeysSortedDeterministically) {
  Json o = Json::Object();
  o.Set("zeta", Json::Int(1));
  o.Set("alpha", Json::Int(2));
  o.Set("mid", Json::Int(3));
  EXPECT_EQ(o.Dump(), "{\"alpha\":2,\"mid\":3,\"zeta\":1}");
}

TEST(JsonTest, NestedStructure) {
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Str("two"));
  Json o = Json::Object();
  o.Set("list", std::move(arr));
  o.Set("flag", Json::Bool(true));
  EXPECT_EQ(o.Dump(), "{\"flag\":true,\"list\":[1,\"two\"]}");
}

TEST(JsonTest, StringEscaping) {
  Json s = Json::Str("a\"b\\c\nd\te");
  EXPECT_EQ(s.Dump(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("-17")->AsInt(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25e2")->AsDouble(), 325.0);
  EXPECT_EQ(Json::Parse("\"str\"")->AsString(), "str");
}

TEST(JsonTest, ParseObjectAndArray) {
  auto r = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(r.ok());
  const Json& j = *r;
  ASSERT_TRUE(j.is_object());
  const Json* a = j.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(0).AsInt(), 1);
  EXPECT_EQ(a->at(2).Get("b")->AsString(), "c");
  EXPECT_TRUE(j.Get("d")->is_null());
}

TEST(JsonTest, RoundTripPreservesStructure) {
  Json o = Json::Object();
  o.Set("name", Json::Str("feature_extract"));
  o.Set("version", Json::Str("master@1.0"));
  Json params = Json::Object();
  params.Set("learning_rate", Json::Number(0.01));
  params.Set("max_iter", Json::Int(100));
  o.Set("params", std::move(params));
  auto parsed = Json::Parse(o.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, o);
  // Round trip again through Pretty.
  auto parsed2 = Json::Parse(o.Pretty());
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(*parsed2, o);
}

TEST(JsonTest, ParseErrorsAreStatuses) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto r = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "A\xc3\xa9");
}

TEST(JsonTest, TypedGettersWithDefaults) {
  auto r = Json::Parse(R"({"s":"v","n":7,"b":true})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetString("s"), "v");
  EXPECT_EQ(r->GetString("missing", "def"), "def");
  EXPECT_EQ(r->GetInt("n"), 7);
  EXPECT_EQ(r->GetInt("missing", -1), -1);
  EXPECT_TRUE(r->GetBool("b"));
  EXPECT_TRUE(r->GetBool("missing", true));
  // Wrong type falls back to default.
  EXPECT_EQ(r->GetInt("s", 5), 5);
}

TEST(JsonTest, DeepNestingGuard) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(Json::Array().Dump(), "[]");
  EXPECT_EQ(Json::Object().Dump(), "{}");
  EXPECT_EQ(Json::Parse("[]")->size(), 0u);
  EXPECT_EQ(Json::Parse("{}")->size(), 0u);
}

TEST(JsonTest, WhitespaceTolerated) {
  auto r = Json::Parse("  {\n\t\"a\" :  1 , \"b\": [ ] }  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetInt("a"), 1);
}

}  // namespace
}  // namespace mlcask
