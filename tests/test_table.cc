#include "data/table.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace mlcask::data {
namespace {

Table MakeSample() {
  Table t;
  MLCASK_CHECK_OK(t.AddDoubleColumn("age", {50.0, 61.5, 43.25}));
  MLCASK_CHECK_OK(t.AddIntColumn("visits", {3, 1, 7}));
  MLCASK_CHECK_OK(t.AddStringColumn("code", {"D001", "", "D017"}));
  t.SetMeta("domain", "test");
  return t;
}

TEST(TableTest, BasicShape) {
  Table t = MakeSample();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(t.HasColumn("age"));
  EXPECT_FALSE(t.HasColumn("missing"));
}

TEST(TableTest, LengthMismatchRejected) {
  Table t;
  ASSERT_TRUE(t.AddDoubleColumn("a", {1, 2, 3}).ok());
  EXPECT_TRUE(t.AddDoubleColumn("b", {1, 2}).IsInvalidArgument());
  EXPECT_TRUE(t.AddIntColumn("c", {1}).IsInvalidArgument());
  EXPECT_TRUE(t.AddStringColumn("d", {"x", "y"}).IsInvalidArgument());
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t;
  ASSERT_TRUE(t.AddDoubleColumn("a", {1}).ok());
  EXPECT_EQ(t.AddIntColumn("a", {2}).code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, GetAndDropColumn) {
  Table t = MakeSample();
  auto col = t.GetColumn("visits");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ints[2], 7);
  ASSERT_TRUE(t.DropColumn("visits").ok());
  EXPECT_FALSE(t.HasColumn("visits"));
  EXPECT_TRUE(t.DropColumn("visits").IsNotFound());
  EXPECT_TRUE(t.GetColumn("visits").status().IsNotFound());
}

TEST(TableTest, SchemaReflectsColumnsAndMeta) {
  Table t = MakeSample();
  DataSchema s = t.schema();
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.FieldIndex("code"), 2);
  EXPECT_EQ(s.meta().at("domain"), "test");
}

TEST(TableTest, SchemaHashChangesWithColumns) {
  Table t = MakeSample();
  uint64_t before = t.schema().ShortId();
  ASSERT_TRUE(t.AddDoubleColumn("extra", {0, 0, 0}).ok());
  EXPECT_NE(t.schema().ShortId(), before);
}

TEST(TableTest, SchemaHashIgnoresColumnOrder) {
  // The paper's canonicalization sorts headers, so column order must not
  // change the hash.
  Table a, b;
  ASSERT_TRUE(a.AddDoubleColumn("x", {1}).ok());
  ASSERT_TRUE(a.AddIntColumn("y", {1}).ok());
  ASSERT_TRUE(b.AddIntColumn("y", {2}).ok());
  ASSERT_TRUE(b.AddDoubleColumn("x", {2}).ok());
  EXPECT_EQ(a.schema().SchemaHash(), b.schema().SchemaHash());
}

TEST(TableTest, SchemaHashStandardizesHeaders) {
  Table a, b;
  ASSERT_TRUE(a.AddDoubleColumn("Age ", {1}).ok());
  ASSERT_TRUE(b.AddDoubleColumn("age", {1}).ok());
  EXPECT_EQ(a.schema().SchemaHash(), b.schema().SchemaHash());
}

TEST(TableTest, SchemaHashSensitiveToTypeAndMeta) {
  Table a, b, c;
  ASSERT_TRUE(a.AddDoubleColumn("v", {1}).ok());
  ASSERT_TRUE(b.AddIntColumn("v", {1}).ok());
  EXPECT_NE(a.schema().SchemaHash(), b.schema().SchemaHash());
  ASSERT_TRUE(c.AddDoubleColumn("v", {1}).ok());
  c.SetMeta("shape", "16x16");
  EXPECT_NE(a.schema().SchemaHash(), c.schema().SchemaHash());
}

TEST(TableTest, SerializeDeserializeRoundTrip) {
  Table t = MakeSample();
  std::string bytes = t.Serialize();
  auto back = Table::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TableTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Table::Deserialize("").ok());
  EXPECT_FALSE(Table::Deserialize("not a table").ok());
  Table t = MakeSample();
  std::string bytes = t.Serialize();
  bytes.resize(bytes.size() / 2);  // truncated
  EXPECT_FALSE(Table::Deserialize(bytes).ok());
  std::string trailing = t.Serialize() + "x";
  EXPECT_FALSE(Table::Deserialize(trailing).ok());
}

TEST(TableTest, EmptyTableRoundTrip) {
  Table t;
  auto back = Table::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 0u);
}

TEST(TableTest, ToRowMajorSelectsColumns) {
  Table t;
  ASSERT_TRUE(t.AddDoubleColumn("a", {1, 2}).ok());
  ASSERT_TRUE(t.AddDoubleColumn("b", {3, 4}).ok());
  ASSERT_TRUE(t.AddIntColumn("i", {9, 9}).ok());
  auto rm = t.ToRowMajor({"b", "a"});
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(*rm, (std::vector<double>{3, 1, 4, 2}));
  EXPECT_TRUE(t.ToRowMajor({"i"}).status().IsInvalidArgument());
  EXPECT_TRUE(t.ToRowMajor({"zz"}).status().IsNotFound());
}

TEST(TableTest, DoubleColumnNames) {
  Table t = MakeSample();
  EXPECT_EQ(t.DoubleColumnNames(), (std::vector<std::string>{"age"}));
}

TEST(TableTest, ByteSizeTracksPayload) {
  Table t = MakeSample();
  uint64_t base = t.ByteSize();
  ASSERT_TRUE(t.AddDoubleColumn("extra", {1, 2, 3}).ok());
  EXPECT_GT(t.ByteSize(), base);
}

}  // namespace
}  // namespace mlcask::data
