#include "merge/prioritized.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "sim/scenario.h"

namespace mlcask::merge {
namespace {

class PrioritizedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = sim::MakeDeployment("readmission", /*scale=*/0.08);
    MLCASK_CHECK_OK(d.status());
    deployment_ = std::move(d).value();
    MLCASK_CHECK_OK(sim::BuildTwoBranchScenario(deployment_.get()).status());
    search_ = std::make_unique<PrioritizedSearch>(
        deployment_->repo.get(), deployment_->libraries.get(),
        deployment_->registry.get(), deployment_->engine.get());
    MLCASK_CHECK_OK(search_->Prepare("master", "dev"));
  }

  std::unique_ptr<sim::Deployment> deployment_;
  std::unique_ptr<PrioritizedSearch> search_;
};

TEST_F(PrioritizedTest, PrepareFindsPrunedCandidates) {
  EXPECT_EQ(search_->num_candidates(), 10u);
}

TEST_F(PrioritizedTest, TrialVisitsEveryCandidateExactlyOnce) {
  for (SearchMode mode : {SearchMode::kPrioritized, SearchMode::kRandom}) {
    auto trial = search_->RunTrial(mode, 1);
    ASSERT_TRUE(trial.ok());
    ASSERT_EQ(trial->steps.size(), 10u);
    std::set<size_t> seen;
    for (const SearchStep& s : trial->steps) {
      EXPECT_TRUE(seen.insert(s.candidate_index).second)
          << "candidate visited twice";
    }
    EXPECT_EQ(seen.size(), 10u);
  }
}

TEST_F(PrioritizedTest, EndTimesAreMonotone) {
  auto trial = search_->RunTrial(SearchMode::kPrioritized, 2);
  ASSERT_TRUE(trial.ok());
  double prev = -1;
  for (const SearchStep& s : trial->steps) {
    EXPECT_GE(s.end_time_s, prev);
    prev = s.end_time_s;
  }
}

TEST_F(PrioritizedTest, BestScoreAndStepsToOptimalConsistent) {
  auto trial = search_->RunTrial(SearchMode::kPrioritized, 3);
  ASSERT_TRUE(trial.ok());
  double best = 0;
  for (const SearchStep& s : trial->steps) best = std::max(best, s.score);
  EXPECT_DOUBLE_EQ(trial->best_score, best);
  ASSERT_GE(trial->steps_to_optimal, 1u);
  ASSERT_LE(trial->steps_to_optimal, trial->steps.size());
  EXPECT_DOUBLE_EQ(trial->steps[trial->steps_to_optimal - 1].score, best);
  for (size_t i = 0; i + 1 < trial->steps_to_optimal; ++i) {
    EXPECT_LT(trial->steps[i].score, best);
  }
}

TEST_F(PrioritizedTest, RandomOrderVariesBySeed) {
  auto a = search_->RunTrial(SearchMode::kRandom, 1);
  auto b = search_->RunTrial(SearchMode::kRandom, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<size_t> order_a, order_b;
  for (const auto& s : a->steps) order_a.push_back(s.candidate_index);
  for (const auto& s : b->steps) order_b.push_back(s.candidate_index);
  EXPECT_NE(order_a, order_b);
}

TEST_F(PrioritizedTest, PrioritizedFindsOptimalEarlierOnAverage) {
  // Table I's claim, in expectation over trials: prioritized search reaches
  // the optimal pipeline in fewer steps than random search.
  const int kTrials = 20;
  double prioritized_sum = 0, random_sum = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto p = search_->RunTrial(SearchMode::kPrioritized,
                               static_cast<uint64_t>(t) + 1);
    auto r =
        search_->RunTrial(SearchMode::kRandom, static_cast<uint64_t>(t) + 1);
    ASSERT_TRUE(p.ok() && r.ok());
    prioritized_sum += static_cast<double>(p->steps_to_optimal);
    random_sum += static_cast<double>(r->steps_to_optimal);
  }
  EXPECT_LT(prioritized_sum / kTrials, random_sum / kTrials);
}

TEST_F(PrioritizedTest, HistoryScoresSeedTheSearch) {
  // Pipelines trained on HEAD / MERGE_HEAD provide initial scores; the
  // Fig. 3 scenario has 5 of them among the 10 candidates.
  const auto& init = search_->initial_scores();
  EXPECT_EQ(init.size(), 5u);
  for (const auto& [index, score] : init) {
    EXPECT_LT(index, search_->num_candidates());
    EXPECT_GT(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_F(PrioritizedTest, FirstVisitIsTheBestHistoricalCandidate) {
  // Greedy descent must start at the candidate whose seeded (historical)
  // score is maximal — that is what "higher score pipelines are searched
  // earlier" means before any new information arrives.
  const auto& init = search_->initial_scores();
  ASSERT_FALSE(init.empty());
  size_t best_index = 0;
  double best_score = -1;
  for (const auto& [index, score] : init) {
    if (score > best_score) {
      best_score = score;
      best_index = index;
    }
  }
  for (uint64_t seed : {100, 200, 300}) {
    auto trial = search_->RunTrial(SearchMode::kPrioritized, seed);
    ASSERT_TRUE(trial.ok());
    EXPECT_EQ(trial->steps.front().candidate_index, best_index);
  }
}

TEST_F(PrioritizedTest, CheckpointedCandidatesAreFree) {
  // The 5 historical candidates reuse their checkpoints: they finish at
  // sim-time ~0; the 5 new candidates cost real pipeline time.
  auto trial = search_->RunTrial(SearchMode::kPrioritized, 7);
  ASSERT_TRUE(trial.ok());
  size_t free_runs = 0;
  for (const SearchStep& s : trial->steps) {
    if (s.end_time_s < 1e-9) ++free_runs;
  }
  EXPECT_GE(free_runs, 3u);
  EXPECT_GT(trial->steps.back().end_time_s, 1.0);
}

TEST_F(PrioritizedTest, RunTrialBeforePrepareFails) {
  PrioritizedSearch fresh(deployment_->repo.get(),
                          deployment_->libraries.get(),
                          deployment_->registry.get(),
                          deployment_->engine.get());
  EXPECT_EQ(fresh.RunTrial(SearchMode::kRandom, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mlcask::merge
