#include "baselines/system_under_test.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/libraries.h"
#include "sim/linear_driver.h"
#include "sim/workloads.h"

namespace mlcask::baselines {
namespace {

class LinearVersioningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MLCASK_CHECK_OK(sim::RegisterWorkloadLibraries(&registry_));
    // Scale 0.3 keeps real compute fast while the simulated execution time
    // still dominates storage latency, as it does at the paper's scale.
    auto w = sim::MakeWorkload("readmission", /*scale=*/0.3);
    MLCASK_CHECK_OK(w.status());
    workload_ = *std::move(w);
    auto schedule = sim::BuildLinearSchedule(workload_, {});
    MLCASK_CHECK_OK(schedule.status());
    schedule_ = *std::move(schedule);
  }

  std::vector<IterationStats> Replay(const SystemConfig& config) {
    SystemUnderTest system(config, &registry_);
    auto stats = sim::ReplaySchedule(schedule_, &system);
    MLCASK_CHECK_OK(stats.status());
    return *std::move(stats);
  }

  pipeline::LibraryRegistry registry_;
  sim::Workload workload_;
  std::vector<sim::ScheduledIteration> schedule_;
};

TEST_F(LinearVersioningTest, ScheduleShape) {
  ASSERT_EQ(schedule_.size(), 10u);
  // Iteration 0 archives every component.
  EXPECT_EQ(schedule_[0].updated_components.size(),
            workload_.initial.size());
  // Later iterations update exactly one component.
  for (size_t i = 1; i < schedule_.size(); ++i) {
    EXPECT_EQ(schedule_[i].updated_components.size(), 1u) << i;
  }
  // The last iteration injects the incompatibility (schema bump without a
  // downstream adaptation).
  EXPECT_TRUE(schedule_.back().pipeline.CheckCompatibility().IsIncompatible());
  for (size_t i = 0; i + 1 < schedule_.size(); ++i) {
    EXPECT_TRUE(schedule_[i].pipeline.CheckCompatibility().ok()) << i;
  }
}

TEST_F(LinearVersioningTest, ScheduleIsDeterministic) {
  auto again = sim::BuildLinearSchedule(workload_, {});
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), schedule_.size());
  for (size_t i = 0; i < schedule_.size(); ++i) {
    EXPECT_EQ((*again)[i].updated_components[0].Key(),
              schedule_[i].updated_components[0].Key());
  }
}

TEST_F(LinearVersioningTest, UpdateMixFollowsProbabilities) {
  // Over a long schedule, ~40% pre-processor updates / ~60% model updates.
  sim::LinearProtocolOptions opts;
  opts.iterations = 400;
  opts.final_incompatibility = false;
  auto schedule = sim::BuildLinearSchedule(workload_, opts);
  ASSERT_TRUE(schedule.ok());
  int pre = 0, model = 0;
  for (size_t i = 1; i < schedule->size(); ++i) {
    const auto& updated = (*schedule)[i].updated_components[0];
    if (updated.name == workload_.model) {
      ++model;
    } else {
      ++pre;
    }
  }
  double frac_pre = static_cast<double>(pre) / (pre + model);
  EXPECT_NEAR(frac_pre, 0.4, 0.08);
}

TEST_F(LinearVersioningTest, ModelDbRerunsEverythingEveryIteration) {
  auto stats = Replay(ModelDbConfig());
  ASSERT_EQ(stats.size(), 10u);
  // Every compatible iteration costs roughly the full pipeline time: the
  // per-iteration time never collapses toward zero.
  double first = stats[0].time.Total();
  for (size_t i = 1; i + 1 < stats.size(); ++i) {
    EXPECT_GT(stats[i].time.Total(), first * 0.5) << i;
  }
  // The incompatible final iteration fails mid-run, still costing time.
  EXPECT_TRUE(stats.back().failed_at_runtime);
  EXPECT_GT(stats.back().time.Total(), 0.0);
}

TEST_F(LinearVersioningTest, MlflowSkipsUnchangedPrefixes) {
  auto modeldb = Replay(ModelDbConfig());
  auto mlflow = Replay(MlflowConfig());
  // Same schedule, but MLflow's cumulative time is strictly smaller because
  // unchanged prefixes are reused.
  EXPECT_LT(mlflow.back().total_time_s, modeldb.back().total_time_s);
  // A model-only update iteration should cost MLflow almost no
  // pre-processing time.
  for (size_t i = 1; i + 1 < schedule_.size(); ++i) {
    if (schedule_[i].updated_components[0].name == workload_.model) {
      EXPECT_LT(mlflow[i].time.preprocess_s, 1e-9) << i;
    }
  }
}

TEST_F(LinearVersioningTest, MlcaskSkipsTheIncompatibleIteration) {
  auto mlcask = Replay(MlcaskConfig());
  EXPECT_TRUE(mlcask.back().skipped_incompatible);
  EXPECT_FALSE(mlcask.back().failed_at_runtime);
  // No execution time in the final iteration (only the library archive).
  EXPECT_DOUBLE_EQ(mlcask.back().time.preprocess_s, 0.0);
  EXPECT_DOUBLE_EQ(mlcask.back().time.train_s, 0.0);
}

TEST_F(LinearVersioningTest, TotalTimeOrderingMatchesFig5) {
  auto modeldb = Replay(ModelDbConfig());
  auto mlflow = Replay(MlflowConfig());
  auto mlcask = Replay(MlcaskConfig());
  EXPECT_GT(modeldb.back().total_time_s, mlflow.back().total_time_s);
  EXPECT_GT(mlflow.back().total_time_s, mlcask.back().total_time_s);
}

TEST_F(LinearVersioningTest, StorageOrderingMatchesFig7) {
  auto modeldb = Replay(ModelDbConfig());
  auto mlflow = Replay(MlflowConfig());
  auto mlcask = Replay(MlcaskConfig());
  // CSS is monotone for all systems.
  for (const auto* run : {&modeldb, &mlflow, &mlcask}) {
    for (size_t i = 1; i < run->size(); ++i) {
      EXPECT_GE((*run)[i].css_bytes, (*run)[i - 1].css_bytes);
    }
  }
  // ModelDB > MLflow (output reuse) > MLCask (chunk dedup on libraries and
  // outputs).
  EXPECT_GT(modeldb.back().css_bytes, mlflow.back().css_bytes);
  EXPECT_GT(mlflow.back().css_bytes, mlcask.back().css_bytes);
}

TEST_F(LinearVersioningTest, MlcaskPaysMoreStorageTimePerByte) {
  // Fig. 6's storage-time observation: the baselines materialize outputs
  // almost instantaneously; MLCask's immutable engine takes longer per
  // write. Compare first-iteration storage time (same bytes written).
  auto mlflow = Replay(MlflowConfig());
  auto mlcask = Replay(MlcaskConfig());
  EXPECT_GT(mlcask[0].time.storage_s, mlflow[0].time.storage_s);
}

TEST(SyntheticExecutableTest, StableAndVersionSensitive) {
  pipeline::ComponentVersionSpec spec;
  spec.name = "feature_extract";
  spec.impl = "x";
  std::string a = SyntheticExecutable(spec, 64 * 1024);
  std::string b = SyntheticExecutable(spec, 64 * 1024);
  EXPECT_EQ(a, b);  // deterministic

  pipeline::ComponentVersionSpec next = spec;
  next.version = spec.version.BumpIncrement();
  std::string c = SyntheticExecutable(next, 64 * 1024);
  ASSERT_EQ(c.size(), a.size());
  // Differs, but only in a small fraction of bytes (the "code edit").
  size_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != c[i]) ++diff;
  }
  EXPECT_GT(diff, 0u);
  EXPECT_LT(diff, a.size() / 8);
}

TEST(SyntheticExecutableTest, DifferentComponentsDiffer) {
  pipeline::ComponentVersionSpec a, b;
  a.name = "cnn";
  b.name = "hmm";
  a.impl = b.impl = "x";
  EXPECT_NE(SyntheticExecutable(a, 4096), SyntheticExecutable(b, 4096));
}

}  // namespace
}  // namespace mlcask::baselines
