#include "storage/chunker.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"

namespace mlcask::storage {
namespace {

std::string RandomBytes(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextU32() & 0xff);
  return out;
}

void ExpectCovers(const std::vector<std::pair<size_t, size_t>>& pieces,
                  size_t total) {
  size_t expected_off = 0;
  for (const auto& [off, len] : pieces) {
    EXPECT_EQ(off, expected_off);
    EXPECT_GT(len, 0u);
    expected_off = off + len;
  }
  EXPECT_EQ(expected_off, total);
}

TEST(FixedChunkerTest, EmptyInputNoChunks) {
  FixedChunker c(8);
  EXPECT_TRUE(c.Split("").empty());
}

TEST(FixedChunkerTest, ExactMultiple) {
  FixedChunker c(4);
  auto pieces = c.Split("abcdefgh");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], (std::pair<size_t, size_t>{0, 4}));
  EXPECT_EQ(pieces[1], (std::pair<size_t, size_t>{4, 4}));
}

TEST(FixedChunkerTest, Remainder) {
  FixedChunker c(4);
  auto pieces = c.Split("abcdefghij");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[2], (std::pair<size_t, size_t>{8, 2}));
}

TEST(FixedChunkerTest, CoversArbitraryInput) {
  FixedChunker c(100);
  std::string data = RandomBytes(12345, 1);
  ExpectCovers(c.Split(data), data.size());
}

TEST(GearChunkerTest, EmptyInputNoChunks) {
  GearChunker c;
  EXPECT_TRUE(c.Split("").empty());
}

TEST(GearChunkerTest, CoversInputAndRespectsBounds) {
  GearChunker c(64, 256, 1024);
  std::string data = RandomBytes(100000, 2);
  auto pieces = c.Split(data);
  ExpectCovers(pieces, data.size());
  for (size_t i = 0; i + 1 < pieces.size(); ++i) {  // last piece may be short
    EXPECT_GE(pieces[i].second, 64u);
    EXPECT_LE(pieces[i].second, 1024u);
  }
}

TEST(GearChunkerTest, AverageChunkSizeNearTarget) {
  GearChunker c(256, 1024, 8192);
  std::string data = RandomBytes(1 << 20, 3);
  auto pieces = c.Split(data);
  double avg = static_cast<double>(data.size()) / pieces.size();
  // Gear CDC with min-size clamping lands near (but above) the mask target.
  EXPECT_GT(avg, 512.0);
  EXPECT_LT(avg, 4096.0);
}

TEST(GearChunkerTest, Deterministic) {
  GearChunker a, b;
  std::string data = RandomBytes(50000, 4);
  EXPECT_EQ(a.Split(data), b.Split(data));
}

// The property that matters for de-duplication: editing a region only
// disturbs boundaries near the edit. Chunks after the edit realign.
TEST(GearChunkerTest, BoundariesRealignAfterInsertion) {
  GearChunker c(64, 512, 4096);
  std::string data = RandomBytes(200000, 5);
  std::string edited = data;
  edited.insert(1000, "INSERTED-REGION");

  auto ChunkSet = [&](const std::string& d) {
    std::set<std::string> out;
    for (const auto& [off, len] : c.Split(d)) {
      out.insert(d.substr(off, len));
    }
    return out;
  };
  std::set<std::string> orig = ChunkSet(data);
  std::set<std::string> after = ChunkSet(edited);
  size_t shared = 0;
  for (const auto& ch : after) {
    if (orig.count(ch)) ++shared;
  }
  // The vast majority of chunks must be shared (only those covering the
  // insertion point change).
  EXPECT_GT(shared, after.size() * 8 / 10);
}

TEST(FixedChunkerTest, InsertionDestroysAlignment) {
  FixedChunker c(512);
  std::string data = RandomBytes(200000, 6);
  std::string edited = data;
  edited.insert(100, "X");  // one byte near the front shifts everything

  std::set<std::string> orig;
  for (const auto& [off, len] : c.Split(data)) orig.insert(data.substr(off, len));
  size_t shared = 0;
  auto pieces = c.Split(edited);
  for (const auto& [off, len] : pieces) {
    if (orig.count(edited.substr(off, len))) ++shared;
  }
  // Virtually nothing realigns — this is the fixed-chunking weakness the
  // content-defined chunker exists to fix.
  EXPECT_LT(shared, pieces.size() / 10);
}

TEST(GearChunkerTest, MaxSizeForcedOnLowEntropyData) {
  GearChunker c(64, 256, 512);
  std::string zeros(100000, '\0');  // rolling hash never hits the mask
  auto pieces = c.Split(zeros);
  ExpectCovers(pieces, zeros.size());
  for (size_t i = 0; i + 1 < pieces.size(); ++i) {
    EXPECT_EQ(pieces[i].second, 512u);
  }
}

class ChunkerSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkerSweep, BothChunkersCoverEverySize) {
  size_t n = GetParam();
  std::string data = RandomBytes(n, 7 + n);
  FixedChunker fixed(333);
  GearChunker gear(16, 64, 256);
  ExpectCovers(fixed.Split(data), n);
  ExpectCovers(gear.Split(data), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkerSweep,
                         ::testing::Values(1, 2, 15, 16, 17, 63, 64, 65, 255,
                                           256, 257, 1000, 4096, 10000));

}  // namespace
}  // namespace mlcask::storage
