#include "storage/chunk_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/blob.h"
#include "storage/chunker.h"

namespace mlcask::storage {
namespace {

TEST(ChunkTest, HashIncludesType) {
  EXPECT_NE(Chunk::ComputeHash(ChunkType::kData, "payload"),
            Chunk::ComputeHash(ChunkType::kIndex, "payload"));
  EXPECT_NE(Chunk::ComputeHash(ChunkType::kData, "payload"),
            Chunk::ComputeHash(ChunkType::kMeta, "payload"));
}

TEST(ChunkTest, TypeNames) {
  EXPECT_STREQ(ChunkTypeName(ChunkType::kData), "data");
  EXPECT_STREQ(ChunkTypeName(ChunkType::kIndex), "index");
  EXPECT_STREQ(ChunkTypeName(ChunkType::kMeta), "meta");
}

TEST(ChunkStoreTest, PutGetRoundTrip) {
  ChunkStore store;
  Hash256 h = store.Put(ChunkType::kData, "hello");
  auto got = store.Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->data(), "hello");
  EXPECT_EQ((*got)->type(), ChunkType::kData);
  EXPECT_EQ((*got)->hash(), h);
}

TEST(ChunkStoreTest, GetMissingIsNotFound) {
  ChunkStore store;
  Hash256 h = Chunk::ComputeHash(ChunkType::kData, "never stored");
  EXPECT_TRUE(store.Get(h).status().IsNotFound());
}

TEST(ChunkStoreTest, DeduplicatesIdenticalContent) {
  ChunkStore store;
  Hash256 a = store.Put(ChunkType::kData, "same bytes");
  Hash256 b = store.Put(ChunkType::kData, "same bytes");
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().puts, 2u);
  EXPECT_EQ(store.stats().dedup_hits, 1u);
  EXPECT_EQ(store.stats().logical_bytes, 20u);
  EXPECT_EQ(store.stats().physical_bytes, 10u);
  EXPECT_DOUBLE_EQ(store.stats().DedupRatio(), 2.0);
  EXPECT_EQ(store.RefCount(a), 2u);
}

TEST(ChunkStoreTest, DistinctTypesStoredSeparately) {
  ChunkStore store;
  Hash256 a = store.Put(ChunkType::kData, "x");
  Hash256 b = store.Put(ChunkType::kMeta, "x");
  EXPECT_NE(a, b);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ChunkStoreTest, ReleaseDropsAtZeroRefs) {
  ChunkStore store;
  Hash256 h = store.Put(ChunkType::kData, "refcounted");
  store.Put(ChunkType::kData, "refcounted");
  ASSERT_TRUE(store.Release(h).ok());
  EXPECT_TRUE(store.Contains(h));
  ASSERT_TRUE(store.Release(h).ok());
  EXPECT_FALSE(store.Contains(h));
  EXPECT_EQ(store.stats().physical_bytes, 0u);
  EXPECT_TRUE(store.Release(h).IsNotFound());
}

TEST(BlobTest, WriteReadRoundTripSmall) {
  ChunkStore store;
  GearChunker chunker(16, 64, 256);
  std::string data = "a small blob that fits in very few chunks";
  BlobWriteInfo info = WriteBlob(&store, chunker, data);
  EXPECT_EQ(info.ref.size, data.size());
  auto back = ReadBlob(store, info.ref);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(BlobTest, WriteReadRoundTripLarge) {
  ChunkStore store;
  GearChunker chunker(256, 1024, 4096);
  Pcg32 rng(99);
  std::string data(300000, '\0');
  for (char& c : data) c = static_cast<char>(rng.NextU32() & 0xff);
  BlobWriteInfo info = WriteBlob(&store, chunker, data);
  EXPECT_GT(info.ref.num_chunks, 10u);
  auto back = ReadBlob(store, info.ref);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(BlobTest, EmptyBlob) {
  ChunkStore store;
  FixedChunker chunker(64);
  BlobWriteInfo info = WriteBlob(&store, chunker, "");
  EXPECT_EQ(info.ref.size, 0u);
  EXPECT_EQ(info.ref.num_chunks, 0u);
  auto back = ReadBlob(store, info.ref);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "");
}

TEST(BlobTest, IdenticalBlobsFullyDeduplicated) {
  ChunkStore store;
  GearChunker chunker(64, 256, 1024);
  Pcg32 rng(5);
  std::string data(50000, '\0');
  for (char& c : data) c = static_cast<char>(rng.NextU32() & 0xff);

  BlobWriteInfo first = WriteBlob(&store, chunker, data);
  EXPECT_EQ(first.dedup_bytes, 0u);
  BlobWriteInfo second = WriteBlob(&store, chunker, data);
  EXPECT_EQ(second.new_physical_bytes, 0u);
  EXPECT_GT(second.dedup_bytes, data.size());  // data chunks + index
  EXPECT_EQ(first.ref, second.ref);
}

TEST(BlobTest, SimilarBlobsMostlyDeduplicated) {
  ChunkStore store;
  GearChunker chunker(64, 512, 4096);
  Pcg32 rng(6);
  std::string data(200000, '\0');
  for (char& c : data) c = static_cast<char>(rng.NextU32() & 0xff);

  WriteBlob(&store, chunker, data);
  std::string edited = data;
  edited.insert(50000, "an insertion in the middle");
  BlobWriteInfo second = WriteBlob(&store, chunker, edited);
  // The bulk of the edited blob re-uses existing chunks.
  EXPECT_GT(second.dedup_bytes, second.new_physical_bytes * 4);
  auto back = ReadBlob(store, second.ref);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, edited);
}

TEST(BlobTest, ListChunksMatchesCount) {
  ChunkStore store;
  FixedChunker chunker(100);
  std::string data(950, 'q');
  BlobWriteInfo info = WriteBlob(&store, chunker, data);
  auto chunks = ListBlobChunks(store, info.ref);
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(chunks->size(), info.ref.num_chunks);
  EXPECT_EQ(chunks->size(), 10u);
}

TEST(BlobTest, ReadMissingRootIsNotFound) {
  ChunkStore store;
  BlobRef ref;
  ref.root = Chunk::ComputeHash(ChunkType::kIndex, "nope");
  ref.size = 4;
  EXPECT_TRUE(ReadBlob(store, ref).status().IsNotFound());
}

TEST(BlobTest, CorruptIndexDetected) {
  ChunkStore store;
  // A kIndex chunk whose payload is not a multiple of the entry size.
  Hash256 root = store.Put(ChunkType::kIndex, "short");
  BlobRef ref;
  ref.root = root;
  ref.size = 5;
  EXPECT_EQ(ReadBlob(store, ref).status().code(), StatusCode::kCorruption);
}

TEST(BlobTest, RootMustBeIndexChunk) {
  ChunkStore store;
  Hash256 root = store.Put(ChunkType::kData, "not an index");
  BlobRef ref;
  ref.root = root;
  ref.size = 12;
  EXPECT_EQ(ReadBlob(store, ref).status().code(), StatusCode::kCorruption);
}

TEST(BlobTest, ReleaseBlobFreesChunks) {
  ChunkStore store;
  FixedChunker chunker(64);
  std::string data(1000, 'z');
  BlobWriteInfo info = WriteBlob(&store, chunker, data);
  EXPECT_GT(store.size(), 0u);
  ASSERT_TRUE(ReleaseBlob(&store, info.ref).ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.stats().physical_bytes, 0u);
}

TEST(BlobTest, ReleaseSharedBlobKeepsSharedChunks) {
  ChunkStore store;
  FixedChunker chunker(64);
  std::string data(1000, 'z');
  BlobWriteInfo a = WriteBlob(&store, chunker, data);
  WriteBlob(&store, chunker, data);  // second reference to all chunks
  ASSERT_TRUE(ReleaseBlob(&store, a.ref).ok());
  // Chunks survive because the second blob still references them.
  auto back = ReadBlob(store, a.ref);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

}  // namespace
}  // namespace mlcask::storage
