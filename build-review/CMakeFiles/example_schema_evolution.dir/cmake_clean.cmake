file(REMOVE_RECURSE
  "CMakeFiles/example_schema_evolution.dir/examples/schema_evolution.cpp.o"
  "CMakeFiles/example_schema_evolution.dir/examples/schema_evolution.cpp.o.d"
  "example_schema_evolution"
  "example_schema_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schema_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
