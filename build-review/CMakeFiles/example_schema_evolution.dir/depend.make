# Empty dependencies file for example_schema_evolution.
# This may be replaced when dependencies are built.
