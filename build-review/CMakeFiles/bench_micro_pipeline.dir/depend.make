# Empty dependencies file for bench_micro_pipeline.
# This may be replaced when dependencies are built.
