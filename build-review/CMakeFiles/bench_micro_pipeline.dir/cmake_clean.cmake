file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pipeline.dir/bench/micro_pipeline.cc.o"
  "CMakeFiles/bench_micro_pipeline.dir/bench/micro_pipeline.cc.o.d"
  "bench_micro_pipeline"
  "bench_micro_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
