# Empty dependencies file for test_execution_core.
# This may be replaced when dependencies are built.
