file(REMOVE_RECURSE
  "CMakeFiles/test_execution_core.dir/tests/test_execution_core.cc.o"
  "CMakeFiles/test_execution_core.dir/tests/test_execution_core.cc.o.d"
  "test_execution_core"
  "test_execution_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
