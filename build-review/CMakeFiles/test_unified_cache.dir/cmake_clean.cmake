file(REMOVE_RECURSE
  "CMakeFiles/test_unified_cache.dir/tests/test_unified_cache.cc.o"
  "CMakeFiles/test_unified_cache.dir/tests/test_unified_cache.cc.o.d"
  "test_unified_cache"
  "test_unified_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unified_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
