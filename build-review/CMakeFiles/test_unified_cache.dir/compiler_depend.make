# Empty compiler generated dependencies file for test_unified_cache.
# This may be replaced when dependencies are built.
