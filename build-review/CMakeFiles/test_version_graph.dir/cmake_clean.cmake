file(REMOVE_RECURSE
  "CMakeFiles/test_version_graph.dir/tests/test_version_graph.cc.o"
  "CMakeFiles/test_version_graph.dir/tests/test_version_graph.cc.o.d"
  "test_version_graph"
  "test_version_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_version_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
