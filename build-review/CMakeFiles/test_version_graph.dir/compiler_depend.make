# Empty compiler generated dependencies file for test_version_graph.
# This may be replaced when dependencies are built.
