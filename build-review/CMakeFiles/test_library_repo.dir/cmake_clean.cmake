file(REMOVE_RECURSE
  "CMakeFiles/test_library_repo.dir/tests/test_library_repo.cc.o"
  "CMakeFiles/test_library_repo.dir/tests/test_library_repo.cc.o.d"
  "test_library_repo"
  "test_library_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_library_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
