# Empty dependencies file for test_library_repo.
# This may be replaced when dependencies are built.
