file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_time_composition.dir/bench/fig6_time_composition.cc.o"
  "CMakeFiles/bench_fig6_time_composition.dir/bench/fig6_time_composition.cc.o.d"
  "bench_fig6_time_composition"
  "bench_fig6_time_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_time_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
