# Empty compiler generated dependencies file for bench_fig6_time_composition.
# This may be replaced when dependencies are built.
