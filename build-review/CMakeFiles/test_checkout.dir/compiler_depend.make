# Empty compiler generated dependencies file for test_checkout.
# This may be replaced when dependencies are built.
