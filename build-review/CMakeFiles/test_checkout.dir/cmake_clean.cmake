file(REMOVE_RECURSE
  "CMakeFiles/test_checkout.dir/tests/test_checkout.cc.o"
  "CMakeFiles/test_checkout.dir/tests/test_checkout.cc.o.d"
  "test_checkout"
  "test_checkout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
