# Empty compiler generated dependencies file for test_dag_executor.
# This may be replaced when dependencies are built.
