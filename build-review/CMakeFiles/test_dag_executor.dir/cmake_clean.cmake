file(REMOVE_RECURSE
  "CMakeFiles/test_dag_executor.dir/tests/test_dag_executor.cc.o"
  "CMakeFiles/test_dag_executor.dir/tests/test_dag_executor.cc.o.d"
  "test_dag_executor"
  "test_dag_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
