file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prioritized_search.dir/bench/fig10_prioritized_search.cc.o"
  "CMakeFiles/bench_fig10_prioritized_search.dir/bench/fig10_prioritized_search.cc.o.d"
  "bench_fig10_prioritized_search"
  "bench_fig10_prioritized_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prioritized_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
