# Empty compiler generated dependencies file for bench_fig10_prioritized_search.
# This may be replaced when dependencies are built.
