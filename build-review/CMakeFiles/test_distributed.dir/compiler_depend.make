# Empty compiler generated dependencies file for test_distributed.
# This may be replaced when dependencies are built.
