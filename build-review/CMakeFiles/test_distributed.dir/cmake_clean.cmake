file(REMOVE_RECURSE
  "CMakeFiles/test_distributed.dir/tests/test_distributed.cc.o"
  "CMakeFiles/test_distributed.dir/tests/test_distributed.cc.o.d"
  "test_distributed"
  "test_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
