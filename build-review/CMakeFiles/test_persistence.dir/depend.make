# Empty dependencies file for test_persistence.
# This may be replaced when dependencies are built.
