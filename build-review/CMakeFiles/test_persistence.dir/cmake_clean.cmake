file(REMOVE_RECURSE
  "CMakeFiles/test_persistence.dir/tests/test_persistence.cc.o"
  "CMakeFiles/test_persistence.dir/tests/test_persistence.cc.o.d"
  "test_persistence"
  "test_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
