# Empty compiler generated dependencies file for mlcask.
# This may be replaced when dependencies are built.
