
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/system_under_test.cc" "CMakeFiles/mlcask.dir/src/baselines/system_under_test.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/baselines/system_under_test.cc.o.d"
  "/root/repo/src/common/json.cc" "CMakeFiles/mlcask.dir/src/common/json.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/common/json.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/mlcask.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/sha256.cc" "CMakeFiles/mlcask.dir/src/common/sha256.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/common/sha256.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/mlcask.dir/src/common/status.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "CMakeFiles/mlcask.dir/src/common/strings.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/common/strings.cc.o.d"
  "/root/repo/src/data/generators.cc" "CMakeFiles/mlcask.dir/src/data/generators.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/data/generators.cc.o.d"
  "/root/repo/src/data/schema.cc" "CMakeFiles/mlcask.dir/src/data/schema.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "CMakeFiles/mlcask.dir/src/data/table.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/data/table.cc.o.d"
  "/root/repo/src/merge/compat_lut.cc" "CMakeFiles/mlcask.dir/src/merge/compat_lut.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/merge/compat_lut.cc.o.d"
  "/root/repo/src/merge/merge_op.cc" "CMakeFiles/mlcask.dir/src/merge/merge_op.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/merge/merge_op.cc.o.d"
  "/root/repo/src/merge/prioritized.cc" "CMakeFiles/mlcask.dir/src/merge/prioritized.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/merge/prioritized.cc.o.d"
  "/root/repo/src/merge/search_space.cc" "CMakeFiles/mlcask.dir/src/merge/search_space.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/merge/search_space.cc.o.d"
  "/root/repo/src/merge/search_tree.cc" "CMakeFiles/mlcask.dir/src/merge/search_tree.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/merge/search_tree.cc.o.d"
  "/root/repo/src/ml/adaboost.cc" "CMakeFiles/mlcask.dir/src/ml/adaboost.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/adaboost.cc.o.d"
  "/root/repo/src/ml/autolearn.cc" "CMakeFiles/mlcask.dir/src/ml/autolearn.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/autolearn.cc.o.d"
  "/root/repo/src/ml/embedding.cc" "CMakeFiles/mlcask.dir/src/ml/embedding.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/embedding.cc.o.d"
  "/root/repo/src/ml/hmm.cc" "CMakeFiles/mlcask.dir/src/ml/hmm.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/hmm.cc.o.d"
  "/root/repo/src/ml/logreg.cc" "CMakeFiles/mlcask.dir/src/ml/logreg.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/logreg.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "CMakeFiles/mlcask.dir/src/ml/matrix.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "CMakeFiles/mlcask.dir/src/ml/metrics.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "CMakeFiles/mlcask.dir/src/ml/mlp.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/mlp.cc.o.d"
  "/root/repo/src/ml/train_eval.cc" "CMakeFiles/mlcask.dir/src/ml/train_eval.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/train_eval.cc.o.d"
  "/root/repo/src/ml/zernike.cc" "CMakeFiles/mlcask.dir/src/ml/zernike.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/ml/zernike.cc.o.d"
  "/root/repo/src/pipeline/artifact_cache.cc" "CMakeFiles/mlcask.dir/src/pipeline/artifact_cache.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/artifact_cache.cc.o.d"
  "/root/repo/src/pipeline/checkout.cc" "CMakeFiles/mlcask.dir/src/pipeline/checkout.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/checkout.cc.o.d"
  "/root/repo/src/pipeline/component.cc" "CMakeFiles/mlcask.dir/src/pipeline/component.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/component.cc.o.d"
  "/root/repo/src/pipeline/execution_core.cc" "CMakeFiles/mlcask.dir/src/pipeline/execution_core.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/execution_core.cc.o.d"
  "/root/repo/src/pipeline/executor.cc" "CMakeFiles/mlcask.dir/src/pipeline/executor.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/executor.cc.o.d"
  "/root/repo/src/pipeline/library_registry.cc" "CMakeFiles/mlcask.dir/src/pipeline/library_registry.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/library_registry.cc.o.d"
  "/root/repo/src/pipeline/library_repo.cc" "CMakeFiles/mlcask.dir/src/pipeline/library_repo.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/library_repo.cc.o.d"
  "/root/repo/src/pipeline/pipeline.cc" "CMakeFiles/mlcask.dir/src/pipeline/pipeline.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/pipeline/pipeline.cc.o.d"
  "/root/repo/src/sim/distributed.cc" "CMakeFiles/mlcask.dir/src/sim/distributed.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/sim/distributed.cc.o.d"
  "/root/repo/src/sim/libraries.cc" "CMakeFiles/mlcask.dir/src/sim/libraries.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/sim/libraries.cc.o.d"
  "/root/repo/src/sim/linear_driver.cc" "CMakeFiles/mlcask.dir/src/sim/linear_driver.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/sim/linear_driver.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "CMakeFiles/mlcask.dir/src/sim/scenario.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/sim/scenario.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "CMakeFiles/mlcask.dir/src/sim/workloads.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/sim/workloads.cc.o.d"
  "/root/repo/src/storage/blob.cc" "CMakeFiles/mlcask.dir/src/storage/blob.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/blob.cc.o.d"
  "/root/repo/src/storage/branch_table.cc" "CMakeFiles/mlcask.dir/src/storage/branch_table.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/branch_table.cc.o.d"
  "/root/repo/src/storage/chunk.cc" "CMakeFiles/mlcask.dir/src/storage/chunk.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/chunk.cc.o.d"
  "/root/repo/src/storage/chunk_store.cc" "CMakeFiles/mlcask.dir/src/storage/chunk_store.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/chunk_store.cc.o.d"
  "/root/repo/src/storage/chunker.cc" "CMakeFiles/mlcask.dir/src/storage/chunker.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/chunker.cc.o.d"
  "/root/repo/src/storage/forkbase_engine.cc" "CMakeFiles/mlcask.dir/src/storage/forkbase_engine.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/forkbase_engine.cc.o.d"
  "/root/repo/src/storage/local_dir_engine.cc" "CMakeFiles/mlcask.dir/src/storage/local_dir_engine.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/local_dir_engine.cc.o.d"
  "/root/repo/src/storage/persistence.cc" "CMakeFiles/mlcask.dir/src/storage/persistence.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/storage/persistence.cc.o.d"
  "/root/repo/src/version/commit.cc" "CMakeFiles/mlcask.dir/src/version/commit.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/version/commit.cc.o.d"
  "/root/repo/src/version/gc.cc" "CMakeFiles/mlcask.dir/src/version/gc.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/version/gc.cc.o.d"
  "/root/repo/src/version/history_query.cc" "CMakeFiles/mlcask.dir/src/version/history_query.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/version/history_query.cc.o.d"
  "/root/repo/src/version/pipeline_repo.cc" "CMakeFiles/mlcask.dir/src/version/pipeline_repo.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/version/pipeline_repo.cc.o.d"
  "/root/repo/src/version/semver.cc" "CMakeFiles/mlcask.dir/src/version/semver.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/version/semver.cc.o.d"
  "/root/repo/src/version/version_graph.cc" "CMakeFiles/mlcask.dir/src/version/version_graph.cc.o" "gcc" "CMakeFiles/mlcask.dir/src/version/version_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
