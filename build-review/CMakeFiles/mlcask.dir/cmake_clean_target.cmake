file(REMOVE_RECURSE
  "libmlcask.a"
)
