# Empty dependencies file for test_storage_engine.
# This may be replaced when dependencies are built.
