file(REMOVE_RECURSE
  "CMakeFiles/test_storage_engine.dir/tests/test_storage_engine.cc.o"
  "CMakeFiles/test_storage_engine.dir/tests/test_storage_engine.cc.o.d"
  "test_storage_engine"
  "test_storage_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
