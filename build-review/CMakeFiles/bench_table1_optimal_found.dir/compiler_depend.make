# Empty compiler generated dependencies file for bench_table1_optimal_found.
# This may be replaced when dependencies are built.
