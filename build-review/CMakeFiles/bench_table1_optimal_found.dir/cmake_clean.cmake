file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_optimal_found.dir/bench/table1_optimal_found.cc.o"
  "CMakeFiles/bench_table1_optimal_found.dir/bench/table1_optimal_found.cc.o.d"
  "bench_table1_optimal_found"
  "bench_table1_optimal_found.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_optimal_found.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
