# Empty compiler generated dependencies file for test_pipeline.
# This may be replaced when dependencies are built.
