file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_store.dir/tests/test_chunk_store.cc.o"
  "CMakeFiles/test_chunk_store.dir/tests/test_chunk_store.cc.o.d"
  "test_chunk_store"
  "test_chunk_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
