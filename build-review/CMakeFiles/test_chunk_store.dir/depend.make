# Empty dependencies file for test_chunk_store.
# This may be replaced when dependencies are built.
