# Empty compiler generated dependencies file for test_ml_features.
# This may be replaced when dependencies are built.
