file(REMOVE_RECURSE
  "CMakeFiles/test_ml_features.dir/tests/test_ml_features.cc.o"
  "CMakeFiles/test_ml_features.dir/tests/test_ml_features.cc.o.d"
  "test_ml_features"
  "test_ml_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
