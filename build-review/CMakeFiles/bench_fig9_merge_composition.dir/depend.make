# Empty dependencies file for bench_fig9_merge_composition.
# This may be replaced when dependencies are built.
