file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_merge_composition.dir/bench/fig9_merge_composition.cc.o"
  "CMakeFiles/bench_fig9_merge_composition.dir/bench/fig9_merge_composition.cc.o.d"
  "bench_fig9_merge_composition"
  "bench_fig9_merge_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_merge_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
