# Empty dependencies file for test_parallel_search.
# This may be replaced when dependencies are built.
