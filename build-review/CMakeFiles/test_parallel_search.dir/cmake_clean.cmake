file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_search.dir/tests/test_parallel_search.cc.o"
  "CMakeFiles/test_parallel_search.dir/tests/test_parallel_search.cc.o.d"
  "test_parallel_search"
  "test_parallel_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
