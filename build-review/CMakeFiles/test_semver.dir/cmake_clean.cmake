file(REMOVE_RECURSE
  "CMakeFiles/test_semver.dir/tests/test_semver.cc.o"
  "CMakeFiles/test_semver.dir/tests/test_semver.cc.o.d"
  "test_semver"
  "test_semver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
