# Empty compiler generated dependencies file for test_semver.
# This may be replaced when dependencies are built.
