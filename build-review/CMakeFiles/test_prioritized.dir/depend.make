# Empty dependencies file for test_prioritized.
# This may be replaced when dependencies are built.
