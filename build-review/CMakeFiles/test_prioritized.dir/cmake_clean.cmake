file(REMOVE_RECURSE
  "CMakeFiles/test_prioritized.dir/tests/test_prioritized.cc.o"
  "CMakeFiles/test_prioritized.dir/tests/test_prioritized.cc.o.d"
  "test_prioritized"
  "test_prioritized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prioritized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
