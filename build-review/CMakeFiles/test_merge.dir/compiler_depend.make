# Empty compiler generated dependencies file for test_merge.
# This may be replaced when dependencies are built.
