file(REMOVE_RECURSE
  "CMakeFiles/test_merge.dir/tests/test_merge.cc.o"
  "CMakeFiles/test_merge.dir/tests/test_merge.cc.o.d"
  "test_merge"
  "test_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
