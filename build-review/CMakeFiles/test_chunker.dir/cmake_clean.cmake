file(REMOVE_RECURSE
  "CMakeFiles/test_chunker.dir/tests/test_chunker.cc.o"
  "CMakeFiles/test_chunker.dir/tests/test_chunker.cc.o.d"
  "test_chunker"
  "test_chunker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
