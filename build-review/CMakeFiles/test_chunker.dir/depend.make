# Empty dependencies file for test_chunker.
# This may be replaced when dependencies are built.
