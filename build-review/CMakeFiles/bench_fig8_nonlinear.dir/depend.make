# Empty dependencies file for bench_fig8_nonlinear.
# This may be replaced when dependencies are built.
