file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_nonlinear.dir/bench/fig8_nonlinear.cc.o"
  "CMakeFiles/bench_fig8_nonlinear.dir/bench/fig8_nonlinear.cc.o.d"
  "bench_fig8_nonlinear"
  "bench_fig8_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
