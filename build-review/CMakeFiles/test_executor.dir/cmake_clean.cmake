file(REMOVE_RECURSE
  "CMakeFiles/test_executor.dir/tests/test_executor.cc.o"
  "CMakeFiles/test_executor.dir/tests/test_executor.cc.o.d"
  "test_executor"
  "test_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
