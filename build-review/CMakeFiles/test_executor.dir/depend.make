# Empty dependencies file for test_executor.
# This may be replaced when dependencies are built.
