file(REMOVE_RECURSE
  "CMakeFiles/example_readmission_retraining.dir/examples/readmission_retraining.cpp.o"
  "CMakeFiles/example_readmission_retraining.dir/examples/readmission_retraining.cpp.o.d"
  "example_readmission_retraining"
  "example_readmission_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_readmission_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
