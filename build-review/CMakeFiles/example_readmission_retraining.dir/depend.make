# Empty dependencies file for example_readmission_retraining.
# This may be replaced when dependencies are built.
