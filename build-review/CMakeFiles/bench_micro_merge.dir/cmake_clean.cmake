file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_merge.dir/bench/micro_merge.cc.o"
  "CMakeFiles/bench_micro_merge.dir/bench/micro_merge.cc.o.d"
  "bench_micro_merge"
  "bench_micro_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
