# Empty dependencies file for bench_micro_merge.
# This may be replaced when dependencies are built.
