file(REMOVE_RECURSE
  "CMakeFiles/test_common_util.dir/tests/test_common_util.cc.o"
  "CMakeFiles/test_common_util.dir/tests/test_common_util.cc.o.d"
  "test_common_util"
  "test_common_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
