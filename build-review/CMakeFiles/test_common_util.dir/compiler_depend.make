# Empty compiler generated dependencies file for test_common_util.
# This may be replaced when dependencies are built.
