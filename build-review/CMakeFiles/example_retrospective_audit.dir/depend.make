# Empty dependencies file for example_retrospective_audit.
# This may be replaced when dependencies are built.
