file(REMOVE_RECURSE
  "CMakeFiles/example_retrospective_audit.dir/examples/retrospective_audit.cpp.o"
  "CMakeFiles/example_retrospective_audit.dir/examples/retrospective_audit.cpp.o.d"
  "example_retrospective_audit"
  "example_retrospective_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retrospective_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
