# Empty dependencies file for test_history_query.
# This may be replaced when dependencies are built.
