file(REMOVE_RECURSE
  "CMakeFiles/test_history_query.dir/tests/test_history_query.cc.o"
  "CMakeFiles/test_history_query.dir/tests/test_history_query.cc.o.d"
  "test_history_query"
  "test_history_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
