# Empty compiler generated dependencies file for test_multi_metric.
# This may be replaced when dependencies are built.
