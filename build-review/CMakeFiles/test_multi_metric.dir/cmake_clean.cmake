file(REMOVE_RECURSE
  "CMakeFiles/test_multi_metric.dir/tests/test_multi_metric.cc.o"
  "CMakeFiles/test_multi_metric.dir/tests/test_multi_metric.cc.o.d"
  "test_multi_metric"
  "test_multi_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
