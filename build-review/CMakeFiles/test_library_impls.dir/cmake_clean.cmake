file(REMOVE_RECURSE
  "CMakeFiles/test_library_impls.dir/tests/test_library_impls.cc.o"
  "CMakeFiles/test_library_impls.dir/tests/test_library_impls.cc.o.d"
  "test_library_impls"
  "test_library_impls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_library_impls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
