# Empty compiler generated dependencies file for test_library_impls.
# This may be replaced when dependencies are built.
