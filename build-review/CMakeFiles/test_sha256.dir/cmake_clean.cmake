file(REMOVE_RECURSE
  "CMakeFiles/test_sha256.dir/tests/test_sha256.cc.o"
  "CMakeFiles/test_sha256.dir/tests/test_sha256.cc.o.d"
  "test_sha256"
  "test_sha256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
