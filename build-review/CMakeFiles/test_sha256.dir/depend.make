# Empty dependencies file for test_sha256.
# This may be replaced when dependencies are built.
