# Empty dependencies file for bench_fig11_distributed.
# This may be replaced when dependencies are built.
