file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_distributed.dir/bench/fig11_distributed.cc.o"
  "CMakeFiles/bench_fig11_distributed.dir/bench/fig11_distributed.cc.o.d"
  "bench_fig11_distributed"
  "bench_fig11_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
