file(REMOVE_RECURSE
  "CMakeFiles/example_collaborative_merge.dir/examples/collaborative_merge.cpp.o"
  "CMakeFiles/example_collaborative_merge.dir/examples/collaborative_merge.cpp.o.d"
  "example_collaborative_merge"
  "example_collaborative_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_collaborative_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
