# Empty dependencies file for example_collaborative_merge.
# This may be replaced when dependencies are built.
