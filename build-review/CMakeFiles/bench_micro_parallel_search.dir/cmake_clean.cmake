file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_parallel_search.dir/bench/micro_parallel_search.cc.o"
  "CMakeFiles/bench_micro_parallel_search.dir/bench/micro_parallel_search.cc.o.d"
  "bench_micro_parallel_search"
  "bench_micro_parallel_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_parallel_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
