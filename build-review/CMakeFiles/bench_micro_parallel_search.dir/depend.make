# Empty dependencies file for bench_micro_parallel_search.
# This may be replaced when dependencies are built.
