# Empty dependencies file for bench_fig7_linear_storage.
# This may be replaced when dependencies are built.
