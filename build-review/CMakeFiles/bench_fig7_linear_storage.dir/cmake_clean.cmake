file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_linear_storage.dir/bench/fig7_linear_storage.cc.o"
  "CMakeFiles/bench_fig7_linear_storage.dir/bench/fig7_linear_storage.cc.o.d"
  "bench_fig7_linear_storage"
  "bench_fig7_linear_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_linear_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
