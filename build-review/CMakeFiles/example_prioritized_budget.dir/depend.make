# Empty dependencies file for example_prioritized_budget.
# This may be replaced when dependencies are built.
