file(REMOVE_RECURSE
  "CMakeFiles/example_prioritized_budget.dir/examples/prioritized_budget.cpp.o"
  "CMakeFiles/example_prioritized_budget.dir/examples/prioritized_budget.cpp.o.d"
  "example_prioritized_budget"
  "example_prioritized_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_prioritized_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
