file(REMOVE_RECURSE
  "CMakeFiles/example_dag_fusion.dir/examples/dag_fusion.cpp.o"
  "CMakeFiles/example_dag_fusion.dir/examples/dag_fusion.cpp.o.d"
  "example_dag_fusion"
  "example_dag_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dag_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
