# Empty compiler generated dependencies file for example_dag_fusion.
# This may be replaced when dependencies are built.
