file(REMOVE_RECURSE
  "CMakeFiles/test_storage_concurrency.dir/tests/test_storage_concurrency.cc.o"
  "CMakeFiles/test_storage_concurrency.dir/tests/test_storage_concurrency.cc.o.d"
  "test_storage_concurrency"
  "test_storage_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
