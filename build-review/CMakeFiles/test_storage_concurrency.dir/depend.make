# Empty dependencies file for test_storage_concurrency.
# This may be replaced when dependencies are built.
