# Empty dependencies file for bench_fig5_linear_total_time.
# This may be replaced when dependencies are built.
