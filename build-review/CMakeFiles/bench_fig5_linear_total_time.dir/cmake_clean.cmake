file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_linear_total_time.dir/bench/fig5_linear_total_time.cc.o"
  "CMakeFiles/bench_fig5_linear_total_time.dir/bench/fig5_linear_total_time.cc.o.d"
  "bench_fig5_linear_total_time"
  "bench_fig5_linear_total_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_linear_total_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
