# Empty compiler generated dependencies file for test_ml_models.
# This may be replaced when dependencies are built.
