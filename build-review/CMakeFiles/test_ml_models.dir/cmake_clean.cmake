file(REMOVE_RECURSE
  "CMakeFiles/test_ml_models.dir/tests/test_ml_models.cc.o"
  "CMakeFiles/test_ml_models.dir/tests/test_ml_models.cc.o.d"
  "test_ml_models"
  "test_ml_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
