# Empty dependencies file for bench_micro_storage.
# This may be replaced when dependencies are built.
