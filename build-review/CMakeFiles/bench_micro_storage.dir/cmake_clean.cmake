file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_storage.dir/bench/micro_storage.cc.o"
  "CMakeFiles/bench_micro_storage.dir/bench/micro_storage.cc.o.d"
  "bench_micro_storage"
  "bench_micro_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
