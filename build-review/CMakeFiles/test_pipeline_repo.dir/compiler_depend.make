# Empty compiler generated dependencies file for test_pipeline_repo.
# This may be replaced when dependencies are built.
