file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_repo.dir/tests/test_pipeline_repo.cc.o"
  "CMakeFiles/test_pipeline_repo.dir/tests/test_pipeline_repo.cc.o.d"
  "test_pipeline_repo"
  "test_pipeline_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
